#ifndef LSD_EVAL_EXPERIMENT_H_
#define LSD_EVAL_EXPERIMENT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/lsd_config.h"
#include "datagen/domains.h"
#include "eval/metrics.h"

namespace lsd {

/// One system configuration to evaluate — a named MatchOptions bundle.
/// Because variants share the trained base learners, a whole family of
/// configurations (Figure 8a's four bars, Figure 9's lesions) is scored
/// from each training run.
struct SystemVariant {
  std::string name;
  MatchOptions options;
};

/// Parameters of the Section 6 protocol.
struct ExperimentConfig {
  /// Sources per domain (paper: 5).
  size_t num_sources = 5;
  /// Listings generated per source.
  size_t num_listings = 150;
  /// Independent data samples (paper: 3; each re-samples listings while
  /// keeping the source schemas fixed).
  size_t samples = 3;
  /// Training sources per run (paper: 3 train / 2 test, all 10 subsets).
  size_t train_count = 3;
  /// Master seed for domain realization.
  uint64_t seed = 7;
  /// Base LSD configuration (the learner roster is adjusted per domain:
  /// the county recognizer activates on real-estate domains).
  LsdConfig lsd;
  /// Register the domain's standing constraints with each trained system.
  bool install_constraints = true;
};

/// Accuracy statistics per variant name.
using VariantStats = std::map<std::string, RunningStat>;

/// Runs the full protocol on one domain: for every data sample and every
/// C(num_sources, train_count) training subset, trains LSD once and scores
/// every variant on each held-out source. Returns mean accuracy stats per
/// variant.
StatusOr<VariantStats> RunDomainExperiment(
    const std::string& domain_name, const ExperimentConfig& config,
    const std::vector<SystemVariant>& variants);

/// All k-subsets of {0..n-1} in lexicographic order.
std::vector<std::vector<size_t>> Combinations(size_t n, size_t k);

/// The standard variant families.
/// Single-base-learner variants ("base:<learner>"), no meta, no handler.
std::vector<SystemVariant> BaseLearnerVariants(bool county_active);
/// The four Figure 8a configurations (plus the base variants needed to
/// compute "best base learner").
std::vector<SystemVariant> Figure8aVariants(bool county_active);
/// Figure 9a lesion variants: full system minus one component at a time.
std::vector<SystemVariant> LesionVariants(bool county_active);
/// Figure 9b: schema-information-only, data-information-only, and full.
std::vector<SystemVariant> SchemaVsDataVariants(bool county_active);

/// Table 3 row: structural statistics of a realized domain.
struct DomainStats {
  std::string name;
  size_t mediated_tags = 0;
  size_t mediated_non_leaf = 0;
  size_t mediated_depth = 0;
  size_t num_sources = 0;
  size_t min_listings = 0, max_listings = 0;
  size_t min_tags = 0, max_tags = 0;
  size_t min_non_leaf = 0, max_non_leaf = 0;
  size_t min_depth = 0, max_depth = 0;
  /// Percent of source tags with a 1-1 match, min/max across sources.
  double min_matchable_pct = 0.0, max_matchable_pct = 0.0;
};

DomainStats ComputeDomainStats(const Domain& domain);

/// Applies the per-domain learner-roster tweaks (county recognizer on the
/// real-estate domains) to a base config.
LsdConfig ConfigForDomain(const std::string& domain_name,
                          const LsdConfig& base);

}  // namespace lsd

#endif  // LSD_EVAL_EXPERIMENT_H_
