#include "eval/metrics.h"

#include <algorithm>

#include "ml/prediction.h"

namespace lsd {

AccuracyBreakdown ScoreMapping(const Mapping& predicted, const Mapping& gold) {
  AccuracyBreakdown out;
  for (const auto& [tag, gold_label] : gold.entries()) {
    ++out.total_tags;
    std::string predicted_label = predicted.LabelOrOther(tag);
    if (gold_label == kOtherLabel) {
      ++out.other_total;
      if (predicted_label == gold_label) ++out.other_correct;
      continue;
    }
    ++out.matchable;
    if (predicted_label == gold_label) ++out.correct;
  }
  return out;
}

double MatchingAccuracy(const Mapping& predicted, const Mapping& gold) {
  return ScoreMapping(predicted, gold).accuracy();
}

void RunningStat::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

}  // namespace lsd
