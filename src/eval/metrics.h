#ifndef LSD_EVAL_METRICS_H_
#define LSD_EVAL_METRICS_H_

#include <cstddef>
#include <string>

#include "schema/schema.h"

namespace lsd {

/// Per-source accuracy breakdown.
struct AccuracyBreakdown {
  /// Tags whose gold label is not OTHER (the "matchable" tags of
  /// Section 6's metric).
  size_t matchable = 0;
  /// Matchable tags whose predicted label equals the gold label.
  size_t correct = 0;
  /// Total tags in the gold mapping.
  size_t total_tags = 0;
  /// Unmatchable (gold = OTHER) tags correctly mapped to OTHER.
  size_t other_correct = 0;
  size_t other_total = 0;

  /// correct / matchable in [0, 1]; 1.0 when nothing is matchable.
  double accuracy() const {
    if (matchable == 0) return 1.0;
    return static_cast<double>(correct) / static_cast<double>(matchable);
  }
};

/// Scores `predicted` against `gold` with the paper's metric: the
/// percentage of matchable source-schema tags (gold label != OTHER) that
/// are matched correctly. Tags missing from `predicted` count as wrong.
AccuracyBreakdown ScoreMapping(const Mapping& predicted, const Mapping& gold);

/// Shorthand for ScoreMapping(...).accuracy().
double MatchingAccuracy(const Mapping& predicted, const Mapping& gold);

/// Streaming mean/min/max accumulator for accuracy series.
class RunningStat {
 public:
  void Add(double value);
  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace lsd

#endif  // LSD_EVAL_METRICS_H_
