#include "eval/experiment.h"

#include <algorithm>

#include "common/strings.h"
#include "core/lsd_system.h"

namespace lsd {
namespace {

bool IsRealEstate(const std::string& domain_name) {
  return StartsWith(domain_name, "real-estate");
}

std::vector<std::string> NonXmlLearners(bool county_active) {
  std::vector<std::string> out = {kNameMatcherName, kContentMatcherName,
                                  kNaiveBayesName};
  if (county_active) out.push_back(kCountyRecognizerName);
  return out;
}

std::vector<std::string> AllLearners(bool county_active) {
  std::vector<std::string> out = NonXmlLearners(county_active);
  out.push_back(kXmlLearnerName);
  return out;
}

}  // namespace

std::vector<std::vector<size_t>> Combinations(size_t n, size_t k) {
  std::vector<std::vector<size_t>> out;
  if (k > n) return out;
  std::vector<size_t> current(k);
  for (size_t i = 0; i < k; ++i) current[i] = i;
  while (true) {
    out.push_back(current);
    // Advance to the next combination.
    size_t i = k;
    while (i-- > 0) {
      if (current[i] != i + n - k) {
        ++current[i];
        for (size_t j = i + 1; j < k; ++j) current[j] = current[j - 1] + 1;
        break;
      }
      if (i == 0) return out;
    }
  }
}

std::vector<SystemVariant> BaseLearnerVariants(bool county_active) {
  std::vector<SystemVariant> out;
  for (const std::string& learner : NonXmlLearners(county_active)) {
    SystemVariant v;
    v.name = "base:" + learner;
    v.options.learners = {learner};
    v.options.use_meta_learner = false;
    v.options.use_constraint_handler = false;
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<SystemVariant> Figure8aVariants(bool county_active) {
  std::vector<SystemVariant> out = BaseLearnerVariants(county_active);
  {
    SystemVariant v;
    v.name = "meta";
    v.options.learners = NonXmlLearners(county_active);
    v.options.use_meta_learner = true;
    v.options.use_constraint_handler = false;
    out.push_back(std::move(v));
  }
  {
    SystemVariant v;
    v.name = "meta+constraints";
    v.options.learners = NonXmlLearners(county_active);
    v.options.use_meta_learner = true;
    v.options.use_constraint_handler = true;
    out.push_back(std::move(v));
  }
  {
    SystemVariant v;
    v.name = "full";  // meta + constraints + XML learner
    v.options.learners = AllLearners(county_active);
    v.options.use_meta_learner = true;
    v.options.use_constraint_handler = true;
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<SystemVariant> LesionVariants(bool county_active) {
  std::vector<SystemVariant> out;
  auto all = AllLearners(county_active);
  auto without = [&](const std::string& dropped) {
    std::vector<std::string> kept;
    for (const std::string& learner : all) {
      if (learner != dropped) kept.push_back(learner);
    }
    return kept;
  };
  for (const char* dropped :
       {kNameMatcherName, kNaiveBayesName, kContentMatcherName}) {
    SystemVariant v;
    v.name = std::string("without-") + dropped;
    v.options.learners = without(dropped);
    out.push_back(std::move(v));
  }
  {
    SystemVariant v;
    v.name = "without-constraint-handler";
    v.options.learners = all;
    v.options.use_constraint_handler = false;
    out.push_back(std::move(v));
  }
  {
    SystemVariant v;
    v.name = "full";
    v.options.learners = all;
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<SystemVariant> SchemaVsDataVariants(bool county_active) {
  std::vector<SystemVariant> out;
  {
    // Schema information only: the name matcher plus schema constraints.
    SystemVariant v;
    v.name = "schema-only";
    v.options.learners = {kNameMatcherName};
    v.options.constraint_filter = ConstraintFilter::kSchemaOnly;
    out.push_back(std::move(v));
  }
  {
    // Data information only: the content learners plus data constraints.
    SystemVariant v;
    v.name = "data-only";
    v.options.learners = {kContentMatcherName, kNaiveBayesName,
                          kXmlLearnerName};
    if (county_active) {
      v.options.learners.push_back(kCountyRecognizerName);
    }
    v.options.constraint_filter = ConstraintFilter::kDataOnly;
    out.push_back(std::move(v));
  }
  {
    SystemVariant v;
    v.name = "full";
    v.options.learners = AllLearners(county_active);
    out.push_back(std::move(v));
  }
  return out;
}

LsdConfig ConfigForDomain(const std::string& domain_name,
                          const LsdConfig& base) {
  LsdConfig config = base;
  config.use_county_recognizer = IsRealEstate(domain_name);
  config.county_label = "COUNTY";
  return config;
}

StatusOr<VariantStats> RunDomainExperiment(
    const std::string& domain_name, const ExperimentConfig& config,
    const std::vector<SystemVariant>& variants) {
  VariantStats stats;
  LsdConfig lsd_config = ConfigForDomain(domain_name, config.lsd);
  bool county_active = lsd_config.use_county_recognizer;
  // Validate variant learner names against the active roster up front so a
  // typo fails loudly rather than skewing results.
  for (const SystemVariant& variant : variants) {
    for (const std::string& learner : variant.options.learners) {
      if (learner == kCountyRecognizerName && !county_active) {
        return Status::InvalidArgument(
            "variant '" + variant.name +
            "' uses the county recognizer, inactive in domain " + domain_name);
      }
    }
  }

  std::vector<std::vector<size_t>> splits =
      Combinations(config.num_sources, config.train_count);

  for (size_t sample = 0; sample < config.samples; ++sample) {
    // Fixed structure seed (the sources' schemas stay put across samples);
    // fresh data seed per sample.
    LSD_ASSIGN_OR_RETURN(DomainSpec spec, GetDomainSpec(domain_name));
    Domain domain =
        RealizeDomain(spec, config.num_sources, config.num_listings,
                      config.seed, config.seed + 7919 * (sample + 1));

    for (const std::vector<size_t>& train_set : splits) {
      LsdSystem system(domain.mediated, lsd_config, &domain.synonyms);
      if (config.install_constraints) {
        for (auto& constraint : MakeDomainConstraints(domain)) {
          system.AddConstraint(std::move(constraint));
        }
      }
      for (size_t index : train_set) {
        LSD_RETURN_IF_ERROR(system.AddTrainingSource(
            domain.sources[index].source, domain.sources[index].gold));
      }
      LSD_RETURN_IF_ERROR(system.Train());

      for (size_t test = 0; test < domain.sources.size(); ++test) {
        if (std::find(train_set.begin(), train_set.end(), test) !=
            train_set.end()) {
          continue;
        }
        const GeneratedSource& held_out = domain.sources[test];
        LSD_ASSIGN_OR_RETURN(SourcePredictions predictions,
                             system.PredictSource(held_out.source));
        for (const SystemVariant& variant : variants) {
          LSD_ASSIGN_OR_RETURN(
              MatchResult result,
              system.MatchWithPredictions(predictions, held_out.source,
                                          variant.options));
          stats[variant.name].Add(
              MatchingAccuracy(result.mapping, held_out.gold));
        }
      }
    }
  }
  return stats;
}

DomainStats ComputeDomainStats(const Domain& domain) {
  DomainStats out;
  out.name = domain.name;
  out.mediated_tags = domain.mediated.AllTags().size();
  out.mediated_non_leaf = domain.mediated.NonLeafTags().size();
  out.mediated_depth = domain.mediated.MaxDepth();
  out.num_sources = domain.sources.size();
  bool first = true;
  for (const GeneratedSource& gen : domain.sources) {
    size_t tags = gen.source.schema.AllTags().size();
    size_t non_leaf = gen.source.schema.NonLeafTags().size();
    size_t depth = gen.source.schema.MaxDepth();
    size_t listings = gen.source.listings.size();
    size_t matchable = 0;
    for (const auto& [tag, label] : gen.gold.entries()) {
      if (label != "OTHER") ++matchable;
    }
    double pct = gen.gold.empty()
                     ? 0.0
                     : 100.0 * static_cast<double>(matchable) /
                           static_cast<double>(gen.gold.size());
    if (first) {
      out.min_tags = out.max_tags = tags;
      out.min_non_leaf = out.max_non_leaf = non_leaf;
      out.min_depth = out.max_depth = depth;
      out.min_listings = out.max_listings = listings;
      out.min_matchable_pct = out.max_matchable_pct = pct;
      first = false;
    } else {
      out.min_tags = std::min(out.min_tags, tags);
      out.max_tags = std::max(out.max_tags, tags);
      out.min_non_leaf = std::min(out.min_non_leaf, non_leaf);
      out.max_non_leaf = std::max(out.max_non_leaf, non_leaf);
      out.min_depth = std::min(out.min_depth, depth);
      out.max_depth = std::max(out.max_depth, depth);
      out.min_listings = std::min(out.min_listings, listings);
      out.max_listings = std::max(out.max_listings, listings);
      out.min_matchable_pct = std::min(out.min_matchable_pct, pct);
      out.max_matchable_pct = std::max(out.max_matchable_pct, pct);
    }
  }
  return out;
}

}  // namespace lsd
