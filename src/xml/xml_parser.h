#ifndef LSD_XML_XML_PARSER_H_
#define LSD_XML_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/parse_report.h"
#include "xml/xml.h"

namespace lsd {

/// Parses an XML document from `input`. Supported subset (everything LSD's
/// data pipeline produces and consumes):
///   * elements with attributes, self-closing tags;
///   * character data with the predefined entities and numeric references;
///   * CDATA sections;
///   * comments and processing instructions (skipped);
///   * an XML declaration and a DOCTYPE clause (skipped; use `ParseDtd`
///     for the DTD itself).
/// Character data directly inside an element is whitespace-normalized and
/// accumulated into the element's `text`.
/// Returns ParseError with a line/column locator on malformed input, and
/// OutOfRange when the input breaks a `ParseLimits` bound (oversized
/// input, nesting too deep for the recursive-descent stack, too many
/// elements).
StatusOr<XmlDocument> ParseXml(std::string_view input,
                               const ParseLimits& limits = ParseLimits());

/// Parses a fragment: like `ParseXml` but returns the root element.
StatusOr<XmlNode> ParseXmlElement(std::string_view input,
                                  const ParseLimits& limits = ParseLimits());

/// Recovery-mode parse for dirty real-world sources: malformed elements
/// are skipped (recorded as diagnostics in the report), unterminated
/// elements are implicitly closed, and stray close tags are dropped.
/// Returns an error only when no root element can be recovered at all or
/// a resource limit is hit; a heavily damaged document fails once the
/// diagnostic cap is reached rather than grinding through garbage.
StatusOr<XmlParseReport> ParseXmlLenient(
    std::string_view input, const ParseLimits& limits = ParseLimits());

}  // namespace lsd

#endif  // LSD_XML_XML_PARSER_H_
