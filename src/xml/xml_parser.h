#ifndef LSD_XML_XML_PARSER_H_
#define LSD_XML_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/xml.h"

namespace lsd {

/// Parses an XML document from `input`. Supported subset (everything LSD's
/// data pipeline produces and consumes):
///   * elements with attributes, self-closing tags;
///   * character data with the predefined entities and numeric references;
///   * CDATA sections;
///   * comments and processing instructions (skipped);
///   * an XML declaration and a DOCTYPE clause (skipped; use `ParseDtd`
///     for the DTD itself).
/// Character data directly inside an element is whitespace-normalized and
/// accumulated into the element's `text`.
/// Returns ParseError with a line/column locator on malformed input.
StatusOr<XmlDocument> ParseXml(std::string_view input);

/// Parses a fragment: like `ParseXml` but returns the root element.
StatusOr<XmlNode> ParseXmlElement(std::string_view input);

}  // namespace lsd

#endif  // LSD_XML_XML_PARSER_H_
