#ifndef LSD_XML_DTD_PARSER_H_
#define LSD_XML_DTD_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/dtd.h"
#include "xml/parse_report.h"

namespace lsd {

/// Parses DTD text consisting of `<!ELEMENT ...>` declarations (plus
/// `<!ATTLIST ...>` declarations and comments, which are skipped). The
/// first declared element becomes the DTD root. Returns ParseError on
/// malformed input, the `Dtd::Validate` error on dangling references, and
/// OutOfRange when a `ParseLimits` bound is broken (oversized input, a
/// content model nested too deep for the recursive-descent stack, too
/// many declarations).
StatusOr<Dtd> ParseDtd(std::string_view input,
                       const ParseLimits& limits = ParseLimits());

/// Recovery-mode parse for dirty schemas: malformed declarations are
/// skipped (recorded as diagnostics), duplicate declarations are dropped,
/// and dangling content-model references are downgraded to diagnostics.
/// Fails only when nothing can be recovered or a resource limit is hit.
StatusOr<DtdParseReport> ParseDtdLenient(
    std::string_view input, const ParseLimits& limits = ParseLimits());

/// Parses a single content-model expression, e.g. "(a, b?, (c | d)*)".
StatusOr<ContentParticle> ParseContentModel(
    std::string_view input, const ParseLimits& limits = ParseLimits());

}  // namespace lsd

#endif  // LSD_XML_DTD_PARSER_H_
