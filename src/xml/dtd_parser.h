#ifndef LSD_XML_DTD_PARSER_H_
#define LSD_XML_DTD_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/dtd.h"

namespace lsd {

/// Parses DTD text consisting of `<!ELEMENT ...>` declarations (plus
/// `<!ATTLIST ...>` declarations and comments, which are skipped). The
/// first declared element becomes the DTD root. Returns ParseError on
/// malformed input and the `Dtd::Validate` error on dangling references.
StatusOr<Dtd> ParseDtd(std::string_view input);

/// Parses a single content-model expression, e.g. "(a, b?, (c | d)*)".
StatusOr<ContentParticle> ParseContentModel(std::string_view input);

}  // namespace lsd

#endif  // LSD_XML_DTD_PARSER_H_
