#ifndef LSD_XML_DTD_H_
#define LSD_XML_DTD_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/xml.h"

namespace lsd {

/// Kinds of content-model particles in a DTD element declaration.
enum class ParticleKind {
  kPcdata,    // (#PCDATA)
  kElement,   // a child element reference
  kSequence,  // (a, b, c)
  kChoice,    // (a | b | c)
  kMixed,     // (#PCDATA | a | b)*
  kEmpty,     // EMPTY
  kAny,       // ANY
};

/// Occurrence indicator attached to a particle.
enum class Occurrence {
  kOne,         // no suffix
  kOptional,    // ?
  kZeroOrMore,  // *
  kOneOrMore,   // +
};

/// One node of a content model's particle tree.
struct ContentParticle {
  ParticleKind kind = ParticleKind::kEmpty;
  Occurrence occurrence = Occurrence::kOne;
  /// Set for kElement particles.
  std::string element_name;
  /// Sub-particles for kSequence / kChoice; the allowed element particles
  /// for kMixed.
  std::vector<ContentParticle> children;

  static ContentParticle Pcdata() {
    ContentParticle p;
    p.kind = ParticleKind::kPcdata;
    return p;
  }
  static ContentParticle Element(std::string name,
                                 Occurrence occ = Occurrence::kOne) {
    ContentParticle p;
    p.kind = ParticleKind::kElement;
    p.element_name = std::move(name);
    p.occurrence = occ;
    return p;
  }
  static ContentParticle Sequence(std::vector<ContentParticle> parts,
                                  Occurrence occ = Occurrence::kOne) {
    ContentParticle p;
    p.kind = ParticleKind::kSequence;
    p.children = std::move(parts);
    p.occurrence = occ;
    return p;
  }
  static ContentParticle Choice(std::vector<ContentParticle> parts,
                                Occurrence occ = Occurrence::kOne) {
    ContentParticle p;
    p.kind = ParticleKind::kChoice;
    p.children = std::move(parts);
    p.occurrence = occ;
    return p;
  }

  /// Collects the names of all element particles in this subtree.
  void CollectElementNames(std::set<std::string>* out) const;

  /// Renders the particle in DTD syntax, e.g. "(a, b?, (c | d)*)".
  std::string ToString() const;
};

/// A single `<!ELEMENT name content>` declaration.
struct ElementDecl {
  std::string name;
  ContentParticle content;

  /// A leaf element holds only character data (or nothing).
  bool IsLeaf() const {
    return content.kind == ParticleKind::kPcdata ||
           content.kind == ParticleKind::kEmpty;
  }
};

/// A Document Type Definition: an ordered set of element declarations with
/// a designated root. This is LSD's notion of a schema (both mediated and
/// source schemas are DTDs, per Section 2.1 of the paper).
class Dtd {
 public:
  Dtd() = default;

  /// Adds a declaration. Returns AlreadyExists on duplicate names. The
  /// first declaration added becomes the root unless `set_root` is called.
  Status AddElement(ElementDecl decl);

  /// Overrides the root element name.
  Status SetRoot(std::string_view name);
  const std::string& root_name() const { return root_name_; }

  bool Contains(std::string_view name) const;
  const ElementDecl* Find(std::string_view name) const;

  /// Declarations in insertion order.
  const std::vector<ElementDecl>& elements() const { return elements_; }

  /// All declared tag names, in insertion order.
  std::vector<std::string> AllTags() const;
  /// Tags whose content is (#PCDATA) or EMPTY.
  std::vector<std::string> LeafTags() const;
  /// Tags with element content.
  std::vector<std::string> NonLeafTags() const;

  /// Names of the elements that may appear as direct children of `name`.
  std::vector<std::string> ChildTags(std::string_view name) const;

  /// Names of declared elements that can contain `name` directly.
  std::vector<std::string> ParentTags(std::string_view name) const;

  /// True when `descendant` is reachable from `ancestor` through child
  /// edges (proper descendant).
  bool IsDescendant(std::string_view ancestor, std::string_view descendant) const;

  /// Number of distinct tags reachable strictly below `name` (the paper's
  /// Section 6.3 "structure score" used to order feedback queries).
  size_t DescendantCount(std::string_view name) const;

  /// Maximum nesting depth of the schema tree, counting the root as 1.
  /// Recursive DTDs are truncated at a fixed bound.
  size_t MaxDepth() const;

  /// Checks internal consistency: root declared, every referenced element
  /// declared.
  Status Validate() const;

  /// Validates `node` (and subtree) against this DTD: its tag is declared
  /// and each element's children match its content model.
  Status ValidateDocument(const XmlNode& node) const;

  /// Renders the whole DTD in `<!ELEMENT ...>` syntax.
  std::string ToString() const;

 private:
  size_t DepthOf(const std::string& name, std::set<std::string>* on_path) const;

  std::vector<ElementDecl> elements_;
  std::map<std::string, size_t, std::less<>> index_;
  std::string root_name_;
};

}  // namespace lsd

#endif  // LSD_XML_DTD_H_
