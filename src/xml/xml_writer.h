#ifndef LSD_XML_XML_WRITER_H_
#define LSD_XML_XML_WRITER_H_

#include <string>

#include "xml/xml.h"

namespace lsd {

/// Serialization options for `WriteXml`.
struct XmlWriteOptions {
  /// When true, children are placed on their own lines with `indent_width`
  /// spaces per nesting level; leaf text stays inline.
  bool pretty = true;
  int indent_width = 2;
  /// When true an XML declaration ("<?xml version=...?>") is emitted.
  bool declaration = false;
};

/// Serializes a node (and its subtree) to XML text. Round-trips with
/// `ParseXml` up to whitespace normalization.
std::string WriteXml(const XmlNode& node,
                     const XmlWriteOptions& options = XmlWriteOptions());

/// Serializes a document.
std::string WriteXml(const XmlDocument& doc,
                     const XmlWriteOptions& options = XmlWriteOptions());

}  // namespace lsd

#endif  // LSD_XML_XML_WRITER_H_
