#include "xml/dtd_parser.h"

#include <cctype>
#include <string>

#include "common/strings.h"

namespace lsd {
namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == '.' || c == ':';
}

/// Cursor-based parser for DTD declaration syntax.
class DtdParser {
 public:
  explicit DtdParser(std::string_view input) : input_(input) {}

  StatusOr<Dtd> ParseAll() {
    Dtd dtd;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      if (LookingAt("<!ELEMENT")) {
        pos_ += 9;
        LSD_ASSIGN_OR_RETURN(ElementDecl decl, ParseElementDecl());
        LSD_RETURN_IF_ERROR(dtd.AddElement(std::move(decl)));
      } else if (LookingAt("<!ATTLIST")) {
        LSD_RETURN_IF_ERROR(SkipDeclaration());
      } else if (LookingAt("<!ENTITY") || LookingAt("<!NOTATION")) {
        LSD_RETURN_IF_ERROR(SkipDeclaration());
      } else {
        return Error("expected a DTD declaration");
      }
    }
    LSD_RETURN_IF_ERROR(dtd.Validate());
    return dtd;
  }

  StatusOr<ContentParticle> ParseModelOnly() {
    SkipWhitespaceAndComments();
    LSD_ASSIGN_OR_RETURN(ContentParticle particle, ParseContentSpec());
    SkipWhitespaceAndComments();
    if (!AtEnd()) return Error("trailing content after content model");
    return particle;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError(
        StrFormat("DTD parse error at offset %zu: %s", pos_, what.c_str()));
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool LookingAt(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  void SkipWhitespaceAndComments() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<!--")) {
        size_t end = input_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
      } else {
        return;
      }
    }
  }

  Status SkipDeclaration() {
    size_t end = input_.find('>', pos_);
    if (end == std::string_view::npos) return Error("unterminated declaration");
    pos_ = end + 1;
    return Status::OK();
  }

  StatusOr<std::string> ParseName() {
    SkipWhitespace();
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Occurrence ParseOccurrence() {
    if (AtEnd()) return Occurrence::kOne;
    switch (Peek()) {
      case '?':
        ++pos_;
        return Occurrence::kOptional;
      case '*':
        ++pos_;
        return Occurrence::kZeroOrMore;
      case '+':
        ++pos_;
        return Occurrence::kOneOrMore;
      default:
        return Occurrence::kOne;
    }
  }

  StatusOr<ElementDecl> ParseElementDecl() {
    ElementDecl decl;
    LSD_ASSIGN_OR_RETURN(decl.name, ParseName());
    SkipWhitespace();
    LSD_ASSIGN_OR_RETURN(decl.content, ParseContentSpec());
    SkipWhitespace();
    if (AtEnd() || Peek() != '>') return Error("expected '>' after content model");
    ++pos_;
    return decl;
  }

  StatusOr<ContentParticle> ParseContentSpec() {
    SkipWhitespace();
    if (LookingAt("EMPTY")) {
      pos_ += 5;
      ContentParticle p;
      p.kind = ParticleKind::kEmpty;
      return p;
    }
    if (LookingAt("ANY")) {
      pos_ += 3;
      ContentParticle p;
      p.kind = ParticleKind::kAny;
      return p;
    }
    if (AtEnd() || Peek() != '(') return Error("expected '(' in content model");
    return ParseGroup();
  }

  // Parses a parenthesized group: '(' already at cursor.
  StatusOr<ContentParticle> ParseGroup() {
    ++pos_;  // consume '('
    SkipWhitespace();
    if (LookingAt("#PCDATA")) {
      pos_ += 7;
      return ParseMixedTail();
    }
    std::vector<ContentParticle> parts;
    char separator = 0;
    while (true) {
      LSD_ASSIGN_OR_RETURN(ContentParticle part, ParseCp());
      parts.push_back(std::move(part));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated group");
      char c = Peek();
      if (c == ')') {
        ++pos_;
        break;
      }
      if (c != ',' && c != '|') return Error("expected ',', '|' or ')'");
      if (separator != 0 && c != separator) {
        return Error("mixed ',' and '|' in one group");
      }
      separator = c;
      ++pos_;
    }
    ContentParticle group;
    group.kind =
        separator == '|' ? ParticleKind::kChoice : ParticleKind::kSequence;
    group.children = std::move(parts);
    group.occurrence = ParseOccurrence();
    // Collapse single-child sequences to the child with merged occurrence
    // only when the group carries no indicator of its own.
    if (group.children.size() == 1 && group.occurrence == Occurrence::kOne) {
      return std::move(group.children[0]);
    }
    return group;
  }

  // After "#PCDATA": either ")" or "| name | name )*".
  StatusOr<ContentParticle> ParseMixedTail() {
    SkipWhitespace();
    if (!AtEnd() && Peek() == ')') {
      ++pos_;
      ParseOccurrence();  // "(#PCDATA)*" is legal; indicator is irrelevant.
      return ContentParticle::Pcdata();
    }
    ContentParticle mixed;
    mixed.kind = ParticleKind::kMixed;
    mixed.occurrence = Occurrence::kZeroOrMore;
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated mixed content");
      if (Peek() == ')') {
        ++pos_;
        if (!AtEnd() && Peek() == '*') ++pos_;
        return mixed;
      }
      if (Peek() != '|') return Error("expected '|' in mixed content");
      ++pos_;
      LSD_ASSIGN_OR_RETURN(std::string name, ParseName());
      mixed.children.push_back(ContentParticle::Element(std::move(name)));
    }
  }

  // cp ::= (name | group) occurrence?
  StatusOr<ContentParticle> ParseCp() {
    SkipWhitespace();
    if (AtEnd()) return Error("unexpected end of content model");
    if (Peek() == '(') return ParseGroup();
    LSD_ASSIGN_OR_RETURN(std::string name, ParseName());
    ContentParticle p = ContentParticle::Element(std::move(name));
    p.occurrence = ParseOccurrence();
    return p;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Dtd> ParseDtd(std::string_view input) {
  DtdParser parser(input);
  return parser.ParseAll();
}

StatusOr<ContentParticle> ParseContentModel(std::string_view input) {
  DtdParser parser(input);
  return parser.ParseModelOnly();
}

}  // namespace lsd
