#include "xml/dtd_parser.h"

#include <cctype>
#include <string>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace lsd {
namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == '.' || c == ':';
}

/// Cap on recorded problems in lenient mode; a file this broken fails.
constexpr size_t kMaxDiagnostics = 64;

/// Cursor-based parser for DTD declaration syntax. Strict mode fails on
/// the first malformed declaration; lenient mode skips it (recording a
/// diagnostic) and keeps the declarations that parse. Content-model
/// recursion is depth-guarded so `((((...))))` returns OutOfRange instead
/// of overflowing the stack.
class DtdParser {
 public:
  DtdParser(std::string_view input, const ParseLimits& limits, bool lenient,
            DtdParseReport* report)
      : input_(input), limits_(limits), lenient_(lenient), report_(report) {}

  StatusOr<Dtd> ParseAll() {
    if (limits_.max_input_bytes != 0 &&
        input_.size() > limits_.max_input_bytes) {
      return Status::OutOfRange(
          StrFormat("DTD input is %zu bytes; limit is %zu", input_.size(),
                    limits_.max_input_bytes));
    }
    Dtd dtd;
    size_t declarations = 0;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      if (limits_.max_nodes != 0 && ++declarations > limits_.max_nodes) {
        return Status::OutOfRange(StrFormat(
            "DTD declaration count exceeds limit %zu", limits_.max_nodes));
      }
      size_t decl_start = pos_;
      Status status = ParseOneDeclaration(&dtd);
      if (!status.ok()) {
        if (!lenient_ || status.code() == StatusCode::kOutOfRange) {
          return status;
        }
        if (!RecordDiagnostic(status)) return status;
        ++report_->skipped_declarations;
        if (!SkipPastDeclaration(decl_start)) break;
      }
    }
    Status valid = dtd.Validate();
    if (!valid.ok()) {
      // Lenient mode keeps a schema whose content models reference
      // undeclared elements — downstream treats unknown references as
      // absent tags. Everything else (e.g. no declarations at all) is
      // still fatal.
      if (!lenient_ || dtd.elements().empty() || !RecordDiagnostic(valid)) {
        return valid;
      }
    }
    return dtd;
  }

  StatusOr<ContentParticle> ParseModelOnly() {
    SkipWhitespaceAndComments();
    LSD_ASSIGN_OR_RETURN(ContentParticle particle, ParseContentSpec(1));
    SkipWhitespaceAndComments();
    if (!AtEnd()) return Error("trailing content after content model");
    return particle;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError(
        StrFormat("DTD parse error at offset %zu: %s", pos_, what.c_str()));
  }

  bool RecordDiagnostic(const Status& status) {
    if (report_->diagnostics.size() >= kMaxDiagnostics) return false;
    ParseDiagnostic diag;
    diag.offset = pos_;
    diag.message = status.message();
    report_->diagnostics.push_back(std::move(diag));
    return true;
  }

  /// Parses one declaration at the cursor into `dtd`.
  Status ParseOneDeclaration(Dtd* dtd) {
    if (LookingAt("<!ELEMENT")) {
      pos_ += 9;
      LSD_ASSIGN_OR_RETURN(ElementDecl decl, ParseElementDecl());
      return dtd->AddElement(std::move(decl));
    }
    if (LookingAt("<!ATTLIST") || LookingAt("<!ENTITY") ||
        LookingAt("<!NOTATION")) {
      return SkipDeclaration();
    }
    return Error("expected a DTD declaration");
  }

  /// Recovery: advances past the current broken declaration — to just
  /// after the next '>', or to the next "<!" if that comes first, so a
  /// declaration missing its '>' doesn't swallow its neighbor. When the
  /// failure already stopped at a fresh "<!" (a decl missing its '>'
  /// erroring on its neighbor's opener), resume right here. Returns false
  /// at end of input. Always makes forward progress past `decl_start`,
  /// where the broken declaration began.
  bool SkipPastDeclaration(size_t decl_start) {
    if (AtEnd()) return false;
    if (pos_ > decl_start && LookingAt("<!") && !LookingAt("<!--")) {
      return true;
    }
    size_t from = pos_ + 1;
    size_t close = input_.find('>', from);
    size_t next_decl = input_.find("<!", from);
    if (close == std::string_view::npos && next_decl == std::string_view::npos) {
      pos_ = input_.size();
      return false;
    }
    if (next_decl != std::string_view::npos &&
        (close == std::string_view::npos || next_decl < close)) {
      pos_ = next_decl;
    } else {
      pos_ = close + 1;
    }
    return true;
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool LookingAt(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  void SkipWhitespaceAndComments() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<!--")) {
        size_t end = input_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
      } else {
        return;
      }
    }
  }

  Status SkipDeclaration() {
    size_t end = input_.find('>', pos_);
    if (end == std::string_view::npos) return Error("unterminated declaration");
    pos_ = end + 1;
    return Status::OK();
  }

  StatusOr<std::string> ParseName() {
    SkipWhitespace();
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Occurrence ParseOccurrence() {
    if (AtEnd()) return Occurrence::kOne;
    switch (Peek()) {
      case '?':
        ++pos_;
        return Occurrence::kOptional;
      case '*':
        ++pos_;
        return Occurrence::kZeroOrMore;
      case '+':
        ++pos_;
        return Occurrence::kOneOrMore;
      default:
        return Occurrence::kOne;
    }
  }

  StatusOr<ElementDecl> ParseElementDecl() {
    ElementDecl decl;
    LSD_ASSIGN_OR_RETURN(decl.name, ParseName());
    SkipWhitespace();
    LSD_ASSIGN_OR_RETURN(decl.content, ParseContentSpec(1));
    SkipWhitespace();
    if (AtEnd() || Peek() != '>') return Error("expected '>' after content model");
    ++pos_;
    return decl;
  }

  StatusOr<ContentParticle> ParseContentSpec(size_t depth) {
    SkipWhitespace();
    if (LookingAt("EMPTY")) {
      pos_ += 5;
      ContentParticle p;
      p.kind = ParticleKind::kEmpty;
      return p;
    }
    if (LookingAt("ANY")) {
      pos_ += 3;
      ContentParticle p;
      p.kind = ParticleKind::kAny;
      return p;
    }
    if (AtEnd() || Peek() != '(') return Error("expected '(' in content model");
    return ParseGroup(depth);
  }

  // Parses a parenthesized group: '(' already at cursor.
  StatusOr<ContentParticle> ParseGroup(size_t depth) {
    if (depth > limits_.max_depth) {
      return Status::OutOfRange(StrFormat(
          "content-model nesting depth exceeds limit %zu", limits_.max_depth));
    }
    ++pos_;  // consume '('
    SkipWhitespace();
    if (LookingAt("#PCDATA")) {
      pos_ += 7;
      return ParseMixedTail();
    }
    std::vector<ContentParticle> parts;
    char separator = 0;
    while (true) {
      LSD_ASSIGN_OR_RETURN(ContentParticle part, ParseCp(depth));
      parts.push_back(std::move(part));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated group");
      char c = Peek();
      if (c == ')') {
        ++pos_;
        break;
      }
      if (c != ',' && c != '|') return Error("expected ',', '|' or ')'");
      if (separator != 0 && c != separator) {
        return Error("mixed ',' and '|' in one group");
      }
      separator = c;
      ++pos_;
    }
    ContentParticle group;
    group.kind =
        separator == '|' ? ParticleKind::kChoice : ParticleKind::kSequence;
    group.children = std::move(parts);
    group.occurrence = ParseOccurrence();
    // Collapse single-child sequences to the child with merged occurrence
    // only when the group carries no indicator of its own.
    if (group.children.size() == 1 && group.occurrence == Occurrence::kOne) {
      return std::move(group.children[0]);
    }
    return group;
  }

  // After "#PCDATA": either ")" or "| name | name )*".
  StatusOr<ContentParticle> ParseMixedTail() {
    SkipWhitespace();
    if (!AtEnd() && Peek() == ')') {
      ++pos_;
      ParseOccurrence();  // "(#PCDATA)*" is legal; indicator is irrelevant.
      return ContentParticle::Pcdata();
    }
    ContentParticle mixed;
    mixed.kind = ParticleKind::kMixed;
    mixed.occurrence = Occurrence::kZeroOrMore;
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated mixed content");
      if (Peek() == ')') {
        ++pos_;
        if (!AtEnd() && Peek() == '*') ++pos_;
        return mixed;
      }
      if (Peek() != '|') return Error("expected '|' in mixed content");
      ++pos_;
      LSD_ASSIGN_OR_RETURN(std::string name, ParseName());
      mixed.children.push_back(ContentParticle::Element(std::move(name)));
    }
  }

  // cp ::= (name | group) occurrence?
  StatusOr<ContentParticle> ParseCp(size_t depth) {
    SkipWhitespace();
    if (AtEnd()) return Error("unexpected end of content model");
    if (Peek() == '(') return ParseGroup(depth + 1);
    LSD_ASSIGN_OR_RETURN(std::string name, ParseName());
    ContentParticle p = ContentParticle::Element(std::move(name));
    p.occurrence = ParseOccurrence();
    return p;
  }

  std::string_view input_;
  ParseLimits limits_;
  bool lenient_;
  /// Null in strict mode.
  DtdParseReport* report_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Dtd> ParseDtd(std::string_view input, const ParseLimits& limits) {
  LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kDtdParse, input.substr(0, 64)));
  DtdParser parser(input, limits, /*lenient=*/false, nullptr);
  StatusOr<Dtd> dtd = parser.ParseAll();
  if (dtd.ok()) {
    // A strict parse that succeeded recovered nothing by definition;
    // intern the counters anyway so every run's snapshot carries them.
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("dtd.parse.recovered");
    registry.GetCounter("dtd.parse.skipped_declarations");
  }
  return dtd;
}

StatusOr<DtdParseReport> ParseDtdLenient(std::string_view input,
                                         const ParseLimits& limits) {
  LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kDtdParse, input.substr(0, 64)));
  DtdParseReport report;
  DtdParser parser(input, limits, /*lenient=*/true, &report);
  LSD_ASSIGN_OR_RETURN(report.dtd, parser.ParseAll());
  // Intern the counters even for clean parses so a metrics snapshot of a
  // lenient run always carries them (zero means "nothing recovered").
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("dtd.parse.recovered")
      ->Increment(report.diagnostics.size());
  registry.GetCounter("dtd.parse.skipped_declarations")
      ->Increment(report.skipped_declarations);
  return report;
}

StatusOr<ContentParticle> ParseContentModel(std::string_view input,
                                            const ParseLimits& limits) {
  DtdParser parser(input, limits, /*lenient=*/false, nullptr);
  return parser.ParseModelOnly();
}

}  // namespace lsd
