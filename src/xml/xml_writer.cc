#include "xml/xml_writer.h"

namespace lsd {
namespace {

void WriteNode(const XmlNode& node, const XmlWriteOptions& options, int depth,
               std::string* out) {
  std::string indent;
  if (options.pretty) {
    indent.assign(static_cast<size_t>(depth * options.indent_width), ' ');
  }
  *out += indent;
  *out += '<';
  *out += node.name;
  for (const auto& [key, value] : node.attributes) {
    *out += ' ';
    *out += key;
    *out += "=\"";
    *out += XmlEscape(value);
    *out += '"';
  }
  if (node.text.empty() && node.children.empty()) {
    *out += "/>";
    if (options.pretty) *out += '\n';
    return;
  }
  *out += '>';
  if (node.children.empty()) {
    *out += XmlEscape(node.text);
  } else {
    if (options.pretty) *out += '\n';
    if (!node.text.empty()) {
      if (options.pretty) {
        *out += indent;
        *out += std::string(static_cast<size_t>(options.indent_width), ' ');
      }
      *out += XmlEscape(node.text);
      if (options.pretty) *out += '\n';
    }
    for (const XmlNode& child : node.children) {
      WriteNode(child, options, depth + 1, out);
    }
    *out += indent;
  }
  *out += "</";
  *out += node.name;
  *out += '>';
  if (options.pretty) *out += '\n';
}

}  // namespace

std::string WriteXml(const XmlNode& node, const XmlWriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.pretty) out += '\n';
  }
  WriteNode(node, options, 0, &out);
  return out;
}

std::string WriteXml(const XmlDocument& doc, const XmlWriteOptions& options) {
  return WriteXml(doc.root, options);
}

}  // namespace lsd
