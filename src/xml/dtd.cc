#include "xml/dtd.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace lsd {
namespace {

const char* OccurrenceSuffix(Occurrence occ) {
  switch (occ) {
    case Occurrence::kOne:
      return "";
    case Occurrence::kOptional:
      return "?";
    case Occurrence::kZeroOrMore:
      return "*";
    case Occurrence::kOneOrMore:
      return "+";
  }
  return "";
}

// Backtracking content-model matcher. `Match` returns every position in
// `children` reachable by consuming a prefix that matches `particle`,
// starting at `pos`. Content models in practice are tiny, so exponential
// worst cases do not matter here.
void MatchParticle(const ContentParticle& particle,
                   const std::vector<XmlNode>& children, size_t pos,
                   std::set<size_t>* out);

// Matches exactly one occurrence of the particle body (ignoring its own
// occurrence indicator).
void MatchOnce(const ContentParticle& particle,
               const std::vector<XmlNode>& children, size_t pos,
               std::set<size_t>* out) {
  switch (particle.kind) {
    case ParticleKind::kPcdata:
    case ParticleKind::kEmpty:
    case ParticleKind::kMixed:
    case ParticleKind::kAny:
      // Handled at the element level, not inside particle matching.
      out->insert(pos);
      return;
    case ParticleKind::kElement:
      if (pos < children.size() && children[pos].name == particle.element_name) {
        out->insert(pos + 1);
      }
      return;
    case ParticleKind::kSequence: {
      std::set<size_t> frontier = {pos};
      for (const ContentParticle& part : particle.children) {
        std::set<size_t> next;
        for (size_t p : frontier) MatchParticle(part, children, p, &next);
        frontier.swap(next);
        if (frontier.empty()) return;
      }
      out->insert(frontier.begin(), frontier.end());
      return;
    }
    case ParticleKind::kChoice:
      for (const ContentParticle& part : particle.children) {
        MatchParticle(part, children, pos, out);
      }
      return;
  }
}

void MatchParticle(const ContentParticle& particle,
                   const std::vector<XmlNode>& children, size_t pos,
                   std::set<size_t>* out) {
  switch (particle.occurrence) {
    case Occurrence::kOne:
      MatchOnce(particle, children, pos, out);
      return;
    case Occurrence::kOptional:
      out->insert(pos);
      MatchOnce(particle, children, pos, out);
      return;
    case Occurrence::kZeroOrMore:
    case Occurrence::kOneOrMore: {
      std::set<size_t> reachable;
      if (particle.occurrence == Occurrence::kZeroOrMore) {
        reachable.insert(pos);
      }
      std::set<size_t> frontier = {pos};
      while (!frontier.empty()) {
        std::set<size_t> next;
        for (size_t p : frontier) MatchOnce(particle, children, p, &next);
        std::set<size_t> fresh;
        for (size_t p : next) {
          if (reachable.insert(p).second) fresh.insert(p);
        }
        frontier.swap(fresh);
      }
      out->insert(reachable.begin(), reachable.end());
      return;
    }
  }
}

}  // namespace

void ContentParticle::CollectElementNames(std::set<std::string>* out) const {
  if (kind == ParticleKind::kElement) out->insert(element_name);
  for (const ContentParticle& child : children) {
    child.CollectElementNames(out);
  }
}

std::string ContentParticle::ToString() const {
  switch (kind) {
    case ParticleKind::kPcdata:
      return "(#PCDATA)";
    case ParticleKind::kEmpty:
      return "EMPTY";
    case ParticleKind::kAny:
      return "ANY";
    case ParticleKind::kElement:
      return element_name + OccurrenceSuffix(occurrence);
    case ParticleKind::kMixed: {
      std::string out = "(#PCDATA";
      for (const ContentParticle& child : children) {
        out += " | " + child.element_name;
      }
      out += ")*";
      return out;
    }
    case ParticleKind::kSequence:
    case ParticleKind::kChoice: {
      const char* sep = kind == ParticleKind::kSequence ? ", " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i].ToString();
      }
      out += ")";
      out += OccurrenceSuffix(occurrence);
      return out;
    }
  }
  return "";
}

Status Dtd::AddElement(ElementDecl decl) {
  if (index_.count(decl.name) > 0) {
    return Status::AlreadyExists("duplicate element declaration: " + decl.name);
  }
  if (root_name_.empty()) root_name_ = decl.name;
  index_[decl.name] = elements_.size();
  elements_.push_back(std::move(decl));
  return Status::OK();
}

Status Dtd::SetRoot(std::string_view name) {
  if (!Contains(name)) {
    return Status::NotFound("root element not declared: " + std::string(name));
  }
  root_name_ = std::string(name);
  return Status::OK();
}

bool Dtd::Contains(std::string_view name) const {
  return index_.find(name) != index_.end();
}

const ElementDecl* Dtd::Find(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return &elements_[it->second];
}

std::vector<std::string> Dtd::AllTags() const {
  std::vector<std::string> out;
  out.reserve(elements_.size());
  for (const ElementDecl& decl : elements_) out.push_back(decl.name);
  return out;
}

std::vector<std::string> Dtd::LeafTags() const {
  std::vector<std::string> out;
  for (const ElementDecl& decl : elements_) {
    if (decl.IsLeaf()) out.push_back(decl.name);
  }
  return out;
}

std::vector<std::string> Dtd::NonLeafTags() const {
  std::vector<std::string> out;
  for (const ElementDecl& decl : elements_) {
    if (!decl.IsLeaf()) out.push_back(decl.name);
  }
  return out;
}

std::vector<std::string> Dtd::ChildTags(std::string_view name) const {
  const ElementDecl* decl = Find(name);
  if (decl == nullptr) return {};
  std::set<std::string> names;
  decl->content.CollectElementNames(&names);
  return std::vector<std::string>(names.begin(), names.end());
}

std::vector<std::string> Dtd::ParentTags(std::string_view name) const {
  std::vector<std::string> out;
  for (const ElementDecl& decl : elements_) {
    std::set<std::string> names;
    decl.content.CollectElementNames(&names);
    if (names.count(std::string(name)) > 0) out.push_back(decl.name);
  }
  return out;
}

bool Dtd::IsDescendant(std::string_view ancestor,
                       std::string_view descendant) const {
  std::set<std::string> visited;
  std::vector<std::string> stack = ChildTags(ancestor);
  while (!stack.empty()) {
    std::string current = stack.back();
    stack.pop_back();
    if (!visited.insert(current).second) continue;
    if (current == descendant) return true;
    for (std::string& child : ChildTags(current)) {
      stack.push_back(std::move(child));
    }
  }
  return false;
}

size_t Dtd::DescendantCount(std::string_view name) const {
  std::set<std::string> visited;
  std::vector<std::string> stack = ChildTags(name);
  while (!stack.empty()) {
    std::string current = stack.back();
    stack.pop_back();
    if (!visited.insert(current).second) continue;
    for (std::string& child : ChildTags(current)) {
      stack.push_back(std::move(child));
    }
  }
  return visited.size();
}

size_t Dtd::DepthOf(const std::string& name,
                    std::set<std::string>* on_path) const {
  if (on_path->size() > 32 || !on_path->insert(name).second) return 1;
  size_t deepest = 0;
  for (const std::string& child : ChildTags(name)) {
    deepest = std::max(deepest, DepthOf(child, on_path));
  }
  on_path->erase(name);
  return deepest + 1;
}

size_t Dtd::MaxDepth() const {
  if (root_name_.empty()) return 0;
  std::set<std::string> on_path;
  return DepthOf(root_name_, &on_path);
}

Status Dtd::Validate() const {
  if (elements_.empty()) return Status::FailedPrecondition("empty DTD");
  if (!Contains(root_name_)) {
    return Status::FailedPrecondition("root element not declared: " +
                                      root_name_);
  }
  for (const ElementDecl& decl : elements_) {
    std::set<std::string> referenced;
    decl.content.CollectElementNames(&referenced);
    for (const std::string& name : referenced) {
      if (!Contains(name)) {
        return Status::FailedPrecondition("element '" + decl.name +
                                          "' references undeclared '" + name +
                                          "'");
      }
    }
  }
  return Status::OK();
}

Status Dtd::ValidateDocument(const XmlNode& node) const {
  const ElementDecl* decl = Find(node.name);
  if (decl == nullptr) {
    return Status::FailedPrecondition("undeclared element: " + node.name);
  }
  switch (decl->content.kind) {
    case ParticleKind::kEmpty:
      if (!node.children.empty() || !node.text.empty()) {
        return Status::FailedPrecondition("element '" + node.name +
                                          "' declared EMPTY has content");
      }
      break;
    case ParticleKind::kPcdata:
      if (!node.children.empty()) {
        return Status::FailedPrecondition(
            "element '" + node.name + "' declared (#PCDATA) has children");
      }
      break;
    case ParticleKind::kAny:
      break;
    case ParticleKind::kMixed: {
      std::set<std::string> allowed;
      decl->content.CollectElementNames(&allowed);
      for (const XmlNode& child : node.children) {
        if (allowed.count(child.name) == 0) {
          return Status::FailedPrecondition("element '" + child.name +
                                            "' not allowed in mixed content of '" +
                                            node.name + "'");
        }
      }
      break;
    }
    case ParticleKind::kElement:
    case ParticleKind::kSequence:
    case ParticleKind::kChoice: {
      std::set<size_t> ends;
      MatchParticle(decl->content, node.children, 0, &ends);
      if (ends.count(node.children.size()) == 0) {
        return Status::FailedPrecondition(
            "children of '" + node.name + "' do not match content model " +
            decl->content.ToString());
      }
      break;
    }
  }
  for (const XmlNode& child : node.children) {
    LSD_RETURN_IF_ERROR(ValidateDocument(child));
  }
  return Status::OK();
}

std::string Dtd::ToString() const {
  std::string out;
  for (const ElementDecl& decl : elements_) {
    out += "<!ELEMENT " + decl.name + " " + decl.content.ToString() + ">\n";
  }
  return out;
}

}  // namespace lsd
