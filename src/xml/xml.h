#ifndef LSD_XML_XML_H_
#define LSD_XML_XML_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lsd {

/// A single XML element: a tag name, optional attributes, text content,
/// and child elements. Mixed content is normalized: all character data
/// directly inside an element is concatenated into `text` (whitespace
/// collapsed by the parser), preserving the information LSD's learners
/// consume. Value semantics: nodes own their subtree.
struct XmlNode {
  std::string name;
  std::string text;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<XmlNode> children;

  XmlNode() = default;
  explicit XmlNode(std::string tag) : name(std::move(tag)) {}
  XmlNode(std::string tag, std::string content)
      : name(std::move(tag)), text(std::move(content)) {}

  /// True when the element has no child elements.
  bool IsLeaf() const { return children.empty(); }

  /// Appends a child element and returns a reference to it. The reference
  /// is invalidated by any later insertion into the same `children` vector
  /// — chain immediately or re-find the child instead of holding it.
  XmlNode& AddChild(std::string tag) {
    children.emplace_back(std::move(tag));
    return children.back();
  }
  XmlNode& AddChild(std::string tag, std::string content) {
    children.emplace_back(std::move(tag), std::move(content));
    return children.back();
  }

  /// Returns the first child with the given tag, or nullptr.
  const XmlNode* FindChild(std::string_view tag) const;
  XmlNode* FindChild(std::string_view tag);

  /// Returns all children with the given tag.
  std::vector<const XmlNode*> FindChildren(std::string_view tag) const;

  /// Concatenates the text of this node and its whole subtree, separating
  /// pieces with single spaces.
  std::string DeepText() const;

  /// Returns the value of an attribute, or empty string when absent.
  std::string_view Attribute(std::string_view key) const;

  /// Number of nodes in the subtree rooted here (including this node).
  size_t SubtreeSize() const;

  /// Height of the subtree: 1 for a leaf.
  size_t Depth() const;

  /// Invokes `fn(node, depth)` on this node and every descendant,
  /// pre-order.
  template <typename Fn>
  void Visit(Fn&& fn, size_t depth = 0) const {
    fn(*this, depth);
    for (const XmlNode& child : children) child.Visit(fn, depth + 1);
  }

  bool operator==(const XmlNode& other) const;
};

/// An XML document: a prolog-free wrapper around the unique root element.
struct XmlDocument {
  XmlNode root;

  XmlDocument() = default;
  explicit XmlDocument(XmlNode root_node) : root(std::move(root_node)) {}
};

/// Escapes `&`, `<`, `>`, `"`, `'` for inclusion in XML text or attribute
/// values.
std::string XmlEscape(std::string_view s);

/// Reverses `XmlEscape` for the five predefined entities plus numeric
/// character references (&#...; and &#x...;), leaving unknown entities
/// verbatim. Valid references decode to the byte for codes 1..127 and to
/// '?' above that (the data model is byte-oriented). A malformed or
/// out-of-range reference — no digits, a non-digit before the ';', code 0,
/// or a code above U+10FFFF — is kept verbatim and counted in `*n_bad`
/// when given, so callers can surface the damage instead of silently
/// accepting garbage.
std::string XmlUnescape(std::string_view s, size_t* n_bad = nullptr);

}  // namespace lsd

#endif  // LSD_XML_XML_H_
