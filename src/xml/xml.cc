#include "xml/xml.h"

#include <algorithm>
#include <cstdlib>

namespace lsd {

const XmlNode* XmlNode::FindChild(std::string_view tag) const {
  for (const XmlNode& child : children) {
    if (child.name == tag) return &child;
  }
  return nullptr;
}

XmlNode* XmlNode::FindChild(std::string_view tag) {
  for (XmlNode& child : children) {
    if (child.name == tag) return &child;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::FindChildren(std::string_view tag) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& child : children) {
    if (child.name == tag) out.push_back(&child);
  }
  return out;
}

std::string XmlNode::DeepText() const {
  std::string out;
  Visit([&out](const XmlNode& node, size_t) {
    if (node.text.empty()) return;
    if (!out.empty()) out += ' ';
    out += node.text;
  });
  return out;
}

std::string_view XmlNode::Attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return {};
}

size_t XmlNode::SubtreeSize() const {
  size_t count = 1;
  for (const XmlNode& child : children) count += child.SubtreeSize();
  return count;
}

size_t XmlNode::Depth() const {
  size_t deepest = 0;
  for (const XmlNode& child : children) {
    deepest = std::max(deepest, child.Depth());
  }
  return deepest + 1;
}

bool XmlNode::operator==(const XmlNode& other) const {
  return name == other.name && text == other.text &&
         attributes == other.attributes && children == other.children;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string XmlUnescape(std::string_view s, size_t* n_bad) {
  std::string out;
  out.reserve(s.size());
  size_t bad = 0;
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] != '&') {
      out += s[i++];
      continue;
    }
    size_t semi = s.find(';', i);
    if (semi == std::string_view::npos) {
      out += s[i++];
      continue;
    }
    std::string_view entity = s.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      // Numeric character reference, parsed digit by digit: the strtol
      // this replaces ignored its end pointer (so "&#12abc;" silently
      // decoded as 12) and its range (so an overflowing reference decoded
      // as LONG_MAX's low byte). Anything that is not pure digits in
      // 1..U+10FFFF is rejected and kept verbatim.
      bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
      std::string_view digits = entity.substr(hex ? 2 : 1);
      long code = 0;
      bool valid = !digits.empty();
      for (char c : digits) {
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (hex && c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (hex && c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          valid = false;
          break;
        }
        code = code * (hex ? 16 : 10) + digit;
        if (code > 0x10FFFF) {
          valid = false;
          break;
        }
      }
      if (!valid || code == 0) {
        out.append(s.substr(i, semi - i + 1));
        ++bad;
      } else if (code < 128) {
        out += static_cast<char>(code);
      } else {
        // Representable only outside the byte-oriented data model.
        out += '?';
      }
    } else {
      // Unknown entity: keep verbatim.
      out.append(s.substr(i, semi - i + 1));
    }
    i = semi + 1;
  }
  if (n_bad != nullptr) *n_bad = bad;
  return out;
}

}  // namespace lsd
