#include "xml/xml.h"

#include <algorithm>
#include <cstdlib>

namespace lsd {

const XmlNode* XmlNode::FindChild(std::string_view tag) const {
  for (const XmlNode& child : children) {
    if (child.name == tag) return &child;
  }
  return nullptr;
}

XmlNode* XmlNode::FindChild(std::string_view tag) {
  for (XmlNode& child : children) {
    if (child.name == tag) return &child;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::FindChildren(std::string_view tag) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& child : children) {
    if (child.name == tag) out.push_back(&child);
  }
  return out;
}

std::string XmlNode::DeepText() const {
  std::string out;
  Visit([&out](const XmlNode& node, size_t) {
    if (node.text.empty()) return;
    if (!out.empty()) out += ' ';
    out += node.text;
  });
  return out;
}

std::string_view XmlNode::Attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return {};
}

size_t XmlNode::SubtreeSize() const {
  size_t count = 1;
  for (const XmlNode& child : children) count += child.SubtreeSize();
  return count;
}

size_t XmlNode::Depth() const {
  size_t deepest = 0;
  for (const XmlNode& child : children) {
    deepest = std::max(deepest, child.Depth());
  }
  return deepest + 1;
}

bool XmlNode::operator==(const XmlNode& other) const {
  return name == other.name && text == other.text &&
         attributes == other.attributes && children == other.children;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string XmlUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] != '&') {
      out += s[i++];
      continue;
    }
    size_t semi = s.find(';', i);
    if (semi == std::string_view::npos) {
      out += s[i++];
      continue;
    }
    std::string_view entity = s.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      // Numeric character reference; emit as a single byte when it fits.
      long code;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        code = std::strtol(std::string(entity.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(entity.substr(1)).c_str(), nullptr, 10);
      }
      if (code > 0 && code < 128) {
        out += static_cast<char>(code);
      } else {
        out += '?';
      }
    } else {
      // Unknown entity: keep verbatim.
      out.append(s.substr(i, semi - i + 1));
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace lsd
