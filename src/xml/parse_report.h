#ifndef LSD_XML_PARSE_REPORT_H_
#define LSD_XML_PARSE_REPORT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/strings.h"
#include "xml/dtd.h"
#include "xml/xml.h"

namespace lsd {

/// Resource limits enforced by the XML and DTD parsers. Real-world sources
/// are routinely malformed or adversarially large; the limits turn what
/// would be a stack overflow or an OOM into a clean kOutOfRange status.
struct ParseLimits {
  /// Maximum input size in bytes (0 = unlimited).
  size_t max_input_bytes = 64u << 20;
  /// Maximum element (XML) or content-model group (DTD) nesting depth.
  size_t max_depth = 256;
  /// Maximum number of elements (XML) or declarations (DTD) parsed
  /// (0 = unlimited).
  size_t max_nodes = 1u << 20;
};

/// One recoverable problem found while parsing in lenient mode. `offset`
/// is a byte offset into the input; `line`/`column` are 1-based and only
/// filled by the XML parser (the DTD parser reports offsets).
struct ParseDiagnostic {
  size_t offset = 0;
  size_t line = 0;
  size_t column = 0;
  std::string message;

  std::string ToString() const {
    if (line > 0) {
      return StrFormat("line %zu col %zu: %s", line, column, message.c_str());
    }
    return StrFormat("offset %zu: %s", offset, message.c_str());
  }
};

/// Output of `ParseXmlLenient`: the recovered document plus structured
/// diagnostics, instead of all-or-nothing failure. `document` holds
/// everything that parsed; each skipped element adds a diagnostic.
struct XmlParseReport {
  XmlDocument document;
  std::vector<ParseDiagnostic> diagnostics;
  /// Malformed elements dropped during recovery.
  size_t skipped_elements = 0;

  bool clean() const { return diagnostics.empty() && skipped_elements == 0; }
};

/// Output of `ParseDtdLenient`: the declarations that parsed, plus
/// diagnostics for each skipped declaration and any validation issue
/// (which lenient mode downgrades from an error to a diagnostic).
struct DtdParseReport {
  Dtd dtd;
  std::vector<ParseDiagnostic> diagnostics;
  size_t skipped_declarations = 0;

  bool clean() const { return diagnostics.empty() && skipped_declarations == 0; }
};

}  // namespace lsd

#endif  // LSD_XML_PARSE_REPORT_H_
