#include "xml/xml_parser.h"

#include <cctype>
#include <string>

#include "common/strings.h"

namespace lsd {
namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

/// Recursive-descent XML parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  StatusOr<XmlNode> ParseDocumentRoot() {
    LSD_RETURN_IF_ERROR(SkipProlog());
    XmlNode root;
    LSD_RETURN_IF_ERROR(ParseElement(&root));
    SkipMisc();
    if (pos_ != input_.size()) {
      return Error("trailing content after root element");
    }
    return root;
  }

 private:
  Status Error(const std::string& what) const {
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < input_.size(); ++i) {
      if (input_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Status::ParseError(StrFormat("XML parse error at line %zu col %zu: %s",
                                        line, col, what.c_str()));
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool LookingAt(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  Status SkipUntil(std::string_view terminator) {
    size_t hit = input_.find(terminator, pos_);
    if (hit == std::string_view::npos) {
      return Error("unterminated construct; expected '" +
                   std::string(terminator) + "'");
    }
    pos_ = hit + terminator.size();
    return Status::OK();
  }

  // Skips comments and processing instructions at the current position.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<!--")) {
        if (!SkipUntil("-->").ok()) {
          pos_ = input_.size();
          return;
        }
      } else if (LookingAt("<?")) {
        if (!SkipUntil("?>").ok()) {
          pos_ = input_.size();
          return;
        }
      } else {
        return;
      }
    }
  }

  Status SkipProlog() {
    SkipMisc();
    if (LookingAt("<!DOCTYPE")) {
      // Skip, honoring a bracketed internal subset.
      size_t depth = 0;
      while (!AtEnd()) {
        char c = Peek();
        ++pos_;
        if (c == '[') {
          ++depth;
        } else if (c == ']') {
          if (depth > 0) --depth;
        } else if (c == '>' && depth == 0) {
          break;
        }
      }
      SkipMisc();
    }
    return Status::OK();
  }

  StatusOr<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected a name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  Status ParseAttributes(XmlNode* node, bool* self_closing) {
    *self_closing = false;
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>') {
        ++pos_;
        return Status::OK();
      }
      if (LookingAt("/>")) {
        pos_ += 2;
        *self_closing = true;
        return Status::OK();
      }
      LSD_ASSIGN_OR_RETURN(std::string key, ParseName());
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
      ++pos_;
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      std::string value = XmlUnescape(input_.substr(start, pos_ - start));
      ++pos_;
      node->attributes.emplace_back(std::move(key), std::move(value));
    }
  }

  // Appends `raw` (already unescaped) to node->text with whitespace
  // normalization: internal runs collapse to one space; a space separates
  // successive pieces.
  static void AppendText(XmlNode* node, std::string_view raw) {
    std::string normalized;
    bool in_space = true;
    for (char c : raw) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!in_space) normalized += ' ';
        in_space = true;
      } else {
        normalized += c;
        in_space = false;
      }
    }
    while (!normalized.empty() && normalized.back() == ' ') {
      normalized.pop_back();
    }
    if (normalized.empty()) return;
    if (!node->text.empty()) node->text += ' ';
    node->text += normalized;
  }

  Status ParseContent(XmlNode* node) {
    while (true) {
      if (AtEnd()) return Error("unterminated element '" + node->name + "'");
      if (LookingAt("</")) return Status::OK();
      if (LookingAt("<!--")) {
        LSD_RETURN_IF_ERROR(SkipUntil("-->"));
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        pos_ += 9;
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        AppendText(node, input_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (LookingAt("<?")) {
        LSD_RETURN_IF_ERROR(SkipUntil("?>"));
        continue;
      }
      if (Peek() == '<') {
        node->children.emplace_back();
        LSD_RETURN_IF_ERROR(ParseElement(&node->children.back()));
        continue;
      }
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      AppendText(node, XmlUnescape(input_.substr(start, pos_ - start)));
    }
  }

  Status ParseElement(XmlNode* node) {
    if (AtEnd() || Peek() != '<') return Error("expected start tag");
    ++pos_;
    LSD_ASSIGN_OR_RETURN(node->name, ParseName());
    bool self_closing = false;
    LSD_RETURN_IF_ERROR(ParseAttributes(node, &self_closing));
    if (self_closing) return Status::OK();
    LSD_RETURN_IF_ERROR(ParseContent(node));
    // At "</".
    pos_ += 2;
    LSD_ASSIGN_OR_RETURN(std::string close_name, ParseName());
    if (close_name != node->name) {
      return Error("mismatched close tag '" + close_name + "' for '" +
                   node->name + "'");
    }
    SkipWhitespace();
    if (AtEnd() || Peek() != '>') return Error("malformed close tag");
    ++pos_;
    return Status::OK();
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<XmlDocument> ParseXml(std::string_view input) {
  Parser parser(input);
  LSD_ASSIGN_OR_RETURN(XmlNode root, parser.ParseDocumentRoot());
  return XmlDocument(std::move(root));
}

StatusOr<XmlNode> ParseXmlElement(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocumentRoot();
}

}  // namespace lsd
