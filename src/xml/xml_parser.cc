#include "xml/xml_parser.h"

#include <cctype>
#include <string>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace lsd {
namespace {

bool IsNameStartChar(char c) {
  // Digits lead names here, unlike spec XML: the DTD parser accepts them
  // anywhere in a name and scraped schemas use tags like <3d-tour>, so
  // rejecting them would make our own writer's output unreadable.
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) { return IsNameStartChar(c) || c == '-' || c == '.'; }

/// Lenient mode stops recording diagnostics (and fails hard) past this
/// many problems: a document this broken is noise, and the cap bounds the
/// O(problems × recovery-scan) work on adversarial input.
constexpr size_t kMaxDiagnostics = 64;

/// Recursive-descent XML parser over a string_view cursor. In strict mode
/// any malformed construct aborts the parse with ParseError (resource
/// limits abort with OutOfRange). In lenient mode malformed elements are
/// recorded in the report, skipped, and parsing resumes at the next tag —
/// the dirty-input regime real sources exhibit.
class Parser {
 public:
  Parser(std::string_view input, const ParseLimits& limits, bool lenient,
         XmlParseReport* report)
      : input_(input), limits_(limits), lenient_(lenient), report_(report) {}

  StatusOr<XmlNode> ParseDocumentRoot() {
    if (limits_.max_input_bytes != 0 &&
        input_.size() > limits_.max_input_bytes) {
      return Status::OutOfRange(
          StrFormat("XML input is %zu bytes; limit is %zu", input_.size(),
                    limits_.max_input_bytes));
    }
    LSD_RETURN_IF_ERROR(SkipProlog());
    XmlNode root;
    Status status = ParseElement(&root, 1);
    while (!status.ok() && lenient_ && !IsResourceLimit(status)) {
      // Recovery: note the failure, drop the partial root, and retry from
      // the next tag. A document whose every candidate root fails returns
      // the last error (with its diagnostics trail in the report).
      if (!RecordDiagnostic(status)) return status;
      ++report_->skipped_elements;
      if (!SkipToNextTag()) return status;
      SkipMisc();
      if (AtEnd()) return status;
      root = XmlNode();
      status = ParseElement(&root, 1);
    }
    if (!status.ok()) return status;
    SkipMisc();
    if (pos_ != input_.size()) {
      Status trailing = Error("trailing content after root element");
      if (!lenient_) return trailing;
      RecordDiagnostic(trailing);
    }
    return root;
  }

 private:
  std::pair<size_t, size_t> Locate(size_t pos) const {
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos && i < input_.size(); ++i) {
      if (input_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return {line, col};
  }

  Status Error(const std::string& what) const {
    auto [line, col] = Locate(pos_);
    return Status::ParseError(StrFormat("XML parse error at line %zu col %zu: %s",
                                        line, col, what.c_str()));
  }

  /// Resource-limit violations are never recovered from: skipping cannot
  /// make the input smaller or shallower than the limit it already broke.
  static bool IsResourceLimit(const Status& status) {
    return status.code() == StatusCode::kOutOfRange;
  }

  /// Appends `status` to the report. Returns false once the diagnostic cap
  /// is reached, at which point lenient parsing gives up.
  bool RecordDiagnostic(const Status& status) {
    if (report_->diagnostics.size() >= kMaxDiagnostics) return false;
    ParseDiagnostic diag;
    diag.offset = pos_;
    auto [line, col] = Locate(pos_);
    diag.line = line;
    diag.column = col;
    diag.message = status.message();
    report_->diagnostics.push_back(std::move(diag));
    return true;
  }

  /// Advances the cursor past at least one character to the next '<'.
  /// Returns false at end of input. Guarantees forward progress, so
  /// repeated recovery always terminates.
  bool SkipToNextTag() {
    if (AtEnd()) return false;
    ++pos_;
    size_t hit = input_.find('<', pos_);
    if (hit == std::string_view::npos) {
      pos_ = input_.size();
      return false;
    }
    pos_ = hit;
    return true;
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool LookingAt(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  Status SkipUntil(std::string_view terminator) {
    size_t hit = input_.find(terminator, pos_);
    if (hit == std::string_view::npos) {
      return Error("unterminated construct; expected '" +
                   std::string(terminator) + "'");
    }
    pos_ = hit + terminator.size();
    return Status::OK();
  }

  // Skips comments and processing instructions at the current position.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<!--")) {
        if (!SkipUntil("-->").ok()) {
          pos_ = input_.size();
          return;
        }
      } else if (LookingAt("<?")) {
        if (!SkipUntil("?>").ok()) {
          pos_ = input_.size();
          return;
        }
      } else {
        return;
      }
    }
  }

  Status SkipProlog() {
    SkipMisc();
    if (LookingAt("<!DOCTYPE")) {
      // Skip, honoring a bracketed internal subset.
      size_t depth = 0;
      while (!AtEnd()) {
        char c = Peek();
        ++pos_;
        if (c == '[') {
          ++depth;
        } else if (c == ']') {
          if (depth > 0) --depth;
        } else if (c == '>' && depth == 0) {
          break;
        }
      }
      SkipMisc();
    }
    return Status::OK();
  }

  StatusOr<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected a name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  /// Reads the name of a close tag without consuming anything. Cursor is
  /// at "</". Returns an empty string when no name follows.
  std::string PeekCloseName() const {
    size_t p = pos_ + 2;
    size_t start = p;
    while (p < input_.size() && IsNameChar(input_[p])) ++p;
    return std::string(input_.substr(start, p - start));
  }

  Status ParseAttributes(XmlNode* node, bool* self_closing) {
    *self_closing = false;
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>') {
        ++pos_;
        return Status::OK();
      }
      if (LookingAt("/>")) {
        pos_ += 2;
        *self_closing = true;
        return Status::OK();
      }
      LSD_ASSIGN_OR_RETURN(std::string key, ParseName());
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
      ++pos_;
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      size_t bad_refs = 0;
      std::string value =
          XmlUnescape(input_.substr(start, pos_ - start), &bad_refs);
      if (bad_refs > 0) {
        // Malformed references were kept verbatim in `value`; strict mode
        // rejects them, lenient mode records the recovery.
        Status status = Error(StrFormat(
            "%zu malformed character reference(s) in attribute '%s'",
            bad_refs, key.c_str()));
        if (!lenient_) return status;
        if (!RecordDiagnostic(status)) return status;
      }
      ++pos_;
      node->attributes.emplace_back(std::move(key), std::move(value));
    }
  }

  // Appends `raw` (already unescaped) to node->text with whitespace
  // normalization: internal runs collapse to one space; a space separates
  // successive pieces.
  static void AppendText(XmlNode* node, std::string_view raw) {
    std::string normalized;
    bool in_space = true;
    for (char c : raw) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!in_space) normalized += ' ';
        in_space = true;
      } else {
        normalized += c;
        in_space = false;
      }
    }
    while (!normalized.empty() && normalized.back() == ' ') {
      normalized.pop_back();
    }
    if (normalized.empty()) return;
    if (!node->text.empty()) node->text += ' ';
    node->text += normalized;
  }

  /// On OK return the cursor is at the element's own close tag, at an
  /// ancestor's close tag (lenient implicit close), or at end of input
  /// (lenient truncation) — ParseElement disambiguates.
  Status ParseContent(XmlNode* node, size_t depth) {
    while (true) {
      if (AtEnd()) {
        if (lenient_) {
          RecordDiagnostic(
              Error("unterminated element '" + node->name +
                    "'; implicitly closed at end of input"));
          return Status::OK();
        }
        return Error("unterminated element '" + node->name + "'");
      }
      if (LookingAt("</")) {
        std::string close_name = PeekCloseName();
        if (!lenient_ || close_name == node->name) return Status::OK();
        if (IsOpenAncestor(close_name)) {
          // `<a><b>text</a>`: close of an ancestor implicitly closes this
          // element; leave the tag for the ancestor to consume.
          RecordDiagnostic(Error("element '" + node->name +
                                 "' implicitly closed by '</" + close_name +
                                 ">'"));
          return Status::OK();
        }
        // Stray close tag matching nothing on the open stack: drop it.
        Status stray = Error("stray close tag '</" + close_name + ">'");
        if (!RecordDiagnostic(stray)) return stray;
        ++report_->skipped_elements;
        if (!SkipUntil(">").ok()) pos_ = input_.size();
        continue;
      }
      if (LookingAt("<!--")) {
        LSD_RETURN_IF_ERROR(SkipUntil("-->"));
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        pos_ += 9;
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        AppendText(node, input_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (LookingAt("<?")) {
        LSD_RETURN_IF_ERROR(SkipUntil("?>"));
        continue;
      }
      if (Peek() == '<') {
        node->children.emplace_back();
        Status child = ParseElement(&node->children.back(), depth + 1);
        if (!child.ok()) {
          if (!lenient_ || IsResourceLimit(child)) return child;
          // Recovery: drop the malformed child and resume at the next tag
          // (or at this element's close tag).
          node->children.pop_back();
          if (!RecordDiagnostic(child)) return child;
          ++report_->skipped_elements;
          if (!SkipToNextTag()) continue;  // loop sees AtEnd
        }
        continue;
      }
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      size_t bad_refs = 0;
      std::string text =
          XmlUnescape(input_.substr(start, pos_ - start), &bad_refs);
      if (bad_refs > 0) {
        Status status = Error(StrFormat(
            "%zu malformed character reference(s) in text of element '%s'",
            bad_refs, node->name.c_str()));
        if (!lenient_) return status;
        if (!RecordDiagnostic(status)) return status;
      }
      AppendText(node, text);
    }
  }

  Status ParseElement(XmlNode* node, size_t depth) {
    if (depth > limits_.max_depth) {
      return Status::OutOfRange(
          StrFormat("XML nesting depth exceeds limit %zu", limits_.max_depth));
    }
    if (limits_.max_nodes != 0 && ++node_count_ > limits_.max_nodes) {
      return Status::OutOfRange(
          StrFormat("XML element count exceeds limit %zu", limits_.max_nodes));
    }
    if (AtEnd() || Peek() != '<') return Error("expected start tag");
    ++pos_;
    LSD_ASSIGN_OR_RETURN(node->name, ParseName());
    bool self_closing = false;
    LSD_RETURN_IF_ERROR(ParseAttributes(node, &self_closing));
    if (self_closing) return Status::OK();
    open_names_.push_back(node->name);
    Status content = ParseContent(node, depth);
    open_names_.pop_back();
    LSD_RETURN_IF_ERROR(content);
    if (AtEnd()) return Status::OK();  // lenient implicit close
    // At "</".
    if (lenient_ && PeekCloseName() != node->name) {
      return Status::OK();  // ancestor's close tag; leave it in place
    }
    pos_ += 2;
    LSD_ASSIGN_OR_RETURN(std::string close_name, ParseName());
    if (close_name != node->name) {
      return Error("mismatched close tag '" + close_name + "' for '" +
                   node->name + "'");
    }
    SkipWhitespace();
    if (AtEnd() || Peek() != '>') return Error("malformed close tag");
    ++pos_;
    return Status::OK();
  }

  bool IsOpenAncestor(const std::string& name) const {
    for (const std::string& open : open_names_) {
      if (open == name) return true;
    }
    return false;
  }

  std::string_view input_;
  ParseLimits limits_;
  bool lenient_;
  /// Null in strict mode; strict parsing never records diagnostics.
  XmlParseReport* report_;
  size_t pos_ = 0;
  size_t node_count_ = 0;
  /// Names of the elements currently being parsed, outermost first. Used
  /// by lenient recovery to distinguish an ancestor's close tag from a
  /// stray one.
  std::vector<std::string> open_names_;
};

}  // namespace

StatusOr<XmlDocument> ParseXml(std::string_view input,
                               const ParseLimits& limits) {
  LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kXmlParse, input.substr(0, 64)));
  Parser parser(input, limits, /*lenient=*/false, nullptr);
  LSD_ASSIGN_OR_RETURN(XmlNode root, parser.ParseDocumentRoot());
  // A strict parse that succeeded recovered nothing by definition; intern
  // the counters anyway so every run's snapshot carries them.
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("xml.parse.recovered");
  registry.GetCounter("xml.parse.skipped_elements");
  return XmlDocument(std::move(root));
}

StatusOr<XmlNode> ParseXmlElement(std::string_view input,
                                  const ParseLimits& limits) {
  LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kXmlParse, input.substr(0, 64)));
  Parser parser(input, limits, /*lenient=*/false, nullptr);
  return parser.ParseDocumentRoot();
}

StatusOr<XmlParseReport> ParseXmlLenient(std::string_view input,
                                         const ParseLimits& limits) {
  LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kXmlParse, input.substr(0, 64)));
  XmlParseReport report;
  Parser parser(input, limits, /*lenient=*/true, &report);
  LSD_ASSIGN_OR_RETURN(XmlNode root, parser.ParseDocumentRoot());
  report.document = XmlDocument(std::move(root));
  // Intern the counters even for clean parses so a metrics snapshot of a
  // lenient run always carries them (zero means "nothing recovered").
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("xml.parse.recovered")
      ->Increment(report.diagnostics.size());
  registry.GetCounter("xml.parse.skipped_elements")
      ->Increment(report.skipped_elements);
  return report;
}

}  // namespace lsd
