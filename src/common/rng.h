#ifndef LSD_COMMON_RNG_H_
#define LSD_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lsd {

/// Deterministic pseudo-random number generator (xoshiro256**). All
/// randomness in LSD flows through explicitly seeded `Rng` instances so
/// that every experiment is exactly reproducible from its seed.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield identical streams on every
  /// platform (no reliance on std::mt19937 distribution internals).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns true with probability `p`.
  bool Bernoulli(double p);

  /// Standard normal deviate (Box-Muller).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Uniformly picks an element of `items`. Requires non-empty input.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    assert(!items.empty());
    return items[static_cast<size_t>(UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
  }

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Zero-total weights fall back to uniform.
  size_t PickWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Spawns an independent child generator; useful for giving each source
  /// or experiment run its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace lsd

#endif  // LSD_COMMON_RNG_H_
