#ifndef LSD_COMMON_PRED_CACHE_H_
#define LSD_COMMON_PRED_CACHE_H_

#include <array>
#include <cstdint>
#include <list>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lsd {

// ---------------------------------------------------------------------------
// Content hashing for cache keys
// ---------------------------------------------------------------------------

/// FNV-1a offset basis; the seed for all cache-key hashing.
inline constexpr uint64_t kCacheHashSeed = 14695981039346656037ULL;

/// Folds `bytes` into an FNV-1a accumulator.
inline uint64_t CacheHashBytes(uint64_t h, std::string_view bytes) {
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Folds a 64-bit value into an FNV-1a accumulator, byte by byte.
inline uint64_t CacheHashU64(uint64_t h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

/// The canonical learner fingerprint: a content hash of the learner's name
/// and its serialized model bytes. Identically-trained learners — in
/// particular the per-worker replicas a MatchService builds from one
/// factory, and any replica it rebuilds after poisoning — serialize to the
/// same bytes and therefore share cache entries. Never returns 0: that
/// value is reserved to mean "uncacheable".
inline uint64_t FingerprintModelBytes(std::string_view learner_name,
                                      std::string_view model_bytes) {
  uint64_t h = CacheHashBytes(kCacheHashSeed, learner_name);
  h = CacheHashBytes(h, "\x1f");
  h = CacheHashBytes(h, model_bytes);
  return h == 0 ? 1 : h;
}

// ---------------------------------------------------------------------------
// PredCache
// ---------------------------------------------------------------------------

/// A sharded, content-addressed cache of per-instance learner predictions.
///
/// Keys are (learner fingerprint, instance hash) pairs; values are the raw
/// score vectors a learner's Predict produced, stored and returned
/// verbatim. Because both key halves are content hashes — the fingerprint
/// derives from the serialized model, the instance hash from the instance's
/// value fields — a hit replays exactly the bytes a miss would recompute,
/// and entries written through one replica are valid for every
/// identically-trained replica. That is the safety invariant the service
/// soak enforces: cache-on output is byte-identical to cache-off at any
/// worker count.
///
/// Sharding: a fixed 16-way split keyed by the instance hash's low bits
/// (fixed, never derived from core count, so eviction behavior is
/// machine-independent). Each shard holds an LRU list under its own mutex;
/// the traffic is read-mostly once warm, so contention is a short critical
/// section per lookup. Capacity is divided evenly across shards (at least
/// one entry each); eviction is strict per-shard LRU, which makes the
/// eviction sequence deterministic for any serial access sequence.
///
/// Thread safety: all methods are safe to call concurrently.
class PredCache {
 public:
  /// Aggregate counters, summed over shards. Deterministic for serial
  /// access sequences; under concurrent access the hit/miss split may vary
  /// with interleaving, but hits + misses always equals total lookups and
  /// the cached *outputs* are interleaving-independent.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  explicit PredCache(size_t max_entries);

  PredCache(const PredCache&) = delete;
  PredCache& operator=(const PredCache&) = delete;

  /// Copies the cached score vector for (learner_fp, instance_hash) into
  /// `*scores` and returns true on a hit; returns false (leaving `*scores`
  /// untouched) on a miss. A hit refreshes the entry's LRU position.
  bool Lookup(uint64_t learner_fp, uint64_t instance_hash,
              std::vector<double>* scores);

  /// Inserts (or refreshes) an entry, evicting the shard's least-recently
  /// used entry when the shard is full.
  void Insert(uint64_t learner_fp, uint64_t instance_hash,
              const std::vector<double>& scores);

  Stats stats() const;

  /// Total live entries across shards.
  size_t size() const;

  size_t max_entries() const { return max_entries_; }

  /// Drops every entry. Stats are cumulative and survive a Clear.
  void Clear();

  /// The shard an instance hash maps to; exposed so tests can construct
  /// same-shard key sequences and assert exact LRU eviction order.
  static size_t ShardIndex(uint64_t instance_hash) {
    return static_cast<size_t>(instance_hash & (kShards - 1));
  }

  static constexpr size_t kShards = 16;

 private:
  struct Key {
    uint64_t fp;
    uint64_t hash;
    bool operator==(const Key& other) const {
      return fp == other.fp && hash == other.hash;
    }
  };
  struct KeyHasher {
    size_t operator()(const Key& key) const {
      // Both halves are already FNV outputs; a multiply-mix decorrelates
      // them from the shard selector's low bits.
      return static_cast<size_t>((key.fp ^ key.hash) * 0x9e3779b97f4a7c15ULL);
    }
  };
  using LruList = std::list<std::pair<Key, std::vector<double>>>;
  struct Shard {
    mutable std::mutex mu;
    LruList lru;  // front = most recently used
    std::unordered_map<Key, LruList::iterator, KeyHasher> index;
    Stats stats;
  };

  size_t max_entries_;
  size_t shard_capacity_;
  std::array<Shard, kShards> shards_;
};

}  // namespace lsd

#endif  // LSD_COMMON_PRED_CACHE_H_
