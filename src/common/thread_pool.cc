#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/fault_injection.h"
#include "common/metrics.h"

namespace lsd {
namespace {

/// Pool-wide metric handles, interned once. Handle pointers are stable for
/// the process lifetime (the registry is leaked), so caching them here
/// keeps the per-task cost to one thread-local increment.
struct PoolMetrics {
  Counter* tasks_run;
  Gauge* queue_depth_peak;
  Histogram* task_micros;
};

PoolMetrics& GetPoolMetrics() {
  static PoolMetrics metrics{
      MetricsRegistry::Global().GetCounter("pool.tasks_run"),
      MetricsRegistry::Global().GetGauge("pool.queue_depth_peak"),
      MetricsRegistry::Global().GetHistogram("pool.task_micros")};
  return metrics;
}

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

size_t ResolveThreadCount(size_t requested) {
  // Cap absurd requests (e.g. a negative CLI value wrapped through
  // size_t) — spawning cannot help past a small multiple of the
  // hardware, and std::vector::reserve(huge) aborts.
  constexpr size_t kMaxThreads = 256;
  if (requested != 0) return std::min(std::max<size_t>(requested, 1), kMaxThreads);
  size_t hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : std::min(hardware, kMaxThreads);
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t total = ResolveThreadCount(num_threads);
  workers_.reserve(total - 1);
  for (size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::shared_ptr<ThreadPool::Batch> ThreadPool::PickBatchLocked() {
  while (!queue_.empty() && queue_.front()->Exhausted()) queue_.pop_front();
  for (const std::shared_ptr<Batch>& batch : queue_) {
    if (!batch->Exhausted()) return batch;
  }
  return nullptr;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, &batch] {
        batch = PickBatchLocked();
        return stopping_ || batch != nullptr;
      });
      if (batch == nullptr) return;  // stopping
    }
    RunBatch(batch.get());
  }
}

void ThreadPool::RunBatch(Batch* batch) {
  for (;;) {
    size_t index = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch->n) return;
    Status status;
    if (!batch->failed.load(std::memory_order_acquire)) {
      // Fault seam: tasks are addressed by index, so an injected failure
      // hits the same task on every run and thread count. Key construction
      // is gated on an active injector to keep the common path free.
      if (FaultInjectionActive()) {
        status = CheckFault(FaultSite::kPoolTask, std::to_string(index));
      }
      if (status.ok()) {
        PoolMetrics& metrics = GetPoolMetrics();
        auto start = std::chrono::steady_clock::now();
        status = batch->fn(index);
        metrics.task_micros->Record(ElapsedMicros(start));
        metrics.tasks_run->Increment();
      }
    }
    std::lock_guard<std::mutex> lock(batch->mu);
    if (!status.ok()) {
      batch->failed.store(true, std::memory_order_release);
      if (!batch->has_error || index < batch->error_index) {
        batch->has_error = true;
        batch->error_index = index;
        batch->error = std::move(status);
      }
    }
    if (++batch->completed == batch->n) batch->done_cv.notify_all();
  }
}

Status ThreadPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (workers_.empty() || n == 1) {
    PoolMetrics& metrics = GetPoolMetrics();
    for (size_t i = 0; i < n; ++i) {
      if (FaultInjectionActive()) {
        LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kPoolTask, std::to_string(i)));
      }
      auto start = std::chrono::steady_clock::now();
      Status status = fn(i);
      metrics.task_micros->Record(ElapsedMicros(start));
      metrics.tasks_run->Increment();
      LSD_RETURN_IF_ERROR(status);
    }
    return Status::OK();
  }
  auto batch = std::make_shared<Batch>(n, fn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(batch);
    GetPoolMetrics().queue_depth_peak->RecordMax(queue_.size());
  }
  work_cv_.notify_all();
  // The calling thread works its own batch, so completion never depends
  // on a worker being free (this is what makes nested calls safe).
  RunBatch(batch.get());
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&batch] { return batch->completed == batch->n; });
  if (batch->has_error) return batch->error;
  return Status::OK();
}

}  // namespace lsd
