#include "common/thread_pool.h"

#include <algorithm>
#include <string>

#include "common/fault_injection.h"

namespace lsd {

size_t ResolveThreadCount(size_t requested) {
  // Cap absurd requests (e.g. a negative CLI value wrapped through
  // size_t) — spawning cannot help past a small multiple of the
  // hardware, and std::vector::reserve(huge) aborts.
  constexpr size_t kMaxThreads = 256;
  if (requested != 0) return std::min(std::max<size_t>(requested, 1), kMaxThreads);
  size_t hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : std::min(hardware, kMaxThreads);
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t total = ResolveThreadCount(num_threads);
  workers_.reserve(total - 1);
  for (size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::shared_ptr<ThreadPool::Batch> ThreadPool::PickBatchLocked() {
  while (!queue_.empty() && queue_.front()->Exhausted()) queue_.pop_front();
  for (const std::shared_ptr<Batch>& batch : queue_) {
    if (!batch->Exhausted()) return batch;
  }
  return nullptr;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, &batch] {
        batch = PickBatchLocked();
        return stopping_ || batch != nullptr;
      });
      if (batch == nullptr) return;  // stopping
    }
    RunBatch(batch.get());
  }
}

void ThreadPool::RunBatch(Batch* batch) {
  for (;;) {
    size_t index = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch->n) return;
    Status status;
    if (!batch->failed.load(std::memory_order_acquire)) {
      // Fault seam: tasks are addressed by index, so an injected failure
      // hits the same task on every run and thread count. Key construction
      // is gated on an active injector to keep the common path free.
      if (FaultInjectionActive()) {
        status = CheckFault(FaultSite::kPoolTask, std::to_string(index));
      }
      if (status.ok()) status = batch->fn(index);
    }
    std::lock_guard<std::mutex> lock(batch->mu);
    if (!status.ok()) {
      batch->failed.store(true, std::memory_order_release);
      if (!batch->has_error || index < batch->error_index) {
        batch->has_error = true;
        batch->error_index = index;
        batch->error = std::move(status);
      }
    }
    if (++batch->completed == batch->n) batch->done_cv.notify_all();
  }
}

Status ThreadPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      if (FaultInjectionActive()) {
        LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kPoolTask, std::to_string(i)));
      }
      LSD_RETURN_IF_ERROR(fn(i));
    }
    return Status::OK();
  }
  auto batch = std::make_shared<Batch>(n, fn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(batch);
  }
  work_cv_.notify_all();
  // The calling thread works its own batch, so completion never depends
  // on a worker being free (this is what makes nested calls safe).
  RunBatch(batch.get());
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&batch] { return batch->completed == batch->n; });
  if (batch->has_error) return batch->error;
  return Status::OK();
}

}  // namespace lsd
