#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/fault_injection.h"
#include "common/metrics.h"

namespace lsd {
namespace {

/// Pool-wide metric handles, interned once. Handle pointers are stable for
/// the process lifetime (the registry is leaked), so caching them here
/// keeps the per-task cost to one thread-local increment.
struct PoolMetrics {
  Counter* tasks_run;
  Gauge* queue_depth_peak;
  Histogram* task_micros;
};

PoolMetrics& GetPoolMetrics() {
  static PoolMetrics metrics{
      MetricsRegistry::Global().GetCounter("pool.tasks_run"),
      MetricsRegistry::Global().GetGauge("pool.queue_depth_peak"),
      MetricsRegistry::Global().GetHistogram("pool.task_micros")};
  return metrics;
}

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

size_t ResolveThreadCount(size_t requested) {
  // Cap absurd requests (e.g. a negative CLI value wrapped through
  // size_t) — spawning cannot help past a small multiple of the
  // hardware, and std::vector::reserve(huge) aborts.
  constexpr size_t kMaxThreads = 256;
  if (requested != 0) return std::min(std::max<size_t>(requested, 1), kMaxThreads);
  size_t hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : std::min(hardware, kMaxThreads);
}

ThreadPool::ThreadPool(size_t num_threads)
    : total_(ResolveThreadCount(num_threads)) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::shared_ptr<ThreadPool::Batch> ThreadPool::PickBatchLocked() {
  while (!queue_.empty() && queue_.front()->Exhausted()) queue_.pop_front();
  for (const std::shared_ptr<Batch>& batch : queue_) {
    if (!batch->Exhausted()) return batch;
  }
  return nullptr;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, &batch] {
        batch = PickBatchLocked();
        return stopping_ || batch != nullptr;
      });
      if (batch == nullptr) return;  // stopping
    }
    RunBatch(batch.get());
  }
}

void ThreadPool::RunBatch(Batch* batch) {
  for (;;) {
    size_t begin = batch->next.fetch_add(batch->grain, std::memory_order_relaxed);
    if (begin >= batch->n) return;
    size_t end = std::min(begin + batch->grain, batch->n);
    // Lowest-indexed error inside this chunk; merged under one lock below.
    bool chunk_has_error = false;
    size_t chunk_error_index = 0;
    Status chunk_error;
    for (size_t index = begin; index < end; ++index) {
      if (chunk_has_error || batch->failed.load(std::memory_order_acquire)) {
        break;  // drain: the remaining claimed indices are skipped
      }
      Status status;
      // Fault seam: tasks are addressed by index, so an injected failure
      // hits the same task on every run and thread count. Key construction
      // is gated on an active injector to keep the common path free.
      if (FaultInjectionActive()) {
        status = CheckFault(FaultSite::kPoolTask, std::to_string(index));
      }
      if (status.ok()) {
        PoolMetrics& metrics = GetPoolMetrics();
        auto start = std::chrono::steady_clock::now();
        status = batch->fn(index);
        metrics.task_micros->Record(ElapsedMicros(start));
        metrics.tasks_run->Increment();
      }
      if (!status.ok()) {
        batch->failed.store(true, std::memory_order_release);
        chunk_has_error = true;
        chunk_error_index = index;
        chunk_error = std::move(status);
      }
    }
    std::lock_guard<std::mutex> lock(batch->mu);
    if (chunk_has_error &&
        (!batch->has_error || chunk_error_index < batch->error_index)) {
      batch->has_error = true;
      batch->error_index = chunk_error_index;
      batch->error = std::move(chunk_error);
    }
    batch->completed += end - begin;
    if (batch->completed == batch->n) batch->done_cv.notify_all();
  }
}

Status ThreadPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& fn,
                               size_t grain) {
  if (n == 0) return Status::OK();
  // Threads beyond the hardware's cannot run CPU-bound tasks any faster:
  // they only add context switching. When the machine has a single core
  // (or the pool a single thread), even the batch bookkeeping — shared
  // batch allocation, chunk claiming, completion wait — is pure overhead,
  // so an oversubscribed pool (num_threads=8 on one core) must take the
  // inline serial path and match the serial cost exactly. With workers
  // spawned lazily, such a pool also never leaves malloc's
  // single-threaded fast path.
  size_t hardware = std::thread::hardware_concurrency();
  size_t effective = hardware == 0
                         ? thread_count()
                         : std::min(thread_count(), hardware);
  if (thread_count() == 1 || n == 1 || effective == 1) {
    PoolMetrics& metrics = GetPoolMetrics();
    for (size_t i = 0; i < n; ++i) {
      if (FaultInjectionActive()) {
        LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kPoolTask, std::to_string(i)));
      }
      auto start = std::chrono::steady_clock::now();
      Status status = fn(i);
      metrics.task_micros->Record(ElapsedMicros(start));
      metrics.tasks_run->Increment();
      LSD_RETURN_IF_ERROR(status);
    }
    return Status::OK();
  }
  // Size chunks — and below, wake workers — for the parallelism the
  // machine actually has, not the pool's nominal size.
  if (grain == 0) {
    // Auto: ~4 chunks per effective thread keeps claiming overhead
    // per-chunk while leaving enough chunks to balance uneven task costs.
    grain = std::max<size_t>(1, n / (effective * 4));
  }
  auto batch = std::make_shared<Batch>(n, grain, fn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!workers_started_) {
      workers_started_ = true;
      workers_.reserve(total_ - 1);
      for (size_t i = 0; i + 1 < total_; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
      }
    }
    queue_.push_back(batch);
    GetPoolMetrics().queue_depth_peak->RecordMax(queue_.size());
  }
  // The calling thread takes one chunk itself, so only enough workers for
  // the remaining chunks need waking — and never more than can execute
  // simultaneously. A small batch on a large pool must not pay for a
  // wake-up storm of threads that would find nothing to claim.
  size_t chunks = (n + grain - 1) / grain;
  size_t to_wake = std::min({chunks - 1, workers_.size(), effective - 1});
  if (to_wake == workers_.size()) {
    work_cv_.notify_all();
  } else {
    for (size_t i = 0; i < to_wake; ++i) work_cv_.notify_one();
  }
  // The calling thread works its own batch, so completion never depends
  // on a worker being free (this is what makes nested calls safe).
  RunBatch(batch.get());
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&batch] { return batch->completed == batch->n; });
  if (batch->has_error) return batch->error;
  return Status::OK();
}

}  // namespace lsd
