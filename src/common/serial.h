#ifndef LSD_COMMON_SERIAL_H_
#define LSD_COMMON_SERIAL_H_

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/strings.h"

namespace lsd {

/// Line/field cursor over the text model format used by the persistence
/// layer (`Serialize`/`Deserialize` on classifiers, `LsdSystem::SaveModel`).
/// The format is line-oriented with space-separated fields. Free-form
/// tokens (vocabulary entries) are written through `EscapeToken`, which
/// guarantees the field contains no whitespace and is non-empty — lenient-
/// mode XML can hand the learners element names with embedded whitespace,
/// so "tokenizers never emit whitespace" does not hold for every producer.
class LineReader {
 public:
  explicit LineReader(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  size_t line_number() const { return line_number_; }

  /// Returns the fields of the next non-empty line.
  StatusOr<std::vector<std::string>> Next() {
    while (!AtEnd()) {
      size_t end = text_.find('\n', pos_);
      if (end == std::string_view::npos) end = text_.size();
      std::string_view line = text_.substr(pos_, end - pos_);
      pos_ = end + 1;
      ++line_number_;
      std::vector<std::string> fields = SplitAny(line, " \t\r");
      if (!fields.empty()) return fields;
    }
    return Status::ParseError("unexpected end of model text");
  }

  /// Like Next(), but requires the first field to equal `keyword` and the
  /// field count (including the keyword) to be at least `min_fields`.
  StatusOr<std::vector<std::string>> Expect(std::string_view keyword,
                                            size_t min_fields) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> fields, Next());
    if (fields[0] != keyword || fields.size() < min_fields) {
      return Status::ParseError(
          StrFormat("model line %zu: expected '%s' with >=%zu fields",
                    line_number_, std::string(keyword).c_str(), min_fields));
    }
    return fields;
  }

  /// Consumes and returns the next `n` raw lines verbatim (including empty
  /// ones) joined with '\n' — used for framed nested payloads.
  StatusOr<std::string> TakeLines(size_t n) {
    std::string out;
    for (size_t i = 0; i < n; ++i) {
      if (AtEnd()) return Status::ParseError("framed payload truncated");
      size_t end = text_.find('\n', pos_);
      if (end == std::string_view::npos) end = text_.size();
      out.append(text_.substr(pos_, end - pos_));
      out.push_back('\n');
      pos_ = end + 1;
      ++line_number_;
    }
    return out;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  size_t line_number_ = 0;
};

/// Requires `reader` to hold nothing but blank lines from here on; returns
/// ParseError naming `what` otherwise. Deserializers call this after the
/// last expected line: payloads now arrive exactly-bounded (CRC-framed
/// artifact sections), so trailing content is damage or a framing bug, and
/// silently ignoring it would mask both.
inline Status ExpectAtEnd(LineReader& reader, const char* what) {
  StatusOr<std::vector<std::string>> extra = reader.Next();
  if (extra.ok()) {
    return Status::ParseError(
        StrFormat("%s: trailing content at line %zu ('%s'...)", what,
                  reader.line_number(), extra->front().c_str()));
  }
  return Status::OK();
}

/// Percent-escapes `token` into a single non-empty whitespace-free field:
/// '%', ASCII whitespace, other control bytes, and DEL become "%XX" (two
/// uppercase hex digits); everything else (including UTF-8 bytes) passes
/// through. The empty token encodes as a lone "%", which `EscapeToken`
/// can never otherwise produce (escapes always carry two hex digits).
inline std::string EscapeToken(std::string_view token) {
  if (token.empty()) return "%";
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(token.size());
  for (char c : token) {
    unsigned char byte = static_cast<unsigned char>(c);
    bool needs_escape = c == '%' || byte <= 0x20 || byte == 0x7f;
    if (needs_escape) {
      out.push_back('%');
      out.push_back(kHex[byte >> 4]);
      out.push_back(kHex[byte & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Inverse of `EscapeToken`. Rejects malformed escapes so a truncated or
/// hand-edited model file fails loudly instead of aliasing tokens.
inline StatusOr<std::string> UnescapeToken(std::string_view field) {
  if (field == "%") return std::string();
  auto hex_value = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '%') {
      out.push_back(field[i]);
      continue;
    }
    if (i + 2 >= field.size()) {
      return Status::ParseError("bad token escape in field: " +
                                std::string(field));
    }
    int hi = hex_value(field[i + 1]);
    int lo = hex_value(field[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::ParseError("bad token escape in field: " +
                                std::string(field));
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

/// Field conversion helpers; all return ParseError with context on failure.
inline StatusOr<double> FieldToDouble(const std::string& field) {
  double value;
  if (!ParseDouble(field, &value)) {
    return Status::ParseError("bad numeric field: " + field);
  }
  return value;
}

inline StatusOr<size_t> FieldToSize(const std::string& field) {
  if (!IsAllDigits(field)) {
    return Status::ParseError("bad integer field: " + field);
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(field.c_str(), &end, 10);
  if (errno == ERANGE || *end != '\0' ||
      value > static_cast<unsigned long long>(SIZE_MAX)) {
    return Status::ParseError("integer field out of range: " + field);
  }
  return static_cast<size_t>(value);
}

inline StatusOr<int64_t> FieldToInt64(const std::string& field) {
  std::string digits = field;
  bool negative = !digits.empty() && digits[0] == '-';
  if (negative) digits.erase(0, 1);
  if (!IsAllDigits(digits)) {
    return Status::ParseError("bad integer field: " + field);
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(field.c_str(), &end, 10);
  if (errno == ERANGE || *end != '\0') {
    return Status::ParseError("integer field out of range: " + field);
  }
  return static_cast<int64_t>(value);
}

inline StatusOr<int> FieldToInt(const std::string& field) {
  std::string digits = field;
  bool negative = !digits.empty() && digits[0] == '-';
  if (negative) digits.erase(0, 1);
  if (!IsAllDigits(digits)) {
    return Status::ParseError("bad integer field: " + field);
  }
  // The digit gate above fixes the format; strtol (unlike the atoi this
  // replaces) still has to police the value: a 20-digit field is valid
  // syntax but silently became garbage through atoi's undefined overflow.
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(field.c_str(), &end, 10);
  if (errno == ERANGE || *end != '\0' || value < INT_MIN || value > INT_MAX) {
    return Status::ParseError("integer field out of range: " + field);
  }
  return static_cast<int>(value);
}

/// Counts the lines of `text` (as written by the serializers: every line
/// ends with '\n').
inline size_t CountLines(std::string_view text) {
  size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

}  // namespace lsd

#endif  // LSD_COMMON_SERIAL_H_
