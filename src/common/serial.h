#ifndef LSD_COMMON_SERIAL_H_
#define LSD_COMMON_SERIAL_H_

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/strings.h"

namespace lsd {

/// Line/field cursor over the text model format used by the persistence
/// layer (`Serialize`/`Deserialize` on classifiers, `LsdSystem::SaveModel`).
/// The format is line-oriented with space-separated fields; tokens written
/// by the library never contain whitespace (the tokenizers guarantee it),
/// so no quoting is needed.
class LineReader {
 public:
  explicit LineReader(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  size_t line_number() const { return line_number_; }

  /// Returns the fields of the next non-empty line.
  StatusOr<std::vector<std::string>> Next() {
    while (!AtEnd()) {
      size_t end = text_.find('\n', pos_);
      if (end == std::string_view::npos) end = text_.size();
      std::string_view line = text_.substr(pos_, end - pos_);
      pos_ = end + 1;
      ++line_number_;
      std::vector<std::string> fields = SplitAny(line, " \t\r");
      if (!fields.empty()) return fields;
    }
    return Status::ParseError("unexpected end of model text");
  }

  /// Like Next(), but requires the first field to equal `keyword` and the
  /// field count (including the keyword) to be at least `min_fields`.
  StatusOr<std::vector<std::string>> Expect(std::string_view keyword,
                                            size_t min_fields) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> fields, Next());
    if (fields[0] != keyword || fields.size() < min_fields) {
      return Status::ParseError(
          StrFormat("model line %zu: expected '%s' with >=%zu fields",
                    line_number_, std::string(keyword).c_str(), min_fields));
    }
    return fields;
  }

  /// Consumes and returns the next `n` raw lines verbatim (including empty
  /// ones) joined with '\n' — used for framed nested payloads.
  StatusOr<std::string> TakeLines(size_t n) {
    std::string out;
    for (size_t i = 0; i < n; ++i) {
      if (AtEnd()) return Status::ParseError("framed payload truncated");
      size_t end = text_.find('\n', pos_);
      if (end == std::string_view::npos) end = text_.size();
      out.append(text_.substr(pos_, end - pos_));
      out.push_back('\n');
      pos_ = end + 1;
      ++line_number_;
    }
    return out;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  size_t line_number_ = 0;
};

/// Field conversion helpers; all return ParseError with context on failure.
inline StatusOr<double> FieldToDouble(const std::string& field) {
  double value;
  if (!ParseDouble(field, &value)) {
    return Status::ParseError("bad numeric field: " + field);
  }
  return value;
}

inline StatusOr<size_t> FieldToSize(const std::string& field) {
  if (!IsAllDigits(field)) {
    return Status::ParseError("bad integer field: " + field);
  }
  return static_cast<size_t>(std::strtoull(field.c_str(), nullptr, 10));
}

inline StatusOr<int> FieldToInt(const std::string& field) {
  std::string digits = field;
  bool negative = !digits.empty() && digits[0] == '-';
  if (negative) digits.erase(0, 1);
  if (!IsAllDigits(digits)) {
    return Status::ParseError("bad integer field: " + field);
  }
  int value = std::atoi(field.c_str());
  return value;
}

/// Counts the lines of `text` (as written by the serializers: every line
/// ends with '\n').
inline size_t CountLines(std::string_view text) {
  size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

}  // namespace lsd

#endif  // LSD_COMMON_SERIAL_H_
