#ifndef LSD_COMMON_ARTIFACT_IO_H_
#define LSD_COMMON_ARTIFACT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lsd {

/// Crash-safe artifact persistence. Every durable file the system writes —
/// trained models, checkpoint manifests, run reports, metrics and trace
/// snapshots — goes through this layer, which provides two guarantees:
///
///  1. **Atomic publication** (`WriteFileAtomic`): contents are written to
///     a temp file in the destination directory, flushed, fsync'd, and
///     renamed over the destination. A crash, full disk, or injected fault
///     at any point leaves the destination either absent or holding its
///     previous complete contents — never a torn prefix.
///
///  2. **Validated framing** (`WriteArtifact` / `ReadArtifact`): payloads
///     are wrapped in a versioned header with per-section byte lengths and
///     CRC32 checksums. The loader classifies damage instead of handing
///     garbage to a deserializer:
///        - not an artifact (bad magic)       -> kParseError
///        - version skew (future format)      -> kFailedPrecondition
///        - truncation (file ends early)      -> kOutOfRange
///        - checksum mismatch (bit flip)      -> kDataLoss
///
/// On-disk layout (text header, binary-safe payloads):
///
///     lsd-artifact 1 <kind> <n-sections> <table-crc32-hex>\n
///     s <name> <payload-bytes> <payload-crc32-hex>\n      (n-sections times)
///     ---\n
///     <section payloads, concatenated in table order>
///
/// The table CRC covers the section-table lines, so a bit flip anywhere in
/// the file lands in a checksummed region.

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`.
uint32_t Crc32(std::string_view data);

/// One named payload inside an artifact. Payloads are arbitrary bytes;
/// names must be non-empty and free of whitespace.
struct ArtifactSection {
  std::string name;
  std::string payload;
};

/// A decoded artifact: its kind tag plus its sections in file order.
struct Artifact {
  std::string kind;
  std::vector<ArtifactSection> sections;

  /// First section named `name`, or nullptr.
  const ArtifactSection* Find(std::string_view name) const;
};

/// The artifact format version this build writes and reads.
inline constexpr uint32_t kArtifactFormatVersion = 1;

/// Durably replaces `path` with `contents`: temp file + fsync + atomic
/// rename (+ best-effort directory fsync). Fault seams: kFileWrite (open /
/// write), kFileSync (fsync), kFileRename (publish rename); on any failure
/// the temp file is removed and the destination is untouched. Injected
/// write-corruption rules (FaultInjector::CorruptMatching) mangle the
/// persisted bytes while still reporting success — simulating torn writes
/// for loader tests.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Encodes `artifact` into the framed on-disk representation.
/// `artifact.kind` and section names must be non-empty and whitespace-free
/// (LSD_CHECK'd).
std::string EncodeArtifact(const Artifact& artifact);

/// Validates and decodes a framed artifact from memory. When
/// `expected_kind` is non-empty, a structurally valid artifact of a
/// different kind is rejected with kInvalidArgument.
StatusOr<Artifact> DecodeArtifact(std::string_view bytes,
                                  std::string_view expected_kind = {});

/// EncodeArtifact + WriteFileAtomic.
Status WriteArtifact(const std::string& path, const Artifact& artifact);

/// Reads (size-capped, see `ReadFileToString`) and decodes the artifact at
/// `path`, classifying corruption as documented above.
StatusOr<Artifact> ReadArtifact(const std::string& path,
                                std::string_view expected_kind = {},
                                size_t max_bytes = 0);

}  // namespace lsd

#endif  // LSD_COMMON_ARTIFACT_IO_H_
