#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace lsd {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_level.load()) return;
  std::string text = stream_.str();
  std::fprintf(stderr, "%s\n", text.c_str());
}

}  // namespace internal_logging
}  // namespace lsd
