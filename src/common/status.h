#ifndef LSD_COMMON_STATUS_H_
#define LSD_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace lsd {

/// Canonical error codes used throughout the library. Modeled after the
/// database-systems convention (RocksDB / Arrow) of returning rich status
/// objects instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kParseError,
  kUnimplemented,
  kInternal,
  /// A Deadline (common/deadline.h) expired before the operation could
  /// complete and no anytime fallback was possible.
  kDeadlineExceeded,
  /// Persisted bytes fail their integrity check (a CRC mismatch in an
  /// artifact section — a bit flip, torn write, or hand edit). Distinct
  /// from kParseError so callers can tell "this file was damaged after it
  /// was written" from "this text never was a model".
  kDataLoss,
  /// The service cannot take the work right now — a full request queue, a
  /// deadline that admission control knows cannot be met, or a stopped
  /// worker fleet. Unlike kDeadlineExceeded (the budget ran out mid-work),
  /// kUnavailable is returned *before* any work is done: the caller may
  /// retry elsewhere or later without wondering about partial effects.
  kUnavailable,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A `Status` describes the outcome of a fallible operation: either OK or
/// an error code plus a human-readable message. `Status` is cheap to copy
/// and move; the OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders the status as "Code: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// `StatusOr<T>` holds either a value of type `T` or an error `Status`.
/// Callers must check `ok()` before dereferencing. Typical use:
///
///   StatusOr<Document> doc = ParseXml(text);
///   if (!doc.ok()) return doc.status();
///   Use(doc.value());
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status.ok()` must be false.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace lsd

/// Evaluates `expr` (a Status expression) and returns it from the current
/// function if it is not OK.
#define LSD_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::lsd::Status _lsd_status = (expr);          \
    if (!_lsd_status.ok()) return _lsd_status;   \
  } while (0)

/// Evaluates `rexpr` (a StatusOr<T> expression); on error returns its status
/// from the current function, otherwise assigns the value to `lhs`.
#define LSD_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto LSD_CONCAT_(_lsd_sor_, __LINE__) = (rexpr);          \
  if (!LSD_CONCAT_(_lsd_sor_, __LINE__).ok())               \
    return LSD_CONCAT_(_lsd_sor_, __LINE__).status();       \
  lhs = std::move(LSD_CONCAT_(_lsd_sor_, __LINE__)).value()

#define LSD_CONCAT_IMPL_(a, b) a##b
#define LSD_CONCAT_(a, b) LSD_CONCAT_IMPL_(a, b)

#endif  // LSD_COMMON_STATUS_H_
