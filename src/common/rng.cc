#include "common/rng.h"

#include <cmath>

namespace lsd {
namespace {

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& word : s_) word = SplitMix64(&x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value;
  do {
    value = Next();
  } while (value >= limit);
  return lo + static_cast<int64_t>(value % range);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  double u2 = Uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

size_t Rng::PickWeighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0) {
    return static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0 ? weights[i] : 0);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace lsd
