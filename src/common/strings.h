#ifndef LSD_COMMON_STRINGS_H_
#define LSD_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace lsd {

/// Returns `s` lower-cased (ASCII only).
std::string ToLower(std::string_view s);

/// Returns `s` upper-cased (ASCII only).
std::string ToUpper(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits `s` on `sep`, omitting empty pieces when `skip_empty` is true.
std::vector<std::string> Split(std::string_view s, char sep,
                               bool skip_empty = false);

/// Splits `s` on any character in `seps`, omitting empty pieces.
std::vector<std::string> SplitAny(std::string_view s, std::string_view seps);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Returns true if `haystack` contains `needle`.
bool Contains(std::string_view haystack, std::string_view needle);

/// Returns true if `haystack` contains `needle` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Replaces every occurrence of `from` in `s` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Escapes `s` for use inside a double-quoted JSON string: backslash,
/// quote, and control characters become their JSON escape sequences;
/// everything else (including UTF-8 bytes) passes through.
std::string JsonEscape(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Returns true if every character of `s` is an ASCII digit (and `s` is
/// non-empty).
bool IsAllDigits(std::string_view s);

/// Parses a double, accepting surrounding whitespace. Returns false on
/// failure.
bool ParseDouble(std::string_view s, double* out);

}  // namespace lsd

#endif  // LSD_COMMON_STRINGS_H_
