#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace lsd {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep, bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      std::string_view piece = s.substr(start, i - start);
      if (!skip_empty || !piece.empty()) out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitAny(std::string_view s, std::string_view seps) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || seps.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  return Contains(ToLower(haystack), ToLower(needle));
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    unsigned char byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n";  break;
      case '\r': out += "\\r";  break;
      case '\t': out += "\\t";  break;
      default:
        if (byte < 0x20) {
          out += StrFormat("\\u%04x", byte);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  std::string buf(StripWhitespace(s));
  if (buf.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

}  // namespace lsd
