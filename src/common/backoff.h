#ifndef LSD_COMMON_BACKOFF_H_
#define LSD_COMMON_BACKOFF_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/deadline.h"
#include "common/status.h"

namespace lsd {

/// Retry policy: how many times to retry a retryable failure and how long
/// to wait between attempts. Delays grow exponentially from `initial_ms`
/// by `multiplier`, are capped at `max_ms`, and are then jittered downward
/// so a burst of failing requests does not retry in lockstep (the classic
/// thundering-herd fix). The jitter is *seeded*: the delay for a given
/// (seed, key, attempt) triple is a pure function, so a retried run — and
/// every thread count — waits identically. See DESIGN.md "Service layer &
/// overload behavior".
struct BackoffPolicy {
  /// Retries after the first attempt (0 = never retry).
  size_t max_retries = 2;
  /// Delay before the first retry, pre-jitter.
  int64_t initial_ms = 10;
  /// Growth factor per retry (values < 1 are treated as 1).
  double multiplier = 2.0;
  /// Upper bound on the pre-jitter delay.
  int64_t max_ms = 1000;
  /// Fraction of the delay the jitter may remove: the actual delay is
  /// uniform in [delay * (1 - jitter), delay]. 0 disables jitter; values
  /// outside [0, 1] are clamped.
  double jitter = 0.5;
};

/// Deterministic jittered-exponential-backoff schedule for one policy and
/// seed. Stateless between calls: `DelayMillis` is a pure function of its
/// arguments, which is what makes retry timing reproducible under test.
class Backoff {
 public:
  Backoff(BackoffPolicy policy, uint64_t seed)
      : policy_(policy), seed_(seed) {}

  const BackoffPolicy& policy() const { return policy_; }

  /// Delay before retry number `attempt` (0-based: attempt 0 is the wait
  /// before the first retry) of the work identified by `key`. Always in
  /// [0, policy.max_ms].
  int64_t DelayMillis(std::string_view key, size_t attempt) const;

 private:
  BackoffPolicy policy_;
  uint64_t seed_;
};

/// Runs `fn` up to `1 + policy.max_retries` times, sleeping the schedule's
/// delay between attempts via `sleep_millis` (injectable so tests never
/// really sleep). An attempt's error is retried only when `retryable(status)`
/// says so AND the remaining deadline still covers the next delay — a retry
/// that could not finish in budget is not started. Returns the final
/// attempt's status; `*attempts` (optional) reports how many attempts ran
/// and `*retries` (optional) how many of them were retries.
Status RetryWithBackoff(
    const Backoff& backoff, std::string_view key, const Deadline& deadline,
    const std::function<bool(const Status&)>& retryable,
    const std::function<void(int64_t)>& sleep_millis,
    const std::function<Status()>& fn, size_t* attempts = nullptr,
    size_t* retries = nullptr);

}  // namespace lsd

#endif  // LSD_COMMON_BACKOFF_H_
