#ifndef LSD_COMMON_FILE_UTIL_H_
#define LSD_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace lsd {

/// Default byte cap for whole-file reads — matches the parser-facing
/// `ParseLimits::max_input_bytes` default (xml/parse_report.h), so an
/// oversized model or source file is rejected with the same kOutOfRange
/// taxonomy as an oversized parse input.
inline constexpr size_t kDefaultMaxFileBytes = 64u << 20;

/// Reads an entire file into a string. Returns NotFound when the file
/// cannot be opened, Internal on read errors, and OutOfRange when the file
/// exceeds `max_bytes` (0 = unlimited).
StatusOr<std::string> ReadFileToString(const std::string& path,
                                       size_t max_bytes = kDefaultMaxFileBytes);

/// Writes `contents` to `path`, replacing any existing file. Delegates to
/// `WriteFileAtomic` (common/artifact_io.h): a crash or failure mid-write
/// leaves the destination either absent or holding its previous complete
/// contents, never a torn prefix.
Status WriteStringToFile(const std::string& path, std::string_view contents);

/// True when a file exists at `path` (any kind, following symlinks).
bool FileExists(const std::string& path);

}  // namespace lsd

#endif  // LSD_COMMON_FILE_UTIL_H_
