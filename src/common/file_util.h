#ifndef LSD_COMMON_FILE_UTIL_H_
#define LSD_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace lsd {

/// Reads an entire file into a string. Returns NotFound when the file
/// cannot be opened and Internal on read errors.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view contents);

}  // namespace lsd

#endif  // LSD_COMMON_FILE_UTIL_H_
