#ifndef LSD_COMMON_TRACE_H_
#define LSD_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace lsd {

/// One completed span: a named interval on one thread.
struct TraceEvent {
  std::string name;
  /// Microseconds since the recorder was started.
  uint64_t begin_us = 0;
  uint64_t duration_us = 0;
  /// Small stable id assigned per thread in first-trace order.
  uint32_t tid = 0;
};

/// Process-wide span recorder, off by default. When off, a `TraceSpan`
/// costs a single relaxed atomic load; when on, each span reads the clock
/// twice and appends one event to a per-thread buffer (its mutex is only
/// ever contended by the final merge). `ToChromeJson` renders the Chrome
/// `trace_event` format — load the file at chrome://tracing or
/// https://ui.perfetto.dev.
///
/// Span naming convention (DESIGN.md "Metrics & tracing"): lowercase
/// phase path segments joined with '/', with the dynamic operand (learner
/// name, tag) appended in parentheses — e.g. "train/learner(whirl)",
/// "cv/fold", "astar/search".
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Clears any previous events and starts recording; the epoch for
  /// `TraceEvent::begin_us` is this call.
  void Start();
  /// Stops recording; buffered events stay available for rendering.
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// All completed spans, merged across threads and sorted by begin time
  /// (ties by tid). Safe to call while recording (a snapshot).
  std::vector<TraceEvent> Events();

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string ToChromeJson();

  /// Renders `ToChromeJson` to `path`.
  Status WriteChromeJson(const std::string& path);

 private:
  friend class TraceSpan;

  struct Buffer;
  struct BufferHandle;

  static BufferHandle& TlsBuffers();
  /// This thread's event buffer for this recorder.
  Buffer* LocalBuffer();
  /// Moves an exiting thread's events into `retired_`.
  void Retire(Buffer* buffer);
  /// Microseconds since Start().
  uint64_t NowMicros() const;

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> epoch_ns_{0};

  std::mutex mu_;
  std::vector<Buffer*> buffers_;      // live per-thread buffers
  std::vector<TraceEvent> retired_;   // events from exited threads
  uint32_t next_tid_ = 0;
};

/// RAII span: records [construction, destruction) into the recorder when
/// recording is on. Construct with a literal phase name; use the
/// two-argument form when a dynamic operand is worth the string build.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     TraceRecorder& recorder = TraceRecorder::Global());
  /// Renders as "name(detail)". `detail` is only evaluated by the caller;
  /// prefer `recorder.enabled()` guards around expensive detail strings.
  TraceSpan(const char* name, const std::string& detail,
            TraceRecorder& recorder = TraceRecorder::Global());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  bool active_;
  uint64_t begin_us_ = 0;
  std::string name_;
};

}  // namespace lsd

#endif  // LSD_COMMON_TRACE_H_
