#include "common/metrics.h"

#include <algorithm>
#include <atomic>

#include "common/strings.h"

namespace lsd {
namespace {

/// Bucket index for `value`: floor(log2(value)) clamped to the table, with
/// 0 and 1 mapping to bucket 0.
size_t BucketOf(uint64_t value) {
  size_t bucket = 0;
  while (value > 1 && bucket + 1 < Histogram::kBuckets) {
    value >>= 1;
    ++bucket;
  }
  return bucket;
}

}  // namespace

/// Per-thread storage. Cells are atomics so the owning thread's relaxed
/// writes never race with Snapshot()'s relaxed reads (TSan-clean without a
/// lock on the hot path). Only the owner mutates cell *arrays* — and only
/// under `mu`, which Snapshot also takes — so growth cannot invalidate a
/// concurrent merge.
struct MetricsRegistry::Shard {
  template <typename Cell>
  struct SlotArray {
    std::unique_ptr<Cell[]> cells;
    size_t size = 0;

    /// Owner-only: returns the cell for `slot`, growing under `mu`.
    Cell* At(size_t slot, std::mutex* mu) {
      if (slot >= size) Grow(slot, mu);
      return &cells[slot];
    }

    void Grow(size_t slot, std::mutex* mu) {
      size_t new_size = std::max<size_t>(slot + 1, std::max<size_t>(8, size * 2));
      auto grown = std::make_unique<Cell[]>(new_size);
      for (size_t i = 0; i < size; ++i) grown[i].CopyFrom(cells[i]);
      std::lock_guard<std::mutex> lock(*mu);
      cells = std::move(grown);
      size = new_size;
    }
  };

  struct CounterCell {
    std::atomic<uint64_t> value{0};
    void CopyFrom(const CounterCell& other) {
      value.store(other.value.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    }
  };
  struct HistogramCell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
    std::atomic<uint64_t> buckets[Histogram::kBuckets] = {};
    void CopyFrom(const HistogramCell& other) {
      count.store(other.count.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      sum.store(other.sum.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
      max.store(other.max.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
      for (size_t b = 0; b < Histogram::kBuckets; ++b) {
        buckets[b].store(other.buckets[b].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      }
    }
  };

  /// Guards the cell arrays (growth and merge), never individual cells.
  std::mutex mu;
  SlotArray<CounterCell> counters;
  SlotArray<CounterCell> gauges;
  SlotArray<HistogramCell> histograms;

  // Owner-only fast paths. A single-writer atomic needs no RMW: plain
  // load+store keeps the write a couple of instructions.
  void AddCounter(size_t slot, uint64_t delta) {
    auto* cell = counters.At(slot, &mu);
    cell->value.store(cell->value.load(std::memory_order_relaxed) + delta,
                      std::memory_order_relaxed);
  }
  void MaxGauge(size_t slot, uint64_t value) {
    auto* cell = gauges.At(slot, &mu);
    if (value > cell->value.load(std::memory_order_relaxed)) {
      cell->value.store(value, std::memory_order_relaxed);
    }
  }
  void RecordHistogram(size_t slot, uint64_t value) {
    auto* cell = histograms.At(slot, &mu);
    cell->count.store(cell->count.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    cell->sum.store(cell->sum.load(std::memory_order_relaxed) + value,
                    std::memory_order_relaxed);
    if (value > cell->max.load(std::memory_order_relaxed)) {
      cell->max.store(value, std::memory_order_relaxed);
    }
    auto& bucket = cell->buckets[BucketOf(value)];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  }

  /// Zeroes every cell (used by Reset; caller holds `mu`).
  void ZeroLocked() {
    for (size_t i = 0; i < counters.size; ++i) {
      counters.cells[i].value.store(0, std::memory_order_relaxed);
    }
    for (size_t i = 0; i < gauges.size; ++i) {
      gauges.cells[i].value.store(0, std::memory_order_relaxed);
    }
    for (size_t i = 0; i < histograms.size; ++i) {
      HistogramCell& cell = histograms.cells[i];
      cell.count.store(0, std::memory_order_relaxed);
      cell.sum.store(0, std::memory_order_relaxed);
      cell.max.store(0, std::memory_order_relaxed);
      for (size_t b = 0; b < Histogram::kBuckets; ++b) {
        cell.buckets[b].store(0, std::memory_order_relaxed);
      }
    }
  }

  /// Accumulates this shard into `out` (caller holds `mu`).
  void MergeIntoLocked(MetricsRegistry::Totals* out) const {
    if (out->counters.size() < counters.size) {
      out->counters.resize(counters.size, 0);
    }
    for (size_t i = 0; i < counters.size; ++i) {
      out->counters[i] += counters.cells[i].value.load(std::memory_order_relaxed);
    }
    if (out->gauges.size() < gauges.size) out->gauges.resize(gauges.size, 0);
    for (size_t i = 0; i < gauges.size; ++i) {
      out->gauges[i] = std::max(
          out->gauges[i], gauges.cells[i].value.load(std::memory_order_relaxed));
    }
    if (out->histograms.size() < histograms.size) {
      out->histograms.resize(histograms.size);
    }
    for (size_t i = 0; i < histograms.size; ++i) {
      const HistogramCell& cell = histograms.cells[i];
      HistogramTotals& total = out->histograms[i];
      total.count += cell.count.load(std::memory_order_relaxed);
      total.sum += cell.sum.load(std::memory_order_relaxed);
      total.max =
          std::max(total.max, cell.max.load(std::memory_order_relaxed));
      for (size_t b = 0; b < Histogram::kBuckets; ++b) {
        total.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
};

namespace {

/// Registries that are still alive, so a thread exiting after a (non
/// global) registry was destroyed can skip retiring into it. Leaked to
/// survive static destruction order.
struct LivenessSet {
  std::mutex mu;
  std::vector<MetricsRegistry*> live;
};
LivenessSet& Liveness() {
  static LivenessSet* set = new LivenessSet();
  return *set;
}

}  // namespace

/// One thread's shards across every registry it touched. The destructor
/// runs at thread exit and folds each shard into its registry (when that
/// registry is still alive).
struct MetricsRegistry::ShardHandle {
  struct Entry {
    MetricsRegistry* registry;
    std::unique_ptr<Shard> shard;
  };
  std::vector<Entry> entries;

  Shard* Find(MetricsRegistry* registry) {
    for (Entry& entry : entries) {
      if (entry.registry == registry) return entry.shard.get();
    }
    return nullptr;
  }

  ~ShardHandle() {
    for (Entry& entry : entries) {
      LivenessSet& set = Liveness();
      std::lock_guard<std::mutex> lock(set.mu);
      bool alive = std::find(set.live.begin(), set.live.end(),
                             entry.registry) != set.live.end();
      if (alive) entry.registry->Retire(entry.shard.get());
    }
  }
};

MetricsRegistry::ShardHandle& MetricsRegistry::TlsShards() {
  thread_local ShardHandle tls_shards;
  return tls_shards;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::MetricsRegistry() {
  LivenessSet& set = Liveness();
  std::lock_guard<std::mutex> lock(set.mu);
  set.live.push_back(this);
}

MetricsRegistry::~MetricsRegistry() {
  LivenessSet& set = Liveness();
  std::lock_guard<std::mutex> lock(set.mu);
  set.live.erase(std::remove(set.live.begin(), set.live.end(), this),
                 set.live.end());
  // Live shards stay owned by their threads; with this registry removed
  // from the liveness set their exit hooks become no-ops.
}

MetricsRegistry::Shard* MetricsRegistry::LocalShard() {
  ShardHandle& handle = TlsShards();
  Shard* shard = handle.Find(this);
  if (shard != nullptr) return shard;
  auto owned = std::make_unique<Shard>();
  shard = owned.get();
  handle.entries.push_back({this, std::move(owned)});
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(shard);
  return shard;
}

void MetricsRegistry::Retire(Shard* shard) {
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->MergeIntoLocked(&retired_);
  }
  shards_.erase(std::remove(shards_.begin(), shards_.end(), shard),
                shards_.end());
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counter_slots_.emplace(name, counter_handles_.size());
  if (inserted) {
    counter_handles_.emplace_back(new Counter(this, it->second));
  }
  return counter_handles_[it->second].get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauge_slots_.emplace(name, gauge_handles_.size());
  if (inserted) {
    gauge_handles_.emplace_back(new Gauge(this, it->second));
  }
  return gauge_handles_[it->second].get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      histogram_slots_.emplace(name, histogram_handles_.size());
  if (inserted) {
    histogram_handles_.emplace_back(new Histogram(this, it->second));
  }
  return histogram_handles_[it->second].get();
}

void Counter::Increment(uint64_t delta) {
  registry_->LocalShard()->AddCounter(slot_, delta);
}

void Gauge::RecordMax(uint64_t value) {
  registry_->LocalShard()->MaxGauge(slot_, value);
}

void Histogram::Record(uint64_t value) {
  registry_->LocalShard()->RecordHistogram(slot_, value);
}

MetricsRegistry::Totals MetricsRegistry::MergeLocked() {
  Totals totals = retired_;
  for (Shard* shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->MergeIntoLocked(&totals);
  }
  // Slots interned but never touched by any shard still exist: size the
  // totals to the slot tables so every registered metric reports (as 0).
  if (totals.counters.size() < counter_slots_.size()) {
    totals.counters.resize(counter_slots_.size(), 0);
  }
  if (totals.gauges.size() < gauge_slots_.size()) {
    totals.gauges.resize(gauge_slots_.size(), 0);
  }
  if (totals.histograms.size() < histogram_slots_.size()) {
    totals.histograms.resize(histogram_slots_.size());
  }
  return totals;
}

MetricsSnapshot MetricsRegistry::Snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  Totals totals = MergeLocked();
  MetricsSnapshot snapshot;
  // std::map iteration is name-sorted already.
  for (const auto& [name, slot] : counter_slots_) {
    snapshot.counters.push_back({name, totals.counters[slot]});
  }
  for (const auto& [name, slot] : gauge_slots_) {
    snapshot.gauges.push_back({name, totals.gauges[slot]});
  }
  for (const auto& [name, slot] : histogram_slots_) {
    const HistogramTotals& h = totals.histograms[slot];
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.count = h.count;
    value.sum = h.sum;
    value.max = h.max;
    value.buckets.assign(h.buckets, h.buckets + Histogram::kBuckets);
    snapshot.histograms.push_back(std::move(value));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  retired_ = Totals();
  for (Shard* shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->ZeroLocked();
  }
}

uint64_t MetricsSnapshot::CounterOf(const std::string& name) const {
  for (const CounterValue& counter : counters) {
    if (counter.name == name) return counter.value;
  }
  return 0;
}

uint64_t MetricsSnapshot::GaugeOf(const std::string& name) const {
  for (const GaugeValue& gauge : gauges) {
    if (gauge.name == name) return gauge.value;
  }
  return 0;
}

uint64_t MetricsSnapshot::HistogramSumOf(const std::string& name) const {
  for (const HistogramValue& histogram : histograms) {
    if (histogram.name == name) return histogram.sum;
  }
  return 0;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += StrFormat("%s\n    \"%s\": %llu", i == 0 ? "" : ",",
                     JsonEscape(counters[i].name).c_str(),
                     static_cast<unsigned long long>(counters[i].value));
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += StrFormat("%s\n    \"%s\": %llu", i == 0 ? "" : ",",
                     JsonEscape(gauges[i].name).c_str(),
                     static_cast<unsigned long long>(gauges[i].value));
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out += StrFormat(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"max\": %llu, "
        "\"buckets\": [",
        i == 0 ? "" : ",", JsonEscape(h.name).c_str(),
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum),
        static_cast<unsigned long long>(h.max));
    // Trailing zero buckets are elided; the bucket base (2^i) is implicit.
    size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (size_t b = 0; b < last; ++b) {
      out += StrFormat("%s%llu", b == 0 ? "" : ", ",
                       static_cast<unsigned long long>(h.buckets[b]));
    }
    out += "]}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  for (const CounterValue& counter : counters) {
    out += StrFormat("%s=%llu\n", counter.name.c_str(),
                     static_cast<unsigned long long>(counter.value));
  }
  for (const GaugeValue& gauge : gauges) {
    out += StrFormat("%s=%llu\n", gauge.name.c_str(),
                     static_cast<unsigned long long>(gauge.value));
  }
  for (const HistogramValue& h : histograms) {
    out += StrFormat("%s: count=%llu sum=%llu max=%llu\n", h.name.c_str(),
                     static_cast<unsigned long long>(h.count),
                     static_cast<unsigned long long>(h.sum),
                     static_cast<unsigned long long>(h.max));
  }
  return out;
}

}  // namespace lsd
