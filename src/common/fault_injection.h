#ifndef LSD_COMMON_FAULT_INJECTION_H_
#define LSD_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lsd {

/// Seams where a `FaultInjector` may force a failure. Each seam passes a
/// stable key describing the call (a file path, a learner name, a
/// "learner/tag" pair, a task index) so that which calls fail is a pure
/// function of (rules, seed, site, key) — never of thread scheduling.
/// That property is what lets the robustness tests assert bit-identical
/// degraded outputs across 1/2/4/8 threads.
enum class FaultSite {
  kFileRead,
  kFileWrite,
  /// fsync of a freshly written temp file (common/artifact_io.cc). A hit
  /// simulates a full disk or dying device: the atomic writer aborts and
  /// the destination path is left untouched.
  kFileSync,
  /// The rename that publishes a temp file at its final path. A hit
  /// simulates a crash between write and publish ("torn rename"): the
  /// destination keeps its previous contents.
  kFileRename,
  kXmlParse,
  kDtdParse,
  kLearnerTrain,
  kLearnerPredict,
  kPoolTask,
  /// MatchService admission (service/match_service.cc). Key: the request
  /// id. A hit sheds the request with kUnavailable before it is queued —
  /// the knob chaos tests use to force load-shedding decisions.
  kServiceAdmit,
  /// One MatchService execution attempt. Key: "<request-id>/attempt-<n>",
  /// so a rule matching "/attempt-0" injects a *transient* fault (fails
  /// once, succeeds on retry) while an id-only rule is persistent.
  kServiceExec,
  /// One golden-request replay during MatchService::Reload shadow
  /// validation. Key: the golden request id. A hit fails the shadow
  /// evaluation, so the candidate is rejected (and quarantined in the
  /// registry) while serving stays untouched.
  kShadowEval,
  /// The epoch-swap publication point of MatchService::Reload, after a
  /// candidate passed shadow validation. Key:
  /// "swap/registry-<id>" (id 0 for untracked reloads). A hit aborts the
  /// swap: serving keeps the old version and the candidate stays a
  /// candidate — simulating a crash between validation and publication.
  kModelSwap,
  /// One accepted TCP connection at the net server (net/server.cc). Key:
  /// "conn-<n>" (n = monotonic accept counter). A hit closes the fresh
  /// connection immediately — the client sees a clean connection reset,
  /// the transport-transient case its retry policy must cover.
  kNetAccept,
  /// One readiness-driven read pass over a connection. Key: "conn-<n>".
  /// A hit closes the connection mid-stream: any response the client was
  /// waiting for arrives as an EOF instead.
  kNetRead,
  /// One write flush over a connection. Key: "conn-<n>". A hit closes the
  /// connection with responses still queued — the torn-response case.
  kNetWrite,
};

/// Every seam, for exhaustiveness tests: a parameterized test iterates this
/// list and asserts each seam is reachable under the standard pipeline, so
/// a newly added site cannot silently go untested. Keep in sync with
/// `FaultSite` (the static_assert below counts it).
inline constexpr FaultSite kAllFaultSites[] = {
    FaultSite::kFileRead,     FaultSite::kFileWrite,
    FaultSite::kFileSync,     FaultSite::kFileRename,
    FaultSite::kXmlParse,     FaultSite::kDtdParse,
    FaultSite::kLearnerTrain, FaultSite::kLearnerPredict,
    FaultSite::kPoolTask,     FaultSite::kServiceAdmit,
    FaultSite::kServiceExec,  FaultSite::kShadowEval,
    FaultSite::kModelSwap,    FaultSite::kNetAccept,
    FaultSite::kNetRead,      FaultSite::kNetWrite,
};
inline constexpr size_t kFaultSiteCount =
    sizeof(kAllFaultSites) / sizeof(kAllFaultSites[0]);
static_assert(static_cast<size_t>(FaultSite::kNetWrite) + 1 ==
                  kFaultSiteCount,
              "kAllFaultSites must list every FaultSite value");

/// Short stable name for a site, e.g. "learner-train" (used in rule dumps
/// and injected error messages).
const char* FaultSiteName(FaultSite site);

/// How an injected corruption mangles bytes on their way to disk. Unlike a
/// `FaultSite` failure (a clean Status), a corruption rule lets the write
/// "succeed" while persisting damaged bytes — the torn-write/bit-flip cases
/// a validating loader must classify instead of crashing on.
enum class WriteCorruption {
  kNone = 0,
  /// Keep only a prefix: a short write / write torn by a crash.
  kTruncate,
  /// Flip one bit at a seeded offset.
  kBitFlip,
};

/// A deterministic, seeded fault injector. Tests configure rules, install
/// the injector with `ScopedFaultInjection`, and run the pipeline; every
/// call reaching an instrumented seam consults the rules.
///
/// Two rule flavors:
///  * `FailMatching(site, substr, error)` — every call at `site` whose key
///    contains `substr` fails (empty substring matches every call).
///  * `FailWithProbability(site, p, error)` — a call at `site` with key K
///    fails iff hash(seed, site, K) < p. The decision depends only on the
///    key, so the same calls fail on every run and on every thread count.
///
/// Rules must be fully configured before the injector is installed;
/// `Check` is safe to call concurrently from pool workers.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  void FailMatching(FaultSite site, std::string key_substring, Status error);
  void FailWithProbability(FaultSite site, double probability, Status error);

  /// Every atomic write whose destination path contains `key_substring`
  /// persists corrupted bytes: `kind` selects the damage, and the byte/bit
  /// position is derived from (`offset_seed`, key, payload size) — a pure
  /// function, so the same writes corrupt identically on every run and
  /// thread count.
  void CorruptMatching(std::string key_substring, WriteCorruption kind,
                       uint64_t offset_seed);

  /// Returns OK or the first matching rule's error (annotated with the
  /// site and key). Thread-safe.
  Status Check(FaultSite site, std::string_view key);

  /// Consults the corruption rules for a write of `size` bytes to `key`
  /// (the destination path). On a hit, sets `*offset` to the byte offset
  /// (kTruncate: keep bytes [0, offset); kBitFlip: flip a bit inside byte
  /// `offset`) and returns the kind. Thread-safe.
  WriteCorruption CheckWriteCorruption(std::string_view key, size_t size,
                                       size_t* offset);

  /// Number of faults injected so far (for test assertions).
  size_t injected_count() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  struct Rule {
    FaultSite site;
    /// Substring rule when `probability` < 0, else probabilistic.
    std::string key_substring;
    double probability = -1.0;
    Status error;
  };
  struct CorruptionRule {
    std::string key_substring;
    WriteCorruption kind = WriteCorruption::kNone;
    uint64_t offset_seed = 0;
  };

  uint64_t seed_;
  std::vector<Rule> rules_;
  std::vector<CorruptionRule> corruption_rules_;
  std::atomic<size_t> injected_{0};
};

/// Installs `injector` as the process-wide injector for its lifetime and
/// restores the previous one on destruction. Instrumented seams see it
/// immediately; pass nullptr to disable injection within a scope.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector* injector);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjector* previous_;
};

/// True when an injector is installed. Seams whose key is costly to build
/// (e.g. formatting a task index) should guard on this first.
bool FaultInjectionActive();

/// The seam entry point: OK when no injector is installed (one relaxed
/// atomic load), otherwise the installed injector's verdict.
Status CheckFault(FaultSite site, std::string_view key);

/// Corruption seam entry point used by the atomic writer: kNone when no
/// injector is installed, otherwise the injector's verdict (with `*offset`
/// filled on a hit).
WriteCorruption CheckWriteCorruptionFault(std::string_view key, size_t size,
                                          size_t* offset);

}  // namespace lsd

#endif  // LSD_COMMON_FAULT_INJECTION_H_
