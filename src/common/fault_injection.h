#ifndef LSD_COMMON_FAULT_INJECTION_H_
#define LSD_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lsd {

/// Seams where a `FaultInjector` may force a failure. Each seam passes a
/// stable key describing the call (a file path, a learner name, a
/// "learner/tag" pair, a task index) so that which calls fail is a pure
/// function of (rules, seed, site, key) — never of thread scheduling.
/// That property is what lets the robustness tests assert bit-identical
/// degraded outputs across 1/2/4/8 threads.
enum class FaultSite {
  kFileRead,
  kFileWrite,
  kXmlParse,
  kDtdParse,
  kLearnerTrain,
  kLearnerPredict,
  kPoolTask,
};

/// Short stable name for a site, e.g. "learner-train" (used in rule dumps
/// and injected error messages).
const char* FaultSiteName(FaultSite site);

/// A deterministic, seeded fault injector. Tests configure rules, install
/// the injector with `ScopedFaultInjection`, and run the pipeline; every
/// call reaching an instrumented seam consults the rules.
///
/// Two rule flavors:
///  * `FailMatching(site, substr, error)` — every call at `site` whose key
///    contains `substr` fails (empty substring matches every call).
///  * `FailWithProbability(site, p, error)` — a call at `site` with key K
///    fails iff hash(seed, site, K) < p. The decision depends only on the
///    key, so the same calls fail on every run and on every thread count.
///
/// Rules must be fully configured before the injector is installed;
/// `Check` is safe to call concurrently from pool workers.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  void FailMatching(FaultSite site, std::string key_substring, Status error);
  void FailWithProbability(FaultSite site, double probability, Status error);

  /// Returns OK or the first matching rule's error (annotated with the
  /// site and key). Thread-safe.
  Status Check(FaultSite site, std::string_view key);

  /// Number of faults injected so far (for test assertions).
  size_t injected_count() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  struct Rule {
    FaultSite site;
    /// Substring rule when `probability` < 0, else probabilistic.
    std::string key_substring;
    double probability = -1.0;
    Status error;
  };

  uint64_t seed_;
  std::vector<Rule> rules_;
  std::atomic<size_t> injected_{0};
};

/// Installs `injector` as the process-wide injector for its lifetime and
/// restores the previous one on destruction. Instrumented seams see it
/// immediately; pass nullptr to disable injection within a scope.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector* injector);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjector* previous_;
};

/// True when an injector is installed. Seams whose key is costly to build
/// (e.g. formatting a task index) should guard on this first.
bool FaultInjectionActive();

/// The seam entry point: OK when no injector is installed (one relaxed
/// atomic load), otherwise the installed injector's verdict.
Status CheckFault(FaultSite site, std::string_view key);

}  // namespace lsd

#endif  // LSD_COMMON_FAULT_INJECTION_H_
