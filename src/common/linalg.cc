#include "common/linalg.h"

#include <cmath>

#include "common/logging.h"

namespace lsd {

Matrix Matrix::TransposeTimesSelf() const {
  Matrix out(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t i = 0; i < cols_; ++i) {
      double a_ri = at(r, i);
      if (a_ri == 0.0) continue;
      for (size_t j = 0; j < cols_; ++j) {
        out.at(i, j) += a_ri * at(r, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::TransposeTimesVector(
    const std::vector<double>& v) const {
  LSD_CHECK(v.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out[c] += at(r, c) * v[r];
    }
  }
  return out;
}

StatusOr<std::vector<double>> SolveLinearSystem(Matrix a,
                                                std::vector<double> b) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("SolveLinearSystem: matrix not square");
  }
  if (b.size() != n) {
    return Status::InvalidArgument("SolveLinearSystem: rhs size mismatch");
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a.at(r, col)) > std::fabs(a.at(pivot, col))) pivot = r;
    }
    if (std::fabs(a.at(pivot, col)) < 1e-12) {
      return Status::FailedPrecondition("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a.at(pivot, c), a.at(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      double factor = a.at(r, col) / a.at(col, col);
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a.at(r, c) -= factor * a.at(col, c);
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (size_t c = i + 1; c < n; ++c) acc -= a.at(i, c) * x[c];
    x[i] = acc / a.at(i, i);
  }
  return x;
}

namespace {

// Solves the ridge-regularized normal equations restricted to the columns
// whose `active[i]` is true; inactive coefficients are fixed at zero.
StatusOr<std::vector<double>> SolveActive(const Matrix& ata,
                                          const std::vector<double>& atb,
                                          const std::vector<bool>& active,
                                          double ridge) {
  const size_t k = ata.rows();
  std::vector<size_t> index;
  for (size_t i = 0; i < k; ++i) {
    if (active[i]) index.push_back(i);
  }
  std::vector<double> full(k, 0.0);
  if (index.empty()) return full;
  Matrix sys(index.size(), index.size());
  std::vector<double> rhs(index.size());
  for (size_t i = 0; i < index.size(); ++i) {
    for (size_t j = 0; j < index.size(); ++j) {
      sys.at(i, j) = ata.at(index[i], index[j]);
    }
    sys.at(i, i) += ridge;
    rhs[i] = atb[index[i]];
  }
  LSD_ASSIGN_OR_RETURN(std::vector<double> sol,
                       SolveLinearSystem(std::move(sys), std::move(rhs)));
  for (size_t i = 0; i < index.size(); ++i) full[index[i]] = sol[i];
  return full;
}

}  // namespace

StatusOr<std::vector<double>> LeastSquares(const Matrix& a,
                                           const std::vector<double>& b,
                                           const LeastSquaresOptions& options) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("LeastSquares: empty design matrix");
  }
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("LeastSquares: target size mismatch");
  }
  Matrix ata = a.TransposeTimesSelf();
  std::vector<double> atb = a.TransposeTimesVector(b);
  const size_t k = a.cols();
  double ridge = options.ridge > 0 ? options.ridge : 1e-9;

  std::vector<bool> active(k, true);
  for (int iter = 0; iter < static_cast<int>(k) + 1; ++iter) {
    LSD_ASSIGN_OR_RETURN(std::vector<double> x,
                         SolveActive(ata, atb, active, ridge));
    if (!options.non_negative) return x;
    bool any_negative = false;
    for (size_t i = 0; i < k; ++i) {
      if (x[i] < 0.0) {
        active[i] = false;
        any_negative = true;
      }
    }
    if (!any_negative) return x;
  }
  return Status::Internal("LeastSquares: NNLS failed to converge");
}

void NormalizeToDistribution(std::vector<double>* v) {
  double total = 0.0;
  for (double& x : *v) {
    if (x < 0.0) x = 0.0;
    total += x;
  }
  if (total <= 0.0) {
    if (v->empty()) return;
    double uniform = 1.0 / static_cast<double>(v->size());
    for (double& x : *v) x = uniform;
    return;
  }
  for (double& x : *v) x /= total;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  LSD_CHECK(a.size() == b.size());
  double out = 0.0;
  for (size_t i = 0; i < a.size(); ++i) out += a[i] * b[i];
  return out;
}

double Norm(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

}  // namespace lsd
