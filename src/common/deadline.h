#ifndef LSD_COMMON_DEADLINE_H_
#define LSD_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace lsd {

/// A point in time on the monotonic clock after which work should stop.
/// Deadlines are cheap values threaded through training, matching, and the
/// A* searcher; the default-constructed deadline never expires, so every
/// existing call site keeps its unbounded behavior. Stages that hit an
/// expired deadline degrade to an anytime result (greedy mapping, skipped
/// refinement pass) instead of failing — see DESIGN.md "Failure taxonomy
/// and degraded modes".
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() : when_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now. `AfterMillis(0)` is already
  /// expired — useful to force every budgeted stage onto its fallback
  /// path. Negative values mean "no deadline".
  static Deadline AfterMillis(int64_t ms) {
    if (ms < 0) return Infinite();
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  bool is_infinite() const { return when_ == Clock::time_point::max(); }

  /// True once the monotonic clock has reached the deadline. An infinite
  /// deadline never expires and never reads the clock.
  bool expired() const { return !is_infinite() && Clock::now() >= when_; }

  /// Milliseconds left before expiry, clamped to >= 0. Infinite deadlines
  /// report INT64_MAX.
  int64_t remaining_millis() const {
    if (is_infinite()) return INT64_MAX;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        when_ - Clock::now());
    return left.count() < 0 ? 0 : left.count();
  }

 private:
  explicit Deadline(Clock::time_point when) : when_(when) {}

  Clock::time_point when_;
};

}  // namespace lsd

#endif  // LSD_COMMON_DEADLINE_H_
