#ifndef LSD_COMMON_THREAD_POOL_H_
#define LSD_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace lsd {

/// Resolves the user-facing `num_threads` knob: 0 means "use the hardware
/// concurrency", any other value is clamped to [1, 256].
size_t ResolveThreadCount(size_t requested);

/// A fixed-size pool of worker threads exposing a deterministic fork-join
/// API. Design rules, chosen so that parallel results are bit-identical to
/// the serial path for any thread count:
///
///  * `ParallelFor(n, fn)` runs `fn(0) .. fn(n-1)` with task index as the
///    only coordination: each task must write exclusively into its own
///    pre-sized output slot. The pool never reorders, merges, or splits
///    outputs, so result ordering equals input ordering by construction.
///  * Error handling is "first error wins, remaining tasks drained": once
///    any task fails, tasks that have not started are skipped (their slots
///    keep their initial values), every in-flight task finishes, and the
///    lowest-indexed error among the tasks that actually ran is returned.
///    With a single failing task this is exactly the serial loop's error;
///    when several tasks would fail, draining may skip an earlier-indexed
///    one, so which failure is reported is the only thing that may vary
///    with thread count — never any successful result.
///  * A pool of size 1 has no worker threads and runs everything inline on
///    the calling thread (exactly today's serial path).
///
/// Nested use is safe: a task may itself call `ParallelFor` on the same
/// pool. The calling thread always participates in executing its own
/// batch, so progress never depends on a free worker, and idle workers
/// pick up whatever non-exhausted batch is oldest.
class ThreadPool {
 public:
  /// Sizes the pool at `ResolveThreadCount(num_threads)` execution threads
  /// in total: the calling thread plus that many minus one workers. The
  /// workers are spawned lazily, on the first `ParallelFor` that actually
  /// distributes work: merely *having* spare threads is not free (glibc
  /// malloc leaves its single-threaded fast path the moment a process
  /// spawns one), so a pool whose batches all degrade to the inline serial
  /// path — e.g. num_threads=8 on a one-core machine — never pays for
  /// threads it cannot use.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute tasks (workers + the calling thread),
  /// whether or not the workers have been spawned yet.
  size_t thread_count() const { return total_; }

  /// Runs `fn(i)` for every `i` in `[0, n)` across the pool and blocks
  /// until all started tasks finished. See the class comment for the
  /// ordering and error-propagation contract.
  ///
  /// `grain` controls how many consecutive indices a thread claims at a
  /// time: coordination (one atomic claim plus one lock round) is paid per
  /// chunk, not per index, so cheap per-index work stops drowning in
  /// dispatch overhead. 0 picks a size that still spreads the batch
  /// ~4 chunks wide per thread for load balance. Results are unaffected:
  /// chunking only changes which thread runs an index, never the output
  /// slot it writes.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn,
                     size_t grain = 0);

  /// Like `ParallelFor` but collects `fn(i)`'s values into a vector whose
  /// slot `i` holds the result of task `i` (input ordering preserved).
  /// `T` must be default-constructible; on error the vector is discarded.
  template <typename T, typename Fn>
  StatusOr<std::vector<T>> ParallelMap(size_t n, Fn fn) {
    std::vector<T> out(n);
    Status status = ParallelFor(n, [&](size_t i) -> Status {
      LSD_ASSIGN_OR_RETURN(out[i], fn(i));
      return Status::OK();
    });
    if (!status.ok()) return status;
    return out;
  }

 private:
  /// Shared state of one ParallelFor call. Chunks of `grain` consecutive
  /// indices are claimed in order through `next`; `completed` counts
  /// claimed indices that have been executed or drained.
  struct Batch {
    Batch(size_t n_tasks, size_t chunk, std::function<Status(size_t)> task_fn)
        : n(n_tasks), grain(chunk), fn(std::move(task_fn)) {}

    bool Exhausted() const { return next.load(std::memory_order_relaxed) >= n; }

    const size_t n;
    const size_t grain;
    const std::function<Status(size_t)> fn;
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};

    std::mutex mu;
    std::condition_variable done_cv;
    size_t completed = 0;        // guarded by mu
    size_t error_index = 0;      // guarded by mu; valid when has_error
    bool has_error = false;      // guarded by mu
    Status error;                // guarded by mu
  };

  /// Claims and runs tasks from `batch` until none are left to claim.
  static void RunBatch(Batch* batch);

  void WorkerLoop();

  /// Pops exhausted front batches and returns the oldest batch that still
  /// has unclaimed tasks, or null. Requires `mu_` held.
  std::shared_ptr<Batch> PickBatchLocked();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Batch>> queue_;  // guarded by mu_
  bool stopping_ = false;                     // guarded by mu_
  bool workers_started_ = false;              // guarded by mu_
  size_t total_ = 1;  // resolved pool size, fixed at construction
  /// Spawned under mu_ on first use; joined by the destructor, which runs
  /// exclusively.
  std::vector<std::thread> workers_;
};

}  // namespace lsd

#endif  // LSD_COMMON_THREAD_POOL_H_
