#ifndef LSD_COMMON_LOGGING_H_
#define LSD_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace lsd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits on destruction. Use via the LSD_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace lsd

/// Usage: LSD_LOG(kInfo) << "trained " << n << " learners";
#define LSD_LOG(severity)                                          \
  ::lsd::internal_logging::LogMessage(::lsd::LogLevel::severity,   \
                                      __FILE__, __LINE__)          \
      .stream()

/// Fatal invariant check; aborts with a message when `cond` is false.
#define LSD_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::lsd::internal_logging::LogMessage(::lsd::LogLevel::kError,        \
                                          __FILE__, __LINE__)             \
              .stream()                                                   \
          << "CHECK failed: " #cond;                                      \
      ::abort();                                                          \
    }                                                                     \
  } while (0)

/// Fatal check on a Status-returning expression; aborts with the status
/// message when it is not OK. Unlike a bare `assert`, the check runs in
/// release builds too — validation never silently disappears with NDEBUG.
#define LSD_CHECK_OK(expr)                                                \
  do {                                                                    \
    const auto& _lsd_check_status = (expr);                               \
    if (!_lsd_check_status.ok()) {                                        \
      ::lsd::internal_logging::LogMessage(::lsd::LogLevel::kError,        \
                                          __FILE__, __LINE__)             \
              .stream()                                                   \
          << "CHECK failed: " #expr " = "                                 \
          << _lsd_check_status.ToString();                                \
      ::abort();                                                          \
    }                                                                     \
  } while (0)

#endif  // LSD_COMMON_LOGGING_H_
