#include "common/pred_cache.h"

#include <algorithm>

#include "common/metrics.h"

namespace lsd {
namespace {

// Process-wide cache counters, interned once and shared by every PredCache.
// The service metrics profile requires these names even at value zero; the
// service layer interns the same handles on first use so a cache-off run
// still carries them.
struct CacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* insertions;
  Counter* evictions;
};

const CacheMetrics& GetCacheMetrics() {
  static const CacheMetrics metrics = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    CacheMetrics m;
    m.hits = registry.GetCounter("pred_cache.hits");
    m.misses = registry.GetCounter("pred_cache.misses");
    m.insertions = registry.GetCounter("pred_cache.insertions");
    m.evictions = registry.GetCounter("pred_cache.evictions");
    return m;
  }();
  return metrics;
}

}  // namespace

PredCache::PredCache(size_t max_entries)
    : max_entries_(max_entries),
      shard_capacity_(std::max<size_t>(1, max_entries / kShards)) {}

bool PredCache::Lookup(uint64_t learner_fp, uint64_t instance_hash,
                       std::vector<double>* scores) {
  Shard& shard = shards_[ShardIndex(instance_hash)];
  const Key key{learner_fp, instance_hash};
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *scores = it->second->second;
      ++shard.stats.hits;
      GetCacheMetrics().hits->Increment();
      return true;
    }
    ++shard.stats.misses;
  }
  GetCacheMetrics().misses->Increment();
  return false;
}

void PredCache::Insert(uint64_t learner_fp, uint64_t instance_hash,
                       const std::vector<double>& scores) {
  Shard& shard = shards_[ShardIndex(instance_hash)];
  const Key key{learner_fp, instance_hash};
  size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Racing inserts of the same key carry identical bytes (both came
      // from byte-identical computations), so refreshing is enough.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      it->second->second = scores;
      return;
    }
    while (shard.lru.size() >= shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.stats.evictions;
      ++evicted;
    }
    shard.lru.emplace_front(key, scores);
    shard.index.emplace(key, shard.lru.begin());
    ++shard.stats.insertions;
  }
  GetCacheMetrics().insertions->Increment();
  if (evicted > 0) GetCacheMetrics().evictions->Increment(evicted);
}

PredCache::Stats PredCache::stats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.insertions += shard.stats.insertions;
    total.evictions += shard.stats.evictions;
  }
  return total;
}

size_t PredCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

void PredCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

}  // namespace lsd
