#include "common/backoff.h"

#include <algorithm>
#include <cmath>

namespace lsd {
namespace {

/// FNV-1a over (seed, key, attempt) finished with a splitmix64 mix — the
/// same construction the fault injector uses, so jitter is a pure function
/// of its inputs on every platform.
uint64_t HashKey(uint64_t seed, std::string_view key, size_t attempt) {
  uint64_t h = 14695981039346656037ULL ^ seed;
  auto mix_byte = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (char c : key) mix_byte(static_cast<unsigned char>(c));
  for (int shift = 0; shift < 64; shift += 8) {
    mix_byte(static_cast<unsigned char>((attempt >> shift) & 0xff));
  }
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

int64_t Backoff::DelayMillis(std::string_view key, size_t attempt) const {
  if (policy_.initial_ms <= 0) return 0;
  double multiplier = std::max(policy_.multiplier, 1.0);
  double delay = static_cast<double>(policy_.initial_ms);
  double cap = static_cast<double>(std::max<int64_t>(policy_.max_ms, 0));
  for (size_t i = 0; i < attempt && delay < cap; ++i) delay *= multiplier;
  delay = std::min(delay, cap);

  double jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  if (jitter > 0.0) {
    double u = static_cast<double>(HashKey(seed_, key, attempt) >> 11) *
               (1.0 / 9007199254740992.0);
    delay *= 1.0 - jitter * u;
  }
  return static_cast<int64_t>(delay);
}

Status RetryWithBackoff(const Backoff& backoff, std::string_view key,
                        const Deadline& deadline,
                        const std::function<bool(const Status&)>& retryable,
                        const std::function<void(int64_t)>& sleep_millis,
                        const std::function<Status()>& fn, size_t* attempts,
                        size_t* retries) {
  size_t ran = 0;
  size_t retried = 0;
  Status status;
  for (size_t attempt = 0;; ++attempt) {
    status = fn();
    ++ran;
    if (status.ok()) break;
    if (attempt >= backoff.policy().max_retries) break;
    if (!retryable(status)) break;
    int64_t delay = backoff.DelayMillis(key, attempt);
    // A retry that cannot finish before the deadline is wasted work — and
    // worse, it holds the worker past the request's budget. Give up with
    // the attempt's own error, which is more diagnostic than a bare
    // DeadlineExceeded.
    if (deadline.remaining_millis() <= delay) break;
    if (delay > 0) sleep_millis(delay);
    ++retried;
  }
  if (attempts != nullptr) *attempts = ran;
  if (retries != nullptr) *retries = retried;
  return status;
}

}  // namespace lsd
