#ifndef LSD_COMMON_LINALG_H_
#define LSD_COMMON_LINALG_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace lsd {

/// Small dense row-major matrix of doubles. Sized for the meta-learner's
/// regression problems (a handful of columns, hundreds of rows); not a
/// general-purpose BLAS.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Returns A^T * A (cols x cols).
  Matrix TransposeTimesSelf() const;

  /// Returns A^T * v; requires v.size() == rows().
  std::vector<double> TransposeTimesVector(const std::vector<double>& v) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Solves the square linear system `a * x = b` with partial-pivot Gaussian
/// elimination. Returns InvalidArgument on shape mismatch and
/// FailedPrecondition when the matrix is (numerically) singular.
StatusOr<std::vector<double>> SolveLinearSystem(Matrix a,
                                                std::vector<double> b);

/// Options for `LeastSquares`.
struct LeastSquaresOptions {
  /// Ridge (L2) regularization added to the normal equations' diagonal.
  /// Keeps the tiny stacking problems well conditioned when base learners
  /// produce (nearly) collinear confidence columns.
  double ridge = 1e-6;
  /// When true, negative coefficients are clamped to zero and the solve is
  /// repeated on the surviving columns (simple active-set NNLS). Stacked
  /// generalization traditionally constrains weights to be non-negative.
  bool non_negative = false;
};

/// Minimizes ||a*x - b||^2 (+ ridge * ||x||^2). `a` is n x k with n >= 1.
StatusOr<std::vector<double>> LeastSquares(
    const Matrix& a, const std::vector<double>& b,
    const LeastSquaresOptions& options = LeastSquaresOptions());

/// Normalizes `v` in place so its entries sum to 1. If the sum is not
/// positive, resets to the uniform distribution.
void NormalizeToDistribution(std::vector<double>* v);

/// Dot product; requires equal sizes.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm(const std::vector<double>& v);

}  // namespace lsd

#endif  // LSD_COMMON_LINALG_H_
