#include "common/trace.h"

#include <algorithm>
#include <chrono>

#include "common/file_util.h"
#include "common/strings.h"

namespace lsd {
namespace {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Recorders that are still alive (mirrors the metrics registry's
/// liveness scheme; leaked to dodge static destruction order).
struct LivenessSet {
  std::mutex mu;
  std::vector<TraceRecorder*> live;
};
LivenessSet& Liveness() {
  static LivenessSet* set = new LivenessSet();
  return *set;
}

}  // namespace

/// Per-thread event storage. `mu` is held for every append and for the
/// merge — appends happen a handful of times per pipeline phase, so the
/// uncontended lock is noise next to the two clock reads.
struct TraceRecorder::Buffer {
  std::mutex mu;
  std::vector<TraceEvent> events;  // guarded by mu
  uint32_t tid = 0;
};

struct TraceRecorder::BufferHandle {
  struct Entry {
    TraceRecorder* recorder;
    std::unique_ptr<Buffer> buffer;
  };
  std::vector<Entry> entries;

  Buffer* Find(TraceRecorder* recorder) {
    for (Entry& entry : entries) {
      if (entry.recorder == recorder) return entry.buffer.get();
    }
    return nullptr;
  }

  ~BufferHandle() {
    for (Entry& entry : entries) {
      LivenessSet& set = Liveness();
      std::lock_guard<std::mutex> lock(set.mu);
      bool alive = std::find(set.live.begin(), set.live.end(),
                             entry.recorder) != set.live.end();
      if (alive) entry.recorder->Retire(entry.buffer.get());
    }
  }
};

TraceRecorder::BufferHandle& TraceRecorder::TlsBuffers() {
  thread_local BufferHandle tls_buffers;
  return tls_buffers;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::TraceRecorder() {
  LivenessSet& set = Liveness();
  std::lock_guard<std::mutex> lock(set.mu);
  set.live.push_back(this);
}

TraceRecorder::~TraceRecorder() {
  LivenessSet& set = Liveness();
  std::lock_guard<std::mutex> lock(set.mu);
  set.live.erase(std::remove(set.live.begin(), set.live.end(), this),
                 set.live.end());
}

void TraceRecorder::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  retired_.clear();
  for (Buffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  epoch_ns_.store(MonotonicNanos(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Stop() {
  enabled_.store(false, std::memory_order_relaxed);
}

uint64_t TraceRecorder::NowMicros() const {
  int64_t delta =
      MonotonicNanos() - epoch_ns_.load(std::memory_order_relaxed);
  return delta <= 0 ? 0 : static_cast<uint64_t>(delta) / 1000;
}

TraceRecorder::Buffer* TraceRecorder::LocalBuffer() {
  BufferHandle& handle = TlsBuffers();
  Buffer* buffer = handle.Find(this);
  if (buffer != nullptr) return buffer;
  auto owned = std::make_unique<Buffer>();
  buffer = owned.get();
  handle.entries.push_back({this, std::move(owned)});
  std::lock_guard<std::mutex> lock(mu_);
  buffer->tid = next_tid_++;
  buffers_.push_back(buffer);
  return buffer;
}

void TraceRecorder::Retire(Buffer* buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    for (TraceEvent& event : buffer->events) {
      retired_.push_back(std::move(event));
    }
    buffer->events.clear();
  }
  buffers_.erase(std::remove(buffers_.begin(), buffers_.end(), buffer),
                 buffers_.end());
}

std::vector<TraceEvent> TraceRecorder::Events() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events = retired_;
  for (Buffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.begin_us != b.begin_us) {
                       return a.begin_us < b.begin_us;
                     }
                     return a.tid < b.tid;
                   });
  return events;
}

std::string TraceRecorder::ToChromeJson() {
  std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out += StrFormat(
        "%s\n  {\"name\": \"%s\", \"cat\": \"lsd\", \"ph\": \"X\", "
        "\"pid\": 1, \"tid\": %u, \"ts\": %llu, \"dur\": %llu}",
        i == 0 ? "" : ",", JsonEscape(event.name).c_str(), event.tid,
        static_cast<unsigned long long>(event.begin_us),
        static_cast<unsigned long long>(event.duration_us));
  }
  out += events.empty() ? "]}\n" : "\n]}\n";
  return out;
}

Status TraceRecorder::WriteChromeJson(const std::string& path) {
  return WriteStringToFile(path, ToChromeJson());
}

TraceSpan::TraceSpan(const char* name, TraceRecorder& recorder)
    : recorder_(&recorder), active_(recorder.enabled()) {
  if (!active_) return;
  name_ = name;
  begin_us_ = recorder_->NowMicros();
}

TraceSpan::TraceSpan(const char* name, const std::string& detail,
                     TraceRecorder& recorder)
    : recorder_(&recorder), active_(recorder.enabled()) {
  if (!active_) return;
  name_ = std::string(name) + "(" + detail + ")";
  begin_us_ = recorder_->NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  uint64_t end_us = recorder_->NowMicros();
  TraceEvent event;
  event.name = std::move(name_);
  event.begin_us = begin_us_;
  event.duration_us = end_us < begin_us_ ? 0 : end_us - begin_us_;
  TraceRecorder::Buffer* buffer = recorder_->LocalBuffer();
  event.tid = buffer->tid;
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

}  // namespace lsd
