#include "common/file_util.h"

#include <sys/stat.h>

#include <cstdio>

#include "common/artifact_io.h"
#include "common/fault_injection.h"

namespace lsd {

StatusOr<std::string> ReadFileToString(const std::string& path,
                                       size_t max_bytes) {
  LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kFileRead, path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::string contents;
  char buffer[1 << 14];
  size_t n;
  bool oversized = false;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
    if (max_bytes != 0 && contents.size() > max_bytes) {
      oversized = true;
      break;
    }
  }
  bool failed = !oversized && std::ferror(file) != 0;
  std::fclose(file);
  if (oversized) {
    return Status::OutOfRange("file exceeds the " +
                              std::to_string(max_bytes) + "-byte read cap: " +
                              path);
  }
  if (failed) return Status::Internal("read error: " + path);
  return contents;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  return WriteFileAtomic(path, contents);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace lsd
