#include "common/file_util.h"

#include <cstdio>

#include "common/fault_injection.h"

namespace lsd {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kFileRead, path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::string contents;
  char buffer[1 << 14];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return Status::Internal("read error: " + path);
  return contents;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kFileWrite, path));
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open file for writing: " + path);
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  bool failed = written != contents.size();
  if (std::fclose(file) != 0) failed = true;
  if (failed) return Status::Internal("write error: " + path);
  return Status::OK();
}

}  // namespace lsd
