#include "common/fault_injection.h"

namespace lsd {
namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

/// FNV-1a over the seed, site, and key, finished with a splitmix64 mix so
/// nearby keys land far apart. Stable across platforms and runs.
uint64_t HashKey(uint64_t seed, FaultSite site, std::string_view key) {
  uint64_t h = 14695981039346656037ULL ^ seed;
  auto mix_byte = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  mix_byte(static_cast<unsigned char>(site));
  for (char c : key) mix_byte(static_cast<unsigned char>(c));
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kFileRead:
      return "file-read";
    case FaultSite::kFileWrite:
      return "file-write";
    case FaultSite::kFileSync:
      return "file-sync";
    case FaultSite::kFileRename:
      return "file-rename";
    case FaultSite::kXmlParse:
      return "xml-parse";
    case FaultSite::kDtdParse:
      return "dtd-parse";
    case FaultSite::kLearnerTrain:
      return "learner-train";
    case FaultSite::kLearnerPredict:
      return "learner-predict";
    case FaultSite::kPoolTask:
      return "pool-task";
    case FaultSite::kServiceAdmit:
      return "service-admit";
    case FaultSite::kServiceExec:
      return "service-exec";
    case FaultSite::kShadowEval:
      return "shadow-eval";
    case FaultSite::kModelSwap:
      return "model-swap";
    case FaultSite::kNetAccept:
      return "net-accept";
    case FaultSite::kNetRead:
      return "net-read";
    case FaultSite::kNetWrite:
      return "net-write";
  }
  return "unknown";
}

void FaultInjector::FailMatching(FaultSite site, std::string key_substring,
                                 Status error) {
  Rule rule;
  rule.site = site;
  rule.key_substring = std::move(key_substring);
  rule.error = std::move(error);
  rules_.push_back(std::move(rule));
}

void FaultInjector::FailWithProbability(FaultSite site, double probability,
                                        Status error) {
  Rule rule;
  rule.site = site;
  rule.probability = probability;
  rule.error = std::move(error);
  rules_.push_back(std::move(rule));
}

void FaultInjector::CorruptMatching(std::string key_substring,
                                    WriteCorruption kind,
                                    uint64_t offset_seed) {
  CorruptionRule rule;
  rule.key_substring = std::move(key_substring);
  rule.kind = kind;
  rule.offset_seed = offset_seed;
  corruption_rules_.push_back(std::move(rule));
}

WriteCorruption FaultInjector::CheckWriteCorruption(std::string_view key,
                                                    size_t size,
                                                    size_t* offset) {
  if (size == 0) return WriteCorruption::kNone;
  for (const CorruptionRule& rule : corruption_rules_) {
    if (rule.kind == WriteCorruption::kNone) continue;
    if (!rule.key_substring.empty() &&
        key.find(rule.key_substring) == std::string_view::npos) {
      continue;
    }
    injected_.fetch_add(1, std::memory_order_relaxed);
    // Derive the damage position from (seed ^ rule seed, key, size) so
    // repeated runs — and every thread count — corrupt identically.
    uint64_t h = HashKey(seed_ ^ rule.offset_seed, FaultSite::kFileWrite, key);
    *offset = static_cast<size_t>(h % size);
    return rule.kind;
  }
  return WriteCorruption::kNone;
}

Status FaultInjector::Check(FaultSite site, std::string_view key) {
  for (const Rule& rule : rules_) {
    if (rule.site != site) continue;
    bool hit;
    if (rule.probability < 0.0) {
      hit = rule.key_substring.empty() ||
            key.find(rule.key_substring) != std::string_view::npos;
    } else {
      // Map the hash to [0, 1) and compare; depends only on the key.
      double u = static_cast<double>(HashKey(seed_, site, key) >> 11) *
                 (1.0 / 9007199254740992.0);
      hit = u < rule.probability;
    }
    if (hit) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      return Status(rule.error.code(),
                    "[injected " + std::string(FaultSiteName(site)) + " '" +
                        std::string(key) + "'] " + rule.error.message());
    }
  }
  return Status::OK();
}

ScopedFaultInjection::ScopedFaultInjection(FaultInjector* injector)
    : previous_(g_injector.exchange(injector, std::memory_order_acq_rel)) {}

ScopedFaultInjection::~ScopedFaultInjection() {
  g_injector.store(previous_, std::memory_order_release);
}

bool FaultInjectionActive() {
  return g_injector.load(std::memory_order_relaxed) != nullptr;
}

Status CheckFault(FaultSite site, std::string_view key) {
  FaultInjector* injector = g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return Status::OK();
  return injector->Check(site, key);
}

WriteCorruption CheckWriteCorruptionFault(std::string_view key, size_t size,
                                          size_t* offset) {
  FaultInjector* injector = g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return WriteCorruption::kNone;
  return injector->CheckWriteCorruption(key, size, offset);
}

}  // namespace lsd
