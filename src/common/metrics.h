#ifndef LSD_COMMON_METRICS_H_
#define LSD_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lsd {

/// Process-wide registry of counters, gauges, and histograms.
///
/// Design rules (see DESIGN.md "Metrics & tracing"):
///
///  * Updates go to a thread-local shard — one unsynchronized add per
///    `Increment`/`Record`, no atomics or locks on the hot path. Shards
///    register themselves with the registry on first use and fold their
///    totals into a retired accumulator when their thread exits.
///  * Merging is deterministic by construction: counters and histogram
///    buckets are unsigned integers (addition is order-independent) and
///    gauges merge by max. A pipeline whose *work* is thread-count
///    invariant therefore reports bit-identical counter values at any
///    `--threads` setting — the property tests/metrics_test.cpp asserts.
///  * Handles (`Counter*` etc.) are interned per name and live for the
///    process lifetime, so call sites look them up once into a static.
///
/// Histogram values (timings) are real measurements and naturally vary
/// run to run; determinism is promised for counters and never for them.
class MetricsRegistry;

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1);

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, size_t slot)
      : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_;
  size_t slot_;
};

/// High-water-mark gauge: `RecordMax` keeps the largest value seen.
class Gauge {
 public:
  void RecordMax(uint64_t value);

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, size_t slot)
      : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_;
  size_t slot_;
};

/// Exponentially bucketed histogram of non-negative values (canonically
/// microseconds). Bucket b counts values in [2^b, 2^(b+1)) with bucket 0
/// covering [0, 2).
class Histogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Record(uint64_t value);

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, size_t slot)
      : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_;
  size_t slot_;
};

/// A deterministic merge of every shard at one point in time. Entries are
/// sorted by name within each kind.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    uint64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    std::vector<uint64_t> buckets;  // kBuckets entries
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counter value by name; 0 when absent.
  uint64_t CounterOf(const std::string& name) const;

  /// Gauge high-water mark by name; 0 when absent.
  uint64_t GaugeOf(const std::string& name) const;

  /// Histogram total (sum of recorded values) by name; 0 when absent.
  uint64_t HistogramSumOf(const std::string& name) const;

  /// Machine-readable rendering: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, max, buckets}}}. Stable key order.
  std::string ToJson() const;

  /// Compact "name=value" lines for reports (histograms render count/sum).
  std::string ToString() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry. Handles interned here stay valid forever.
  static MetricsRegistry& Global();

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Interns a metric by name. Repeated calls with one name return the
  /// same handle; a name is bound to a single kind for the process.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Deterministic merge of all live shards plus retired totals.
  MetricsSnapshot Snapshot();

  /// Zeroes every metric (live shards and retired totals). Handles stay
  /// valid. Meant for tests and benchmarks that compare runs.
  void Reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard;
  struct ShardHandle;

  /// Plain (unsynchronized) totals: the retired accumulator and the merge
  /// scratch space of Snapshot().
  struct HistogramTotals {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t buckets[Histogram::kBuckets] = {};
  };
  struct Totals {
    std::vector<uint64_t> counters;
    std::vector<uint64_t> gauges;
    std::vector<HistogramTotals> histograms;
  };

  /// This thread's shard bundle (function-local thread_local).
  static ShardHandle& TlsShards();
  /// This thread's shard for this registry (created and registered on
  /// first use).
  Shard* LocalShard();
  /// Folds `shard` into `retired_` and forgets it (thread exit).
  void Retire(Shard* shard);
  /// Merges live shards + retired totals under `mu_`.
  Totals MergeLocked();

  std::mutex mu_;
  std::map<std::string, size_t> counter_slots_;    // guarded by mu_
  std::map<std::string, size_t> gauge_slots_;      // guarded by mu_
  std::map<std::string, size_t> histogram_slots_;  // guarded by mu_
  std::vector<std::unique_ptr<Counter>> counter_handles_;
  std::vector<std::unique_ptr<Gauge>> gauge_handles_;
  std::vector<std::unique_ptr<Histogram>> histogram_handles_;
  std::vector<Shard*> shards_;  // live per-thread shards; guarded by mu_
  Totals retired_;              // totals from exited threads; guarded by mu_
};

}  // namespace lsd

#endif  // LSD_COMMON_METRICS_H_
