#include "common/artifact_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace lsd {
namespace {

constexpr std::string_view kMagic = "lsd-artifact";
constexpr std::string_view kTableEnd = "---\n";

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t n = 0; n < 256; ++n) {
    uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

bool IsCleanField(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    unsigned char byte = static_cast<unsigned char>(c);
    if (byte <= 0x20 || byte == 0x7f) return false;
  }
  return true;
}

/// Consumes one '\n'-terminated line from `*rest`. Returns false when no
/// newline remains (truncation, for a well-formed writer).
bool TakeLine(std::string_view* rest, std::string_view* line) {
  size_t end = rest->find('\n');
  if (end == std::string_view::npos) return false;
  *line = rest->substr(0, end);
  rest->remove_prefix(end + 1);
  return true;
}

StatusOr<uint32_t> ParseCrcField(const std::string& field) {
  if (field.size() != 8) {
    return Status::ParseError("artifact: bad checksum field '" + field + "'");
  }
  uint32_t value = 0;
  for (char c : field) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return Status::ParseError("artifact: bad checksum field '" + field +
                                "'");
    }
    value = (value << 4) | static_cast<uint32_t>(digit);
  }
  return value;
}

/// Removes `path` if it exists; used to clean up temp files on failure.
void BestEffortRemove(const std::string& path) { std::remove(path.c_str()); }

/// fsync the directory containing `path` so the published rename itself is
/// durable. Best-effort: some filesystems reject directory fsync.
void SyncParentDirectory(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char c : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

const ArtifactSection* Artifact::Find(std::string_view name) const {
  for (const ArtifactSection& section : sections) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kFileWrite, path));

  // Injected torn-write/bit-flip corruption: the write still "succeeds",
  // but the bytes that reach disk are damaged — the loader-classification
  // tests depend on this seam.
  std::string corrupted;
  size_t offset = 0;
  switch (CheckWriteCorruptionFault(path, contents.size(), &offset)) {
    case WriteCorruption::kNone:
      break;
    case WriteCorruption::kTruncate:
      contents = contents.substr(0, offset);
      break;
    case WriteCorruption::kBitFlip:
      corrupted.assign(contents);
      corrupted[offset] = static_cast<char>(
          static_cast<unsigned char>(corrupted[offset]) ^
          (1u << (offset % 8)));
      contents = corrupted;
      break;
  }

  // Temp file in the destination directory so the final rename never
  // crosses a filesystem boundary. The name is pid-qualified; concurrent
  // writers to the same destination publish last-writer-wins but never
  // interleave bytes.
  std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open temp file for writing: " + temp);
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  bool failed = written != contents.size();
  if (!failed) failed = std::fflush(file) != 0;
  if (!failed) {
    Status sync_fault = CheckFault(FaultSite::kFileSync, path);
    if (sync_fault.ok() && ::fsync(::fileno(file)) != 0) {
      sync_fault = Status::Internal(std::string("fsync failed: ") + temp +
                                    " (" + std::strerror(errno) + ")");
    }
    if (!sync_fault.ok()) {
      std::fclose(file);
      BestEffortRemove(temp);
      return sync_fault;
    }
  }
  if (std::fclose(file) != 0) failed = true;
  if (failed) {
    BestEffortRemove(temp);
    return Status::Internal("write error: " + temp);
  }

  Status rename_fault = CheckFault(FaultSite::kFileRename, path);
  if (rename_fault.ok() && std::rename(temp.c_str(), path.c_str()) != 0) {
    rename_fault = Status::Internal("rename failed: " + temp + " -> " + path +
                                    " (" + std::strerror(errno) + ")");
  }
  if (!rename_fault.ok()) {
    BestEffortRemove(temp);
    return rename_fault;
  }
  SyncParentDirectory(path);
  MetricsRegistry::Global().GetCounter("artifact.atomic_writes")->Increment();
  return Status::OK();
}

std::string EncodeArtifact(const Artifact& artifact) {
  LSD_CHECK(IsCleanField(artifact.kind));
  std::string table;
  std::string payloads;
  for (const ArtifactSection& section : artifact.sections) {
    LSD_CHECK(IsCleanField(section.name));
    table += StrFormat("s %s %zu %08x\n", section.name.c_str(),
                       section.payload.size(), Crc32(section.payload));
    payloads += section.payload;
  }
  std::string out =
      StrFormat("%s %u %s %zu %08x\n", std::string(kMagic).c_str(),
                kArtifactFormatVersion, artifact.kind.c_str(),
                artifact.sections.size(), Crc32(table));
  out += table;
  out += kTableEnd;
  out += payloads;
  return out;
}

StatusOr<Artifact> DecodeArtifact(std::string_view bytes,
                                  std::string_view expected_kind) {
  std::string_view rest = bytes;
  std::string_view header_line;
  if (!TakeLine(&rest, &header_line)) {
    // No complete first line: an empty or torn-at-birth file. When even
    // the magic isn't present this was never an artifact.
    if (StartsWith(bytes, kMagic)) {
      return Status::OutOfRange("artifact truncated inside the header line");
    }
    return Status::ParseError("not an LSD artifact (missing magic)");
  }
  std::vector<std::string> header = SplitAny(header_line, " \t");
  if (header.empty() || header[0] != kMagic) {
    return Status::ParseError("not an LSD artifact (missing magic)");
  }
  if (header.size() != 5) {
    return Status::ParseError("artifact: malformed header line");
  }
  if (!IsAllDigits(header[1])) {
    return Status::ParseError("artifact: malformed version field '" +
                              header[1] + "'");
  }
  if (header[1] != std::to_string(kArtifactFormatVersion)) {
    return Status::FailedPrecondition(
        "artifact version skew: file is version " + header[1] +
        ", this build reads version " +
        std::to_string(kArtifactFormatVersion));
  }
  std::string kind = header[2];
  if (!IsAllDigits(header[3])) {
    return Status::ParseError("artifact: malformed section count '" +
                              header[3] + "'");
  }
  size_t n_sections = std::strtoull(header[3].c_str(), nullptr, 10);
  // A flipped digit can inflate the count to something absurd; bound it by
  // what the remaining bytes could possibly hold (every table line takes
  // >= 6 bytes).
  if (n_sections > rest.size() / 6 + 1) {
    return Status::DataLoss(StrFormat(
        "artifact: declared section count %zu exceeds what %zu bytes can "
        "hold",
        n_sections, rest.size()));
  }
  LSD_ASSIGN_OR_RETURN(uint32_t table_crc, ParseCrcField(header[4]));

  // Section table. Its CRC is validated before the declared lengths are
  // trusted, so a bit flip in a length or checksum field is caught here
  // rather than misread as payload truncation.
  std::string table;
  struct PendingSection {
    std::string name;
    size_t bytes = 0;
    uint32_t crc = 0;
  };
  std::vector<PendingSection> pending;
  pending.reserve(n_sections);
  for (size_t i = 0; i < n_sections; ++i) {
    std::string_view line;
    if (!TakeLine(&rest, &line)) {
      return Status::OutOfRange(
          StrFormat("artifact truncated in the section table (%zu of %zu "
                    "entries present)",
                    i, n_sections));
    }
    table.append(line);
    table.push_back('\n');
    std::vector<std::string> fields = SplitAny(line, " \t");
    if (fields.size() != 4 || fields[0] != "s") {
      return Status::DataLoss("artifact: damaged section-table entry '" +
                              std::string(line) + "'");
    }
    PendingSection section;
    section.name = fields[1];
    if (!IsAllDigits(fields[2])) {
      return Status::DataLoss("artifact: damaged section length field '" +
                              fields[2] + "'");
    }
    section.bytes = std::strtoull(fields[2].c_str(), nullptr, 10);
    StatusOr<uint32_t> crc = ParseCrcField(fields[3]);
    if (!crc.ok()) {
      return Status::DataLoss("artifact: damaged section checksum field '" +
                              fields[3] + "'");
    }
    section.crc = *crc;
    pending.push_back(std::move(section));
  }
  if (Crc32(table) != table_crc) {
    return Status::DataLoss(
        "artifact: section-table checksum mismatch (header or table bytes "
        "were altered)");
  }
  std::string_view end_line;
  std::string_view at_table_end = rest;
  if (!TakeLine(&rest, &end_line)) {
    return Status::OutOfRange("artifact truncated at the table terminator");
  }
  if (at_table_end.substr(0, kTableEnd.size()) != kTableEnd) {
    return Status::DataLoss("artifact: damaged table terminator");
  }

  // Payloads: validate declared length against the remaining bytes first
  // (truncation), then each section's CRC (bit flips).
  Artifact out;
  out.kind = std::move(kind);
  size_t cursor = 0;
  for (PendingSection& section : pending) {
    if (section.bytes > rest.size() - cursor) {
      return Status::OutOfRange(StrFormat(
          "artifact truncated: section '%s' declares %zu bytes, %zu remain",
          section.name.c_str(), section.bytes, rest.size() - cursor));
    }
    std::string_view payload = rest.substr(cursor, section.bytes);
    cursor += section.bytes;
    if (Crc32(payload) != section.crc) {
      return Status::DataLoss(StrFormat(
          "artifact: checksum mismatch in section '%s' (%zu bytes)",
          section.name.c_str(), section.bytes));
    }
    out.sections.push_back(
        ArtifactSection{std::move(section.name), std::string(payload)});
  }
  if (cursor != rest.size()) {
    return Status::DataLoss(StrFormat(
        "artifact: %zu trailing bytes after the last declared section",
        rest.size() - cursor));
  }
  if (!expected_kind.empty() && out.kind != expected_kind) {
    return Status::InvalidArgument("artifact kind mismatch: want '" +
                                   std::string(expected_kind) + "', file is '" +
                                   out.kind + "'");
  }
  return out;
}

Status WriteArtifact(const std::string& path, const Artifact& artifact) {
  return WriteFileAtomic(path, EncodeArtifact(artifact));
}

StatusOr<Artifact> ReadArtifact(const std::string& path,
                                std::string_view expected_kind,
                                size_t max_bytes) {
  if (max_bytes == 0) max_bytes = kDefaultMaxFileBytes;
  LSD_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path, max_bytes));
  StatusOr<Artifact> decoded = DecodeArtifact(bytes, expected_kind);
  if (!decoded.ok()) {
    return Status(decoded.status().code(),
                  path + ": " + decoded.status().message());
  }
  return decoded;
}

}  // namespace lsd
