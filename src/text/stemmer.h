#ifndef LSD_TEXT_STEMMER_H_
#define LSD_TEXT_STEMMER_H_

#include <string>
#include <string_view>

namespace lsd {

/// Porter's suffix-stripping stemmer (Porter, 1980). Maps inflected
/// English words to a common stem: "fantastic"→"fantast",
/// "listings"→"list". Input should be lower-case ASCII letters; words
/// shorter than three characters are returned unchanged.
std::string PorterStem(std::string_view word);

}  // namespace lsd

#endif  // LSD_TEXT_STEMMER_H_
