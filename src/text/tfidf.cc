#include "text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/serial.h"
#include "common/strings.h"

namespace lsd {

int Vocabulary::GetOrAdd(std::string_view token) {
  auto it = index_.find(std::string(token));
  if (it != index_.end()) return it->second;
  int id = static_cast<int>(tokens_.size());
  tokens_.emplace_back(token);
  index_.emplace(tokens_.back(), id);
  return id;
}

int Vocabulary::Find(std::string_view token) const {
  auto it = index_.find(std::string(token));
  return it == index_.end() ? -1 : it->second;
}

SparseVector SparseVector::FromPairs(
    std::vector<std::pair<int, double>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  SparseVector out;
  for (auto& [id, weight] : pairs) {
    if (!out.entries_.empty() && out.entries_.back().first == id) {
      out.entries_.back().second += weight;
    } else {
      out.entries_.emplace_back(id, weight);
    }
  }
  return out;
}

double SparseVector::Norm() const {
  double total = 0.0;
  for (const auto& [id, weight] : entries_) total += weight * weight;
  return std::sqrt(total);
}

void SparseVector::Normalize() {
  double norm = Norm();
  if (norm <= 0.0) return;
  for (auto& [id, weight] : entries_) weight /= norm;
}

double SparseVector::Dot(const SparseVector& other) const {
  double total = 0.0;
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].first < other.entries_[j].first) {
      ++i;
    } else if (entries_[i].first > other.entries_[j].first) {
      ++j;
    } else {
      total += entries_[i].second * other.entries_[j].second;
      ++i;
      ++j;
    }
  }
  return total;
}

double SparseVector::Cosine(const SparseVector& other) const {
  double na = Norm();
  double nb = other.Norm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return Dot(other) / (na * nb);
}

void TfIdfModel::AddDocument(const std::vector<std::string>& tokens) {
  LSD_CHECK(!finalized_);
  ++document_count_;
  std::set<int> distinct;
  for (const std::string& token : tokens) {
    distinct.insert(vocab_.GetOrAdd(token));
  }
  if (document_frequency_.size() < vocab_.size()) {
    document_frequency_.resize(vocab_.size(), 0);
  }
  for (int id : distinct) {
    ++document_frequency_[static_cast<size_t>(id)];
  }
}

void TfIdfModel::Finalize() {
  LSD_CHECK(!finalized_);
  idf_.resize(vocab_.size(), 0.0);
  for (size_t i = 0; i < vocab_.size(); ++i) {
    idf_[i] = std::log((1.0 + static_cast<double>(document_count_)) /
                       (1.0 + static_cast<double>(document_frequency_[i]))) +
              1.0;
  }
  finalized_ = true;
}

SparseVector TfIdfModel::Vectorize(
    const std::vector<std::string>& tokens) const {
  LSD_CHECK(finalized_);
  std::vector<std::pair<int, double>> pairs;
  pairs.reserve(tokens.size());
  for (const std::string& token : tokens) {
    int id = vocab_.Find(token);
    if (id < 0) continue;
    pairs.emplace_back(id, 1.0);
  }
  SparseVector vec = SparseVector::FromPairs(std::move(pairs));
  // Apply log-scaled term frequency times IDF, then L2 normalize.
  std::vector<std::pair<int, double>> weighted;
  weighted.reserve(vec.entries().size());
  for (const auto& [id, count] : vec.entries()) {
    double tf = 1.0 + std::log(count);
    weighted.emplace_back(id, tf * idf_[static_cast<size_t>(id)]);
  }
  SparseVector out = SparseVector::FromPairs(std::move(weighted));
  out.Normalize();
  return out;
}

std::string TfIdfModel::Serialize() const {
  LSD_CHECK(finalized_);
  // Format version 2: tokens are EscapeToken-encoded (vocabulary entries
  // can carry whitespace via lenient-mode XML names). Version-1 files
  // still load.
  std::string out =
      StrFormat("tfidf 2 %zu %zu\n", document_count_, vocab_.size());
  for (size_t id = 0; id < vocab_.size(); ++id) {
    out += StrFormat("t %s %zu\n",
                     EscapeToken(vocab_.TokenOf(static_cast<int>(id))).c_str(),
                     document_frequency_[id]);
  }
  return out;
}

StatusOr<TfIdfModel> TfIdfModel::Deserialize(std::string_view text) {
  LineReader reader(text);
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       reader.Expect("tfidf", 4));
  bool escaped_tokens = header[1] == "2";
  if (header[1] != "1" && header[1] != "2") {
    return Status::ParseError("tfidf: unknown version");
  }
  TfIdfModel out;
  LSD_ASSIGN_OR_RETURN(out.document_count_, FieldToSize(header[2]));
  LSD_ASSIGN_OR_RETURN(size_t vocab, FieldToSize(header[3]));
  for (size_t id = 0; id < vocab; ++id) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         reader.Expect("t", 3));
    std::string token = fields[1];
    if (escaped_tokens) {
      LSD_ASSIGN_OR_RETURN(token, UnescapeToken(token));
    }
    int assigned = out.vocab_.GetOrAdd(token);
    if (assigned != static_cast<int>(id)) {
      return Status::ParseError("tfidf: duplicate token " + fields[1]);
    }
    LSD_ASSIGN_OR_RETURN(size_t df, FieldToSize(fields[2]));
    out.document_frequency_.push_back(df);
  }
  LSD_RETURN_IF_ERROR(ExpectAtEnd(reader, "tfidf"));
  out.Finalize();
  return out;
}

}  // namespace lsd
