#include "text/tokenizer.h"

#include <cctype>
#include <unordered_set>

#include "common/strings.h"
#include "text/stemmer.h"

namespace lsd {
namespace {

constexpr std::string_view kSymbols = "$%#@/:()-";

bool IsSymbolToken(char c) {
  return kSymbols.find(c) != std::string_view::npos;
}

void EmitWord(std::string word, const TokenizerOptions& options,
              std::vector<std::string>* out) {
  if (word.empty()) return;
  if (options.lowercase) word = ToLower(word);
  if (options.drop_stopwords && IsStopword(word)) return;
  if (options.stem) word = PorterStem(word);
  out->push_back(std::move(word));
}

}  // namespace

bool IsStopword(std::string_view word) {
  static const std::unordered_set<std::string_view> kStopwords = {
      "a",    "an",   "and",  "are",  "as",   "at",   "be",   "by",
      "for",  "from", "has",  "he",   "in",   "is",   "it",   "its",
      "of",   "on",   "or",   "that", "the",  "to",   "was",  "were",
      "will", "with", "this", "but",  "they", "have", "had",  "what",
      "when", "where", "who", "which", "why",  "how",  "all",  "each",
      "she",  "do",   "their", "if",  "we",   "you",  "your", "our",
  };
  return kStopwords.count(word) > 0;
}

std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    if (std::isalpha(c)) {
      size_t start = i;
      while (i < text.size() &&
             std::isalpha(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      EmitWord(std::string(text.substr(start, i - start)), options, &out);
    } else if (std::isdigit(c)) {
      std::string number;
      while (i < text.size()) {
        char d = text[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          number += d;
          ++i;
        } else if (d == ',' && i + 1 < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
          ++i;  // grouping comma inside a number
        } else {
          break;
        }
      }
      if (options.keep_numbers) out.push_back(std::move(number));
    } else {
      if (options.keep_symbols && IsSymbolToken(text[i])) {
        out.emplace_back(1, text[i]);
      }
      ++i;
    }
  }
  return out;
}

std::vector<std::string> TokenizeName(std::string_view name,
                                      const TokenizerOptions& options) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&]() {
    if (current.empty()) return;
    bool numeric = std::isdigit(static_cast<unsigned char>(current[0])) != 0;
    if (numeric) {
      if (options.keep_numbers) out.push_back(current);
    } else {
      EmitWord(current, options, &out);
    }
    current.clear();
  };
  for (size_t i = 0; i < name.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(name[i]);
    if (std::isalpha(c)) {
      // Camel-case boundary: previous lowercase, current uppercase.
      if (!current.empty() && std::isupper(c) &&
          std::islower(static_cast<unsigned char>(current.back()))) {
        flush();
      }
      // Letter after digits starts a new token.
      if (!current.empty() &&
          std::isdigit(static_cast<unsigned char>(current.back()))) {
        flush();
      }
      current += static_cast<char>(c);
    } else if (std::isdigit(c)) {
      if (!current.empty() &&
          std::isalpha(static_cast<unsigned char>(current.back()))) {
        flush();
      }
      current += static_cast<char>(c);
    } else {
      flush();  // separators: -, _, ., /, whitespace, anything else
    }
  }
  flush();
  return out;
}

}  // namespace lsd
