#ifndef LSD_TEXT_TOKENIZER_H_
#define LSD_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace lsd {

/// Options controlling `Tokenize`.
struct TokenizerOptions {
  /// Lower-case word tokens.
  bool lowercase = true;
  /// Apply the Porter stemmer to word tokens.
  bool stem = true;
  /// Drop common English stopwords ("the", "and", ...).
  bool drop_stopwords = false;
  /// Emit meaningful symbol characters ($ % # @ / - : ( )) as their own
  /// single-character tokens; the paper's preprocessing splits "$70000"
  /// into "$" and "70000".
  bool keep_symbols = true;
  /// Emit digit runs as number tokens. Grouping commas inside a number
  /// ("70,000") are absorbed so one token "70000" is produced.
  bool keep_numbers = true;
};

/// Splits text into tokens: maximal letter runs (optionally lower-cased
/// and stemmed), digit runs, and selected symbols. Other punctuation and
/// whitespace is discarded.
std::vector<std::string> Tokenize(
    std::string_view text, const TokenizerOptions& options = TokenizerOptions());

/// Tokenizes a schema tag name: in addition to the word rules, splits on
/// '-', '_', '.', '/' and on lowercase→uppercase camel-case boundaries
/// ("listedPrice" → {"listed","price"}). Numbers are kept, symbols dropped.
std::vector<std::string> TokenizeName(
    std::string_view name, const TokenizerOptions& options = TokenizerOptions());

/// Returns true for common English stopwords (lower-case input expected).
bool IsStopword(std::string_view word);

}  // namespace lsd

#endif  // LSD_TEXT_TOKENIZER_H_
