#include "text/stemmer.h"

namespace lsd {
namespace {

// Implementation of the Porter stemming algorithm, following the original
// 1980 paper's step structure. Operates on a mutable buffer `b` with the
// current end offset `k` (inclusive).
class PorterContext {
 public:
  explicit PorterContext(std::string word) : b_(std::move(word)) {
    k_ = static_cast<int>(b_.size()) - 1;
  }

  std::string Run() {
    if (k_ < 2) return b_;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    b_.resize(static_cast<size_t>(k_ + 1));
    return b_;
  }

 private:
  bool IsConsonant(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measures the number of consonant-vowel sequences in b[0..j].
  int Measure(int j) const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem(int j) const {
    for (int i = 0; i <= j; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int j) const {
    if (j < 1) return false;
    if (b_[static_cast<size_t>(j)] != b_[static_cast<size_t>(j - 1)]) {
      return false;
    }
    return IsConsonant(j);
  }

  // cvc, where the second c is not w, x or y; e.g. "hop" (so "hopping"
  // restores the final e to give "hope"... actually "hop"+e rule).
  bool CvcEnding(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    char c = b_[static_cast<size_t>(i)];
    return c != 'w' && c != 'x' && c != 'y';
  }

  bool EndsWith(const char* suffix) {
    int len = 0;
    while (suffix[len] != '\0') ++len;
    if (len > k_ + 1) return false;
    for (int i = 0; i < len; ++i) {
      if (b_[static_cast<size_t>(k_ - len + 1 + i)] != suffix[i]) return false;
    }
    j_ = k_ - len;
    return true;
  }

  void SetTo(const char* replacement) {
    int len = 0;
    while (replacement[len] != '\0') ++len;
    b_.resize(static_cast<size_t>(j_ + 1));
    b_.append(replacement, static_cast<size_t>(len));
    k_ = j_ + len;
  }

  void ReplaceIfMeasure(const char* replacement) {
    if (Measure(j_) > 0) SetTo(replacement);
  }

  void Step1ab() {
    if (b_[static_cast<size_t>(k_)] == 's') {
      if (EndsWith("sses")) {
        k_ -= 2;
      } else if (EndsWith("ies")) {
        SetTo("i");
      } else if (b_[static_cast<size_t>(k_ - 1)] != 's') {
        --k_;
      }
    }
    if (EndsWith("eed")) {
      if (Measure(j_) > 0) --k_;
    } else if ((EndsWith("ed") || EndsWith("ing")) && VowelInStem(j_)) {
      k_ = j_;
      if (EndsWith("at")) {
        SetTo("ate");
      } else if (EndsWith("bl")) {
        SetTo("ble");
      } else if (EndsWith("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        char c = b_[static_cast<size_t>(k_)];
        if (c != 'l' && c != 's' && c != 'z') --k_;
      } else if (Measure(k_) == 1 && CvcEnding(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  void Step1c() {
    if (EndsWith("y") && VowelInStem(j_)) {
      b_[static_cast<size_t>(k_)] = 'i';
    }
  }

  void Step2() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (EndsWith("ational")) { ReplaceIfMeasure("ate"); break; }
        if (EndsWith("tional")) { ReplaceIfMeasure("tion"); break; }
        break;
      case 'c':
        if (EndsWith("enci")) { ReplaceIfMeasure("ence"); break; }
        if (EndsWith("anci")) { ReplaceIfMeasure("ance"); break; }
        break;
      case 'e':
        if (EndsWith("izer")) { ReplaceIfMeasure("ize"); break; }
        break;
      case 'l':
        if (EndsWith("bli")) { ReplaceIfMeasure("ble"); break; }
        if (EndsWith("alli")) { ReplaceIfMeasure("al"); break; }
        if (EndsWith("entli")) { ReplaceIfMeasure("ent"); break; }
        if (EndsWith("eli")) { ReplaceIfMeasure("e"); break; }
        if (EndsWith("ousli")) { ReplaceIfMeasure("ous"); break; }
        break;
      case 'o':
        if (EndsWith("ization")) { ReplaceIfMeasure("ize"); break; }
        if (EndsWith("ation")) { ReplaceIfMeasure("ate"); break; }
        if (EndsWith("ator")) { ReplaceIfMeasure("ate"); break; }
        break;
      case 's':
        if (EndsWith("alism")) { ReplaceIfMeasure("al"); break; }
        if (EndsWith("iveness")) { ReplaceIfMeasure("ive"); break; }
        if (EndsWith("fulness")) { ReplaceIfMeasure("ful"); break; }
        if (EndsWith("ousness")) { ReplaceIfMeasure("ous"); break; }
        break;
      case 't':
        if (EndsWith("aliti")) { ReplaceIfMeasure("al"); break; }
        if (EndsWith("iviti")) { ReplaceIfMeasure("ive"); break; }
        if (EndsWith("biliti")) { ReplaceIfMeasure("ble"); break; }
        break;
      case 'g':
        if (EndsWith("logi")) { ReplaceIfMeasure("log"); break; }
        break;
      default:
        break;
    }
  }

  void Step3() {
    switch (b_[static_cast<size_t>(k_)]) {
      case 'e':
        if (EndsWith("icate")) { ReplaceIfMeasure("ic"); break; }
        if (EndsWith("ative")) { ReplaceIfMeasure(""); break; }
        if (EndsWith("alize")) { ReplaceIfMeasure("al"); break; }
        break;
      case 'i':
        if (EndsWith("iciti")) { ReplaceIfMeasure("ic"); break; }
        break;
      case 'l':
        if (EndsWith("ical")) { ReplaceIfMeasure("ic"); break; }
        if (EndsWith("ful")) { ReplaceIfMeasure(""); break; }
        break;
      case 's':
        if (EndsWith("ness")) { ReplaceIfMeasure(""); break; }
        break;
      default:
        break;
    }
  }

  void Step4() {
    if (k_ < 1) return;
    bool matched = false;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        matched = EndsWith("al");
        break;
      case 'c':
        matched = EndsWith("ance") || EndsWith("ence");
        break;
      case 'e':
        matched = EndsWith("er");
        break;
      case 'i':
        matched = EndsWith("ic");
        break;
      case 'l':
        matched = EndsWith("able") || EndsWith("ible");
        break;
      case 'n':
        matched = EndsWith("ant") || EndsWith("ement") || EndsWith("ment") ||
                  EndsWith("ent");
        break;
      case 'o':
        if (EndsWith("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' ||
             b_[static_cast<size_t>(j_)] == 't')) {
          matched = true;
        } else {
          matched = EndsWith("ou");
        }
        break;
      case 's':
        matched = EndsWith("ism");
        break;
      case 't':
        matched = EndsWith("ate") || EndsWith("iti");
        break;
      case 'u':
        matched = EndsWith("ous");
        break;
      case 'v':
        matched = EndsWith("ive");
        break;
      case 'z':
        matched = EndsWith("ize");
        break;
      default:
        break;
    }
    if (matched && Measure(j_) > 1) k_ = j_;
  }

  void Step5() {
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
      int m = Measure(k_ - 1);
      if (m > 1 || (m == 1 && !CvcEnding(k_ - 1))) --k_;
    }
    if (b_[static_cast<size_t>(k_)] == 'l' && DoubleConsonant(k_) &&
        Measure(k_ - 1) > 1) {
      --k_;
    }
  }

  std::string b_;
  int k_ = -1;
  int j_ = -1;
};

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() < 3) return std::string(word);
  for (char c : word) {
    if (c < 'a' || c > 'z') return std::string(word);
  }
  PorterContext ctx{std::string(word)};
  return ctx.Run();
}

}  // namespace lsd
