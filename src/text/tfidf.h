#ifndef LSD_TEXT_TFIDF_H_
#define LSD_TEXT_TFIDF_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"

namespace lsd {

/// Interns token strings to dense integer ids.
class Vocabulary {
 public:
  /// Returns the id for `token`, adding it if absent.
  int GetOrAdd(std::string_view token);

  /// Returns the id for `token` or -1 when unknown.
  int Find(std::string_view token) const;

  size_t size() const { return tokens_.size(); }
  const std::string& TokenOf(int id) const { return tokens_[static_cast<size_t>(id)]; }

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> tokens_;
};

/// A sparse vector of (token-id, weight) pairs kept sorted by id.
class SparseVector {
 public:
  SparseVector() = default;

  /// Builds from unsorted (id, weight) pairs, merging duplicate ids.
  static SparseVector FromPairs(std::vector<std::pair<int, double>> pairs);

  const std::vector<std::pair<int, double>>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// Euclidean norm.
  double Norm() const;

  /// Scales entries so the norm is 1 (no-op on the zero vector).
  void Normalize();

  /// Sparse dot product.
  double Dot(const SparseVector& other) const;

  /// Cosine similarity in [0, 1] for non-negative weights.
  double Cosine(const SparseVector& other) const;

 private:
  std::vector<std::pair<int, double>> entries_;
};

/// A TF/IDF weighting model over a corpus of token-bag documents: the
/// standard information-retrieval scheme the paper's Whirl-based matchers
/// rely on. Usage: add all training documents, call `Finalize`, then
/// `Vectorize` training and query documents alike.
class TfIdfModel {
 public:
  TfIdfModel() = default;

  /// Adds one document's tokens to the corpus statistics. Must not be
  /// called after `Finalize`.
  void AddDocument(const std::vector<std::string>& tokens);

  /// Computes IDF weights: idf(t) = log((1 + N) / (1 + df(t))) + 1
  /// (smoothed so unseen and ubiquitous tokens keep a positive weight).
  void Finalize();
  bool finalized() const { return finalized_; }

  size_t document_count() const { return document_count_; }
  const Vocabulary& vocabulary() const { return vocab_; }

  /// Maps a token bag to an L2-normalized TF/IDF vector. Tokens unseen
  /// during training are ignored. Requires `Finalize` to have been called.
  SparseVector Vectorize(const std::vector<std::string>& tokens) const;

  /// Serializes the finalized model (line-oriented text; common/serial.h).
  std::string Serialize() const;

  /// Restores a model produced by `Serialize` (returned finalized).
  static StatusOr<TfIdfModel> Deserialize(std::string_view text);

 private:
  Vocabulary vocab_;
  std::vector<size_t> document_frequency_;
  std::vector<double> idf_;
  size_t document_count_ = 0;
  bool finalized_ = false;
};

}  // namespace lsd

#endif  // LSD_TEXT_TFIDF_H_
