#ifndef LSD_DATAGEN_DOMAIN_SPEC_H_
#define LSD_DATAGEN_DOMAIN_SPEC_H_

#include <string>
#include <vector>

#include "datagen/value_generators.h"
#include "schema/schema.h"
#include "xml/dtd.h"

namespace lsd {

/// One concept of a synthetic domain's mediated schema: a mediated tag
/// plus everything needed to realize it in generated sources — candidate
/// source tag names, a value generator for leaves, presence probability,
/// and structural children for non-leaf concepts.
struct ConceptSpec {
  /// The mediated-schema tag, e.g. "AGENT-PHONE".
  std::string label;
  /// Candidate source-schema tag names; source k prefers name k mod size,
  /// so five sources see materially different vocabularies.
  std::vector<std::string> source_names;
  /// Value generator for leaf concepts (ignored for non-leaves).
  ValueKind kind = ValueKind::kYesNo;
  /// Probability that a generated source includes this concept at all.
  /// Concepts below 1.0 create the paper's "tag absent from all training
  /// sources" effect and the <100% matchable rates of Table 3.
  double presence_prob = 1.0;
  /// Non-leaf concepts may be flattened away in a source (children are
  /// promoted to the parent) with this probability — the source-to-source
  /// structural variation of Table 3's depth/tag ranges. Ignored for the
  /// root.
  double flatten_prob = 0.0;
  /// Correlated-value group: concepts sharing a non-empty group name draw
  /// from one record per listing (e.g. office name/phone/address), making
  /// functional dependencies hold in the data. `correlation_field` selects
  /// the record field: 0 = name, 1 = phone, 2 = address.
  std::string correlation_group;
  int correlation_field = 0;
  /// Child concepts (non-leaf when non-empty).
  std::vector<ConceptSpec> children;

  bool IsLeaf() const { return children.empty(); }
};

/// A filler concept generated into sources but absent from the mediated
/// schema; its gold label is OTHER.
struct OtherConceptSpec {
  std::vector<std::string> source_names;
  ValueKind kind;
  double presence_prob = 0.4;
};

/// A complete synthetic domain specification.
struct DomainSpec {
  std::string name;
  /// The mediated schema as a concept tree (root included).
  ConceptSpec root;
  /// Unmatchable filler concepts available to sources.
  std::vector<OtherConceptSpec> other_concepts;
  /// Word-level synonym groups for the name matcher.
  std::vector<std::vector<std::string>> synonym_groups;
  /// Probability that any generated leaf value is replaced by a dirty
  /// token ("unknown", "-", ...).
  double dirty_prob = 0.04;
  /// Probability that a leaf value is replaced by a value drawn from a
  /// random *other* concept of the same source — simulating the wrapper
  /// segmentation/extraction errors of real scraped data. Key-like and
  /// correlated fields are exempt.
  double extraction_noise_prob = 0.06;
  /// Probability that a source names a concept with a vacuous generic tag
  /// ("item", "field", "info", ...) instead of a descriptive one — the
  /// paper's realestate sources did exactly this, and it is what makes the
  /// name matcher fallible and multi-strategy learning worthwhile.
  double vague_name_prob = 0.18;
};

/// A generated source together with its gold mapping (what the user would
/// specify in Section 3.1 step 1).
struct GeneratedSource {
  DataSource source;
  Mapping gold;
};

/// A fully realized domain: mediated DTD, synonym dictionary, and the five
/// generated sources of the paper's experimental setup.
struct Domain {
  std::string name;
  Dtd mediated;
  SynonymDictionary synonyms;
  std::vector<GeneratedSource> sources;
};

/// Builds the mediated DTD from a domain spec's concept tree.
Dtd BuildMediatedDtd(const DomainSpec& spec);

/// Generates one source from the spec.
///   source_index   — 0-based; drives tag-name choice and format variants;
///   num_listings   — data listings to generate;
///   structure_seed — seeds the schema-shaping decisions (presence,
///                    flattening, tag names);
///   data_seed      — seeds listing generation; varying it while keeping
///                    `structure_seed` fixed re-samples data from the same
///                    source, the paper's "new sample of data" protocol.
///                    0 derives it from the structure seed.
GeneratedSource GenerateSource(const DomainSpec& spec, int source_index,
                               size_t num_listings, uint64_t structure_seed,
                               uint64_t data_seed = 0);

/// Realizes a full domain: mediated DTD, synonyms, and `num_sources`
/// sources with `num_listings` listings each. `data_seed` re-samples data
/// while keeping source schemas fixed (0 = derive from `seed`).
Domain RealizeDomain(const DomainSpec& spec, size_t num_sources,
                     size_t num_listings, uint64_t seed,
                     uint64_t data_seed = 0);

}  // namespace lsd

#endif  // LSD_DATAGEN_DOMAIN_SPEC_H_
