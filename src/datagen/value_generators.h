#ifndef LSD_DATAGEN_VALUE_GENERATORS_H_
#define LSD_DATAGEN_VALUE_GENERATORS_H_

#include <string>

#include "common/rng.h"

namespace lsd {

/// The kinds of atomic values the synthetic domains can generate. Each
/// mediated-schema leaf concept is bound to one kind; the generator varies
/// surface formatting by `source_variant` so different sources of a domain
/// exhibit different formats (phone punctuation, price symbols, ...), the
/// generalization axis the paper's experiments measure.
enum class ValueKind {
  // Real-estate / shared.
  kStreetAddress,
  kCity,
  kState,
  kZip,
  kCounty,
  kNeighborhood,
  kSchoolDistrict,
  kPrice,
  kBedrooms,
  kBathrooms,
  kHalfBaths,
  kSquareFeet,
  kLotSize,
  kYearBuilt,
  kStories,
  kHouseStyle,
  kFlooring,
  kHeating,
  kCooling,
  kYesNo,
  kAppliances,
  kRoof,
  kSiding,
  kGarage,
  kDescription,
  kRemarks,
  kPersonName,
  kPhone,
  kEmail,
  kOfficeName,
  kOfficeAddress,
  kDate,
  kTime,
  kMoneySmall,
  kRate,
  kMlsNumber,
  kListingType,
  kListingStatus,
  kWaterService,
  kSewerService,
  kElectricService,
  kParking,
  kView,
  kUrl,
  // Time-schedule domain.
  kCourseCode,
  kCourseTitle,
  kCredits,
  kDepartment,
  kSectionNumber,
  kEnrollment,
  kDays,
  kBuilding,
  kRoomNumber,
  kTerm,
  kCourseNotes,
  // Faculty domain.
  kFirstName,
  kLastName,
  kPosition,
  kResearchInterests,
  kBio,
  kDegree,
  kUniversity,
  kOfficeRoom,
  // Filler concepts for unmatchable (OTHER) tags.
  kAdId,
  kPageViews,
};

/// A small fixed table of (office name, office phone, office address)
/// triples: drawing contact info from it makes the functional dependency
/// OFFICE-NAME → OFFICE-PHONE/ADDRESS hold in generated data.
struct OfficeRecord {
  const char* name;
  const char* phone;
  const char* address;
};

/// The shared office table (per-domain generators index into it).
const OfficeRecord* OfficeTable(size_t* count);

/// Generates one value of `kind`.
///   source_variant — per-source formatting style (0-4 typical);
///   listing_index  — sequential listing number; kinds that must be keys
///                    (kMlsNumber, kAdId) incorporate it;
///   rng            — the caller's deterministic stream.
std::string GenerateValue(ValueKind kind, int source_variant,
                          int listing_index, Rng* rng);

/// The descriptive signal vocabulary used by house descriptions — the
/// frequency cues ("fantastic", "great", "beautiful") that the paper's
/// Naive Bayes learner keys on.
std::string GenerateHouseDescription(int source_variant, Rng* rng);

/// Dirty-value injection: with probability `p`, replaces `value` with a
/// typical dirty token ("unknown", "unk", "n/a", "-", ""). The paper's
/// preprocessing removed such tokens; LSD's learners are expected to
/// tolerate them.
std::string MaybeDirty(std::string value, double p, Rng* rng);

}  // namespace lsd

#endif  // LSD_DATAGEN_VALUE_GENERATORS_H_
