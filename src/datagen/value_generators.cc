#include "datagen/value_generators.h"

#include <array>
#include <vector>

#include "common/strings.h"

namespace lsd {
namespace {

const std::vector<std::string>& FirstNames() {
  static const auto* const kNames = new std::vector<std::string>{
      "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
      "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
      "Joseph", "Jessica", "Thomas", "Sarah", "Kate", "Karen", "Mike",
      "Nancy", "Matt", "Lisa", "Daniel", "Betty", "Paul", "Helen", "Mark",
      "Sandra", "Gail", "Donna", "Steven", "Carol", "Andrew", "Ruth",
      "Kenneth", "Sharon", "Joshua", "Michelle", "Kevin", "Laura", "Brian",
      "Emily", "George", "Kimberly", "Edward", "Deborah", "Ronald", "Amy"};
  return *kNames;
}

const std::vector<std::string>& LastNames() {
  static const auto* const kNames = new std::vector<std::string>{
      "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
      "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
      "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
      "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
      "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
      "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
      "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
      "Carter", "Richardson", "Murphy", "Kendall"};
  return *kNames;
}

struct CityRecord {
  const char* city;
  const char* state;
  const char* county;
};

const std::vector<CityRecord>& Cities() {
  static const auto* const kCities = new std::vector<CityRecord>{
      {"Seattle", "WA", "King"},        {"Tacoma", "WA", "Pierce"},
      {"Everett", "WA", "Snohomish"},   {"Spokane", "WA", "Spokane"},
      {"Kent", "WA", "King"},           {"Bellevue", "WA", "King"},
      {"Olympia", "WA", "Thurston"},    {"Portland", "OR", "Multnomah"},
      {"Eugene", "OR", "Lane"},         {"Salem", "OR", "Marion"},
      {"Bend", "OR", "Deschutes"},      {"Miami", "FL", "Miami-Dade"},
      {"Orlando", "FL", "Orange"},      {"Tampa", "FL", "Hillsborough"},
      {"Jacksonville", "FL", "Duval"},  {"Boston", "MA", "Suffolk"},
      {"Worcester", "MA", "Worcester"}, {"Cambridge", "MA", "Middlesex"},
      {"Austin", "TX", "Travis"},       {"Dallas", "TX", "Dallas"},
      {"Houston", "TX", "Harris"},      {"Plano", "TX", "Collin"},
      {"Denver", "CO", "Denver"},       {"Boulder", "CO", "Boulder"},
      {"Phoenix", "AZ", "Maricopa"},    {"Tucson", "AZ", "Pima"},
      {"Chicago", "IL", "Cook"},        {"Naperville", "IL", "DuPage"},
      {"Atlanta", "GA", "Fulton"},      {"Marietta", "GA", "Cobb"},
      {"Charlotte", "NC", "Mecklenburg"}, {"Raleigh", "NC", "Wake"},
      {"Detroit", "MI", "Wayne"},       {"Ann Arbor", "MI", "Washtenaw"},
      {"Columbus", "OH", "Franklin"},   {"Cleveland", "OH", "Cuyahoga"},
      {"Minneapolis", "MN", "Hennepin"}, {"St. Paul", "MN", "Ramsey"},
      {"Nashville", "TN", "Davidson"},  {"Memphis", "TN", "Shelby"},
      {"Richmond", "VA", "Henrico"},    {"Arlington", "VA", "Arlington"},
      {"Baltimore", "MD", "Baltimore"}, {"Columbia", "MD", "Howard"},
      {"Milwaukee", "WI", "Milwaukee"}, {"Madison", "WI", "Dane"},
      {"Sacramento", "CA", "Sacramento"}, {"San Jose", "CA", "Santa Clara"},
      {"Fresno", "CA", "Fresno"},       {"Oakland", "CA", "Alameda"}};
  return *kCities;
}

const std::vector<std::string>& StreetNames() {
  static const auto* const kStreets = new std::vector<std::string>{
      "Maple",    "Oak",     "Pine",      "Cedar",    "Elm",      "Main",
      "Lake",     "Hill",    "Park",      "River",    "Sunset",   "Highland",
      "Meadow",   "Forest",  "Washington", "Lincoln",  "Jefferson", "Madison",
      "Franklin", "Spring",  "Valley",    "Ridge",    "Cherry",   "Walnut",
      "Chestnut", "Spruce",  "Birch",     "Willow",   "Magnolia", "Juniper"};
  return *kStreets;
}

const std::vector<std::string>& StreetSuffixes() {
  static const auto* const kSuffixes = new std::vector<std::string>{
      "St", "Ave", "Blvd", "Dr", "Ln", "Rd", "Way", "Ct", "Pl"};
  return *kSuffixes;
}

constexpr std::array<OfficeRecord, 12> kOffices = {{
    {"MAX Realtors", "(206) 555 0100", "1200 5th Ave, Seattle, WA"},
    {"Windermere Real Estate", "(206) 555 0111", "800 Pike St, Seattle, WA"},
    {"Century 21 Gold", "(305) 555 0122", "455 Ocean Dr, Miami, FL"},
    {"RE/MAX Premier", "(617) 555 0133", "50 Beacon St, Boston, MA"},
    {"Coldwell Banker Bain", "(503) 555 0144", "900 SW 5th Ave, Portland, OR"},
    {"Keller Williams Realty", "(512) 555 0155", "1801 Congress Ave, Austin, TX"},
    {"Berkshire Hathaway Homes", "(303) 555 0166", "1700 Broadway, Denver, CO"},
    {"Sotheby's International", "(415) 555 0177", "117 Greenwich St, San Francisco, CA"},
    {"ERA Brokers", "(602) 555 0188", "2400 Camelback Rd, Phoenix, AZ"},
    {"Redfin Partners", "(312) 555 0199", "875 Michigan Ave, Chicago, IL"},
    {"Compass Realty Group", "(404) 555 0200", "3350 Peachtree Rd, Atlanta, GA"},
    {"John L. Scott Realty", "(253) 555 0211", "1145 Broadway, Tacoma, WA"},
}};

const std::vector<std::string>& Departments() {
  static const auto* const kDepartments = new std::vector<std::string>{
      "Computer Science", "Mathematics",      "Physics",
      "Chemistry",        "Biology",          "Economics",
      "History",          "Philosophy",       "Psychology",
      "Electrical Engineering", "Statistics", "Linguistics"};
  return *kDepartments;
}

const std::vector<std::string>& DeptCodes() {
  static const auto* const kCodes = new std::vector<std::string>{
      "CSE", "MATH", "PHYS", "CHEM", "BIOL", "ECON", "HIST", "PHIL", "PSYC",
      "EE",  "STAT", "LING"};
  return *kCodes;
}

const std::vector<std::string>& CourseTopics() {
  static const auto* const kTopics = new std::vector<std::string>{
      "Introduction to Programming",   "Data Structures",
      "Algorithms",                    "Operating Systems",
      "Database Systems",              "Machine Learning",
      "Computer Networks",             "Linear Algebra",
      "Calculus",                      "Differential Equations",
      "Quantum Mechanics",             "Organic Chemistry",
      "Molecular Biology",             "Microeconomics",
      "Macroeconomics",                "World History",
      "Ethics",                        "Cognitive Psychology",
      "Signal Processing",             "Probability and Statistics",
      "Compilers",                     "Artificial Intelligence",
      "Software Engineering",          "Computer Graphics"};
  return *kTopics;
}

const std::vector<std::string>& Buildings() {
  static const auto* const kBuildings = new std::vector<std::string>{
      "Sieg Hall",    "Guggenheim Hall", "Smith Hall",   "Johnson Hall",
      "Savery Hall",  "Thomson Hall",    "Gould Hall",   "Bagley Hall",
      "Mary Gates Hall", "Kane Hall",    "Anderson Hall", "Loew Hall"};
  return *kBuildings;
}

const std::vector<std::string>& Universities() {
  static const auto* const kUniversities = new std::vector<std::string>{
      "University of Washington", "Stanford University", "MIT",
      "Carnegie Mellon University", "UC Berkeley", "University of Michigan",
      "Cornell University", "Princeton University", "University of Texas",
      "University of Illinois", "Georgia Tech", "University of Wisconsin"};
  return *kUniversities;
}

const std::vector<std::string>& ResearchAreas() {
  static const auto* const kAreas = new std::vector<std::string>{
      "machine learning",        "databases",
      "data integration",        "computer vision",
      "natural language processing", "distributed systems",
      "programming languages",   "human computer interaction",
      "computational biology",   "theory of computation",
      "computer architecture",   "robotics",
      "information retrieval",   "security and privacy"};
  return *kAreas;
}


// Per-source vocabulary skew: each source prefers a contiguous slice of a
// value pool (with probability 1-kSkewEscape it samples from its slice,
// otherwise from the whole pool). Mirrors the regional/vocabulary drift
// between the paper's real WWW sources — a Seattle site and a Miami site
// list different cities, agents, and buildings — and is what keeps the
// content learners from transferring perfectly across sources.
constexpr double kSkewEscape = 0.25;

template <typename T>
const T& PickSkewed(const std::vector<T>& items, int source_variant,
                    Rng* rng) {
  if (items.size() < 6 || rng->Bernoulli(kSkewEscape)) {
    return items[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
  }
  size_t slice = items.size() / 3 + 1;
  size_t offset = (static_cast<size_t>(source_variant) * items.size() / 5) %
                  items.size();
  size_t index =
      (offset + static_cast<size_t>(
                    rng->UniformInt(0, static_cast<int64_t>(slice) - 1))) %
      items.size();
  return items[index];
}

std::string TwoDigit(int64_t v) {
  return (v < 10 ? "0" : "") + std::to_string(v);
}

std::string PhoneNumber(int source_variant, Rng* rng) {
  static const char* kAreaCodes[] = {"206", "305", "617", "503", "512",
                                     "303", "415", "602", "312", "404"};
  const char* area = kAreaCodes[rng->UniformInt(0, 9)];
  int64_t mid = rng->UniformInt(200, 999);
  int64_t last = rng->UniformInt(0, 9999);
  switch (source_variant % 4) {
    case 0:
      return StrFormat("(%s) %ld %04ld", area, mid, last);
    case 1:
      return StrFormat("%s-%ld-%04ld", area, mid, last);
    case 2:
      return StrFormat("%s.%ld.%04ld", area, mid, last);
    default:
      return StrFormat("(%s) %ld-%04ld", area, mid, last);
  }
}

std::string PersonName(Rng* rng) {
  return rng->Pick(FirstNames()) + " " + rng->Pick(LastNames());
}

}  // namespace

const OfficeRecord* OfficeTable(size_t* count) {
  *count = kOffices.size();
  return kOffices.data();
}

std::string GenerateHouseDescription(int source_variant, Rng* rng) {
  // Signal adjectives and phrases that make DESCRIPTION learnable from
  // token frequencies, with mild per-source vocabulary skew.
  static const std::vector<std::string> kAdjectives = {
      "fantastic", "great",  "beautiful", "spacious",  "charming",
      "stunning",  "lovely", "gorgeous",  "immaculate", "cozy",
      "bright",    "updated", "remodeled", "elegant",   "delightful"};
  static const std::vector<std::string> kFeatures = {
      "hardwood floors", "granite counters",  "large backyard",
      "open floor plan", "vaulted ceilings",  "new roof",
      "finished basement", "gourmet kitchen", "walk-in closets",
      "covered patio",   "mountain views",    "mature landscaping",
      "two car garage",  "close to schools",  "quiet street",
      "water view",      "close to highway",  "great location"};
  static const std::vector<std::string> kOpeners = {
      "Must see", "Name your price", "Won't last", "Move-in ready",
      "A rare find", "Priced to sell", "Pride of ownership"};
  std::string out;
  out += PickSkewed(kAdjectives, source_variant, rng);
  // Per-source skew: each source favors one extra adjective.
  if (rng->Bernoulli(0.5)) {
    out += " " + kAdjectives[static_cast<size_t>(source_variant) %
                             kAdjectives.size()];
  }
  out += " home with " + PickSkewed(kFeatures, source_variant, rng);
  if (rng->Bernoulli(0.7)) {
    out += " and " + PickSkewed(kFeatures, source_variant, rng);
  }
  if (rng->Bernoulli(0.5)) out += ". " + rng->Pick(kOpeners) + "!";
  // Free text bleeds other concepts' vocabulary — descriptions name the
  // agent, the office, and the price, exactly like the paper's example
  // "To see it, contact Gail Murphy at MAX Realtors". This is what makes
  // flat bag-of-words learners confuse DESCRIPTION with CONTACT-INFO.
  if (rng->Bernoulli(0.4)) {
    size_t count = 0;
    const OfficeRecord* offices = OfficeTable(&count);
    out += ". Contact " + PersonName(rng) + " at " +
           offices[static_cast<size_t>(
                       rng->UniformInt(0, static_cast<int64_t>(count) - 1))]
               .name;
  }
  if (rng->Bernoulli(0.25)) {
    out += ". Offered at $" + std::to_string(rng->UniformInt(80, 900)) +
           ",000";
  }
  return out;
}

std::string MaybeDirty(std::string value, double p, Rng* rng) {
  if (!rng->Bernoulli(p)) return value;
  static const std::vector<std::string> kDirty = {"unknown", "unk", "n/a",
                                                  "-", ""};
  return rng->Pick(kDirty);
}

std::string GenerateValue(ValueKind kind, int source_variant,
                          int listing_index, Rng* rng) {
  switch (kind) {
    case ValueKind::kStreetAddress: {
      std::string number = std::to_string(rng->UniformInt(100, 19999));
      return number + " " + rng->Pick(StreetNames()) + " " +
             rng->Pick(StreetSuffixes());
    }
    case ValueKind::kCity:
      return PickSkewed(Cities(), source_variant, rng).city;
    case ValueKind::kState:
      return PickSkewed(Cities(), source_variant, rng).state;
    case ValueKind::kZip:
      return StrFormat("%05ld", rng->UniformInt(1000, 99950));
    case ValueKind::kCounty: {
      std::string county = PickSkewed(Cities(), source_variant, rng).county;
      return source_variant % 2 == 0 ? county : county + " County";
    }
    case ValueKind::kNeighborhood: {
      static const std::vector<std::string> kHoods = {
          "Downtown",   "Capitol Hill", "Ballard",   "Fremont",
          "Queen Anne", "Greenwood",    "Ravenna",   "Laurelhurst",
          "Northgate",  "West End",     "Riverside", "Old Town"};
      return PickSkewed(kHoods, source_variant, rng);
    }
    case ValueKind::kSchoolDistrict: {
      static const std::vector<std::string> kDistricts = {
          "Seattle Public Schools", "Lake Washington SD", "Bellevue SD",
          "Northshore SD",          "Issaquah SD",        "Tacoma SD",
          "Mukilteo SD",            "Edmonds SD"};
      return PickSkewed(kDistricts, source_variant, rng);
    }
    case ValueKind::kPrice: {
      // Regional price skew: cheap-market and expensive-market sources.
      int64_t lo = 60 + 40 * (source_variant % 5);
      int64_t hi = 550 + 80 * (source_variant % 5);
      int64_t thousands = rng->UniformInt(lo, hi);
      int64_t price = thousands * 1000;
      switch (source_variant % 3) {
        case 0:
          return StrFormat("$ %ld,000", thousands);
        case 1:
          return StrFormat("$%ld", price);
        default:
          return StrFormat("%ld", price);
      }
    }
    case ValueKind::kBedrooms:
      return std::to_string(rng->UniformInt(1, 6));
    case ValueKind::kBathrooms: {
      int64_t whole = rng->UniformInt(1, 4);
      return rng->Bernoulli(0.3) ? std::to_string(whole) + ".5"
                                 : std::to_string(whole);
    }
    case ValueKind::kHalfBaths:
      return std::to_string(rng->UniformInt(0, 2));
    case ValueKind::kSquareFeet:
      return std::to_string(rng->UniformInt(70, 520) * 10);
    case ValueKind::kLotSize: {
      if (source_variant % 2 == 0) {
        return StrFormat("%.2f acres", rng->Uniform(0.1, 2.5));
      }
      return std::to_string(rng->UniformInt(4000, 90000)) + " sqft";
    }
    case ValueKind::kYearBuilt:
      return std::to_string(rng->UniformInt(1900, 2000));
    case ValueKind::kStories:
      return std::to_string(rng->UniformInt(1, 3));
    case ValueKind::kHouseStyle: {
      static const std::vector<std::string> kStyles = {
          "Colonial", "Ranch",     "Victorian",   "Craftsman", "Tudor",
          "Cape Cod", "Split-Level", "Contemporary", "Bungalow", "Townhouse"};
      return PickSkewed(kStyles, source_variant, rng);
    }
    case ValueKind::kFlooring: {
      static const std::vector<std::string> kFloors = {
          "hardwood", "carpet", "tile", "laminate", "vinyl", "bamboo"};
      return PickSkewed(kFloors, source_variant, rng);
    }
    case ValueKind::kHeating: {
      static const std::vector<std::string> kHeat = {
          "forced air", "radiant", "baseboard", "heat pump", "gas furnace"};
      return rng->Pick(kHeat);
    }
    case ValueKind::kCooling: {
      static const std::vector<std::string> kCool = {
          "central air", "window units", "heat pump", "none", "evaporative"};
      return rng->Pick(kCool);
    }
    case ValueKind::kYesNo:
      return rng->Bernoulli(0.5) ? "yes" : "no";
    case ValueKind::kAppliances: {
      static const std::vector<std::string> kAppliances = {
          "dishwasher, range, refrigerator", "washer, dryer, dishwasher",
          "range, microwave, disposal",      "refrigerator, oven, dishwasher"};
      return rng->Pick(kAppliances);
    }
    case ValueKind::kRoof: {
      static const std::vector<std::string> kRoofs = {
          "composition", "tile", "metal", "cedar shake", "asphalt shingle"};
      return rng->Pick(kRoofs);
    }
    case ValueKind::kSiding: {
      static const std::vector<std::string> kSidings = {
          "vinyl", "brick", "wood", "stucco", "fiber cement", "aluminum"};
      return rng->Pick(kSidings);
    }
    case ValueKind::kGarage: {
      if (source_variant % 2 == 0) {
        return std::to_string(rng->UniformInt(0, 3)) + " car";
      }
      static const std::vector<std::string> kGarages = {
          "attached", "detached", "carport", "none"};
      return rng->Pick(kGarages);
    }
    case ValueKind::kDescription:
      return GenerateHouseDescription(source_variant, rng);
    case ValueKind::kRemarks: {
      static const std::vector<std::string> kRemarks = {
          "Seller motivated, bring all offers",
          "Sold as-is, inspection welcome",
          "New listing, showings start Saturday",
          "Back on market, financing fell through",
          "Estate sale, no disclosures",
          "Tenant occupied, 24 hour notice required"};
      return PickSkewed(kRemarks, source_variant, rng);
    }
    case ValueKind::kPersonName:
      return PersonName(rng);
    case ValueKind::kPhone:
      return PhoneNumber(source_variant, rng);
    case ValueKind::kEmail: {
      std::string first = ToLower(rng->Pick(FirstNames()));
      std::string last = ToLower(rng->Pick(LastNames()));
      static const std::vector<std::string> kHosts = {
          "example.com", "mail.com", "realty.net", "university.edu"};
      return first + "." + last + "@" + rng->Pick(kHosts);
    }
    case ValueKind::kOfficeName:
      return kOffices[static_cast<size_t>(
                          rng->UniformInt(0, static_cast<int64_t>(kOffices.size()) - 1))]
          .name;
    case ValueKind::kOfficeAddress:
      return kOffices[static_cast<size_t>(
                          rng->UniformInt(0, static_cast<int64_t>(kOffices.size()) - 1))]
          .address;
    case ValueKind::kDate: {
      int64_t month = rng->UniformInt(1, 12);
      int64_t day = rng->UniformInt(1, 28);
      int64_t year = rng->UniformInt(1999, 2001);
      switch (source_variant % 3) {
        case 0:
          return StrFormat("%ld/%ld/%ld", month, day, year);
        case 1:
          return StrFormat("%ld-%s-%s", year, TwoDigit(month).c_str(),
                           TwoDigit(day).c_str());
        default: {
          static const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr",
                                          "May", "Jun", "Jul", "Aug",
                                          "Sep", "Oct", "Nov", "Dec"};
          return StrFormat("%s %ld, %ld", kMonths[month - 1], day, year);
        }
      }
    }
    case ValueKind::kTime: {
      int64_t hour = rng->UniformInt(8, 17);
      int64_t minute = rng->Bernoulli(0.5) ? 30 : 0;
      if (source_variant % 2 == 0) {
        int64_t display = hour > 12 ? hour - 12 : hour;
        return StrFormat("%ld:%s %s", display, TwoDigit(minute).c_str(),
                         hour >= 12 ? "PM" : "AM");
      }
      return StrFormat("%s:%s", TwoDigit(hour).c_str(), TwoDigit(minute).c_str());
    }
    case ValueKind::kMoneySmall:
      return StrFormat("$%ld", rng->UniformInt(50, 900));
    case ValueKind::kRate:
      return StrFormat("%.2f%%", rng->Uniform(5.0, 9.5));
    case ValueKind::kMlsNumber:
      // Unique per listing: satisfies key constraints by construction.
      return StrFormat("MLS%d%04d", source_variant, listing_index);
    case ValueKind::kListingType: {
      static const std::vector<std::string> kTypes = {
          "single family", "condo", "townhouse", "multi-family", "land"};
      return rng->Pick(kTypes);
    }
    case ValueKind::kListingStatus: {
      static const std::vector<std::string> kStatuses = {
          "active", "pending", "contingent", "new", "price reduced"};
      return rng->Pick(kStatuses);
    }
    case ValueKind::kWaterService:
      return rng->Bernoulli(0.8) ? "public" : "well";
    case ValueKind::kSewerService:
      return rng->Bernoulli(0.7) ? "public sewer" : "septic";
    case ValueKind::kElectricService: {
      static const std::vector<std::string> kElectric = {
          "city light", "puget sound energy", "pacific power", "duke energy"};
      return rng->Pick(kElectric);
    }
    case ValueKind::kParking: {
      static const std::vector<std::string> kParking = {
          "street", "driveway", "garage", "off-street", "assigned"};
      return rng->Pick(kParking);
    }
    case ValueKind::kView: {
      static const std::vector<std::string> kViews = {
          "mountain", "lake", "city", "territorial", "sound", "none"};
      return rng->Pick(kViews);
    }
    case ValueKind::kUrl:
      return StrFormat("http://listings.example.com/%d/%04d", source_variant,
                       listing_index);
    case ValueKind::kCourseCode: {
      const auto& codes = DeptCodes();
      return codes[static_cast<size_t>(
                 rng->UniformInt(0, static_cast<int64_t>(codes.size()) - 1))] +
             std::to_string(rng->UniformInt(100, 599));
    }
    case ValueKind::kCourseTitle:
      return PickSkewed(CourseTopics(), source_variant, rng);
    case ValueKind::kCredits:
      return std::to_string(rng->UniformInt(1, 5));
    case ValueKind::kDepartment:
      return PickSkewed(Departments(), source_variant, rng);
    case ValueKind::kSectionNumber: {
      if (source_variant % 2 == 0) {
        return std::to_string(rng->UniformInt(1, 9));
      }
      return std::string(1, static_cast<char>('A' + rng->UniformInt(0, 5)));
    }
    case ValueKind::kEnrollment:
      return std::to_string(rng->UniformInt(5, 300));
    case ValueKind::kDays: {
      static const std::vector<std::string> kDayPatterns = {
          "MWF", "TTh", "MW", "F", "M", "W", "MTWThF", "Daily"};
      return rng->Pick(kDayPatterns);
    }
    case ValueKind::kBuilding:
      return PickSkewed(Buildings(), source_variant, rng);
    case ValueKind::kRoomNumber:
      return std::to_string(rng->UniformInt(100, 499));
    case ValueKind::kTerm: {
      static const std::vector<std::string> kTerms = {
          "Fall 2000", "Winter 2001", "Spring 2001", "Summer 2001"};
      return rng->Pick(kTerms);
    }
    case ValueKind::kCourseNotes: {
      static const std::vector<std::string> kNotes = {
          "Prerequisite required",          "Open to majors only",
          "Meets writing requirement",      "Lab section required",
          "Instructor permission required", "No prerequisites"};
      std::string note = PickSkewed(kNotes, source_variant, rng);
      if (rng->Bernoulli(0.4)) {
        note += ". See " + PersonName(rng) + " in " +
                rng->Pick(Buildings()) + " " +
                std::to_string(rng->UniformInt(100, 499));
      }
      return note;
    }
    case ValueKind::kFirstName:
      return PickSkewed(FirstNames(), source_variant, rng);
    case ValueKind::kLastName:
      return PickSkewed(LastNames(), source_variant, rng);
    case ValueKind::kPosition: {
      static const std::vector<std::string> kPositions = {
          "Professor",           "Associate Professor", "Assistant Professor",
          "Lecturer",            "Research Professor",  "Professor Emeritus",
          "Adjunct Professor",   "Affiliate Professor"};
      return PickSkewed(kPositions, source_variant, rng);
    }
    case ValueKind::kResearchInterests: {
      std::string out = PickSkewed(ResearchAreas(), source_variant, rng);
      if (rng->Bernoulli(0.7)) {
        out += ", " + PickSkewed(ResearchAreas(), source_variant, rng);
      }
      if (rng->Bernoulli(0.4)) {
        out += ", " + PickSkewed(ResearchAreas(), source_variant, rng);
      }
      return out;
    }
    case ValueKind::kBio: {
      std::string name = PersonName(rng);
      return name + " works on " + rng->Pick(ResearchAreas()) +
             " and teaches courses on " + rng->Pick(CourseTopics()) +
             ". Prior to joining the faculty, " + name + " was at " +
             rng->Pick(Universities()) + ".";
    }
    case ValueKind::kDegree: {
      static const std::vector<std::string> kDegrees = {
          "PhD", "Ph.D.", "MS", "M.S.", "ScD"};
      return rng->Pick(kDegrees);
    }
    case ValueKind::kUniversity:
      return PickSkewed(Universities(), source_variant, rng);
    case ValueKind::kOfficeRoom:
      return rng->Pick(Buildings()) + " " +
             std::to_string(rng->UniformInt(100, 499));
    case ValueKind::kAdId:
      return StrFormat("AD-%d-%05d", source_variant, listing_index);
    case ValueKind::kPageViews:
      return std::to_string(rng->UniformInt(3, 25000));
  }
  return "";
}

}  // namespace lsd
