#include "datagen/domains.h"

namespace lsd {
namespace {

ConceptSpec Leaf(std::string label, std::vector<std::string> names,
                 ValueKind kind, double presence = 1.0) {
  ConceptSpec c;
  c.label = std::move(label);
  c.source_names = std::move(names);
  c.kind = kind;
  c.presence_prob = presence;
  return c;
}

ConceptSpec Group(std::string label, std::vector<std::string> names,
                  double flatten_prob, std::vector<ConceptSpec> children,
                  double presence = 1.0) {
  ConceptSpec c;
  c.label = std::move(label);
  c.source_names = std::move(names);
  c.flatten_prob = flatten_prob;
  c.presence_prob = presence;
  c.children = std::move(children);
  return c;
}

ConceptSpec Correlated(std::string label, std::vector<std::string> names,
                       std::string group, int field, double presence = 1.0) {
  ConceptSpec c = Leaf(std::move(label), std::move(names), ValueKind::kYesNo,
                       presence);
  c.correlation_group = std::move(group);
  c.correlation_field = field;
  return c;
}

// ---------------------------------------------------------------------------
// Real Estate I: 20 tags, 4 non-leaf, depth 3.
// ---------------------------------------------------------------------------

DomainSpec RealEstate1Spec() {
  DomainSpec spec;
  spec.name = "real-estate-1";
  spec.root = Group(
      "HOUSE",
      {"house-listing", "listing", "house", "home-listing", "property"}, 0.0,
      {
          Group("LOCATION",
                {"location-info", "where", "locale", "location-details",
                 "place-info"},
                0.5,
                {
                    Leaf("ADDRESS",
                         {"address", "location", "house-addr",
                          "street-address", "area"},
                         ValueKind::kStreetAddress),
                    Leaf("CITY",
                         {"city", "town", "municipality", "city-name",
                          "locality"},
                         ValueKind::kCity),
                    Leaf("STATE",
                         {"state", "st", "state-code", "province", "region"},
                         ValueKind::kState),
                    Leaf("ZIP",
                         {"zip", "zipcode", "postal-code", "zip-code",
                          "postal"},
                         ValueKind::kZip),
                    Leaf("COUNTY",
                         {"county", "county-name", "cnty", "parish",
                          "district"},
                         ValueKind::kCounty, 0.7),
                }),
          Leaf("PRICE",
               {"price", "listed-price", "asking-price", "list-price", "cost"},
               ValueKind::kPrice),
          Leaf("DESCRIPTION",
               {"description", "comments", "extra-info", "detailed-desc",
                "listing-text"},
               ValueKind::kDescription),
          Leaf("NUM-BEDROOMS",
               {"bedrooms", "num-beds", "beds", "br", "bed-rooms"},
               ValueKind::kBedrooms),
          Leaf("NUM-BATHROOMS",
               {"bathrooms", "num-baths", "baths", "ba", "bath-rooms"},
               ValueKind::kBathrooms),
          Leaf("SQUARE-FEET",
               {"sqft", "square-feet", "living-area", "sq-ft", "floor-space"},
               ValueKind::kSquareFeet, 0.9),
          Leaf("LOT-SIZE",
               {"lot-size", "lot", "lot-area", "land-size", "parcel-size"},
               ValueKind::kLotSize, 0.8),
          Leaf("YEAR-BUILT",
               {"year-built", "built", "yr-built", "construction-year",
                "year"},
               ValueKind::kYearBuilt, 0.8),
          Group("CONTACT-INFO",
                {"contact", "contact-info", "agent-contact", "contact-details",
                 "how-to-reach"},
                0.5,
                {
                    Leaf("AGENT-NAME",
                         {"agent-name", "name", "realtor", "agent",
                          "listing-agent"},
                         ValueKind::kPersonName),
                    Leaf("AGENT-PHONE",
                         {"phone", "contact-phone", "agent-phone",
                          "work-phone", "telephone"},
                         ValueKind::kPhone),
                }),
          Group("OFFICE-INFO",
                {"office", "office-info", "brokerage", "firm-info", "broker"},
                0.5,
                {
                    Correlated("OFFICE-NAME",
                               {"office-name", "firm", "firm-name",
                                "brokerage-name", "company"},
                               "office", 0),
                    Correlated("OFFICE-PHONE",
                               {"office-phone", "firm-phone", "main-phone",
                                "office-tel", "broker-phone"},
                               "office", 1),
                }),
      });
  spec.other_concepts = {
      {{"ad-id", "listing-ref", "ad-number", "ref-no", "internal-id"},
       ValueKind::kAdId, 0.4},
      {{"date-posted", "posted-on", "entry-date", "added", "post-date"},
       ValueKind::kDate, 0.4},
      {{"page-views", "hits", "views", "times-viewed", "popularity"},
       ValueKind::kPageViews, 0.3},
      {{"more-info", "details-url", "link", "full-listing", "listing-url"},
       ValueKind::kUrl, 0.3},
      {{"mls", "mls-number", "mls-id", "board-id", "mls-no"},
       ValueKind::kMlsNumber, 0.3},
  };
  spec.synonym_groups = {
      {"address", "location", "area", "street", "addr"},
      {"phone", "telephone", "tel"},
      {"description", "comments", "remarks", "desc"},
      {"bedrooms", "beds", "br"},
      {"bathrooms", "baths", "ba"},
      {"price", "cost"},
      {"firm", "office", "brokerage", "company", "broker"},
      {"agent", "realtor"},
      {"city", "town", "locality"},
      {"county", "parish"},
      {"zip", "zipcode", "postal"},
      {"sqft", "square", "area"},
      {"lot", "land", "parcel"},
      {"year", "built", "yr"},
      {"contact", "reach"},
      {"house", "home", "property", "listing"},
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Time Schedule: 23 tags, 6 non-leaf, depth 4.
// ---------------------------------------------------------------------------

DomainSpec TimeScheduleSpec() {
  DomainSpec spec;
  spec.name = "time-schedule";
  spec.root = Group(
      "COURSE-LISTING",
      {"course-listing", "course-offering", "class-listing", "course-entry",
       "offering"},
      0.0,
      {
          Leaf("TERM", {"term", "quarter", "semester", "session", "period"},
               ValueKind::kTerm, 0.8),
          Group("COURSE-INFO",
                {"course-info", "course-details", "class-info", "course-data",
                 "about-course"},
                0.5,
                {
                    Leaf("COURSE-CODE",
                         {"course-code", "code", "course-number", "course-id",
                          "catalog-number"},
                         ValueKind::kCourseCode),
                    Leaf("COURSE-TITLE",
                         {"title", "course-title", "course-name",
                          "class-title", "name"},
                         ValueKind::kCourseTitle),
                    Leaf("COURSE-CREDITS",
                         {"credits", "credit-hours", "units",
                          "course-credits", "hours"},
                         ValueKind::kCredits, 0.85),
                    Leaf("DEPARTMENT",
                         {"department", "dept", "division", "school",
                          "program"},
                         ValueKind::kDepartment, 0.85),
                }),
          Group(
              "SECTION",
              {"section", "section-info", "sect", "class-section",
               "section-details"},
              0.35,
              {
                  Leaf("SECTION-NUMBER",
                       {"section-number", "sec-no", "section-id", "sect-num",
                        "section-code"},
                       ValueKind::kSectionNumber),
                  Leaf("ENROLLMENT",
                       {"enrollment", "enrolled", "students", "class-size",
                        "current-enrollment"},
                       ValueKind::kEnrollment, 0.8),
                  Leaf("CAPACITY",
                       {"limit", "capacity", "max-enrollment", "seats",
                        "max-size"},
                       ValueKind::kEnrollment, 0.7),
                  Group("SCHEDULE",
                        {"schedule", "meeting-times", "times", "when",
                         "time-info"},
                        0.45,
                        {
                            Leaf("DAYS",
                                 {"days", "meeting-days", "day",
                                  "days-of-week", "weekdays"},
                                 ValueKind::kDays),
                            Leaf("START-TIME",
                                 {"start-time", "begins", "start", "from-time",
                                  "time-start"},
                                 ValueKind::kTime),
                            Leaf("END-TIME",
                                 {"end-time", "ends", "end", "to-time",
                                  "time-end"},
                                 ValueKind::kTime, 0.85),
                        }),
                  Group("ROOM-INFO",
                        {"room-info", "location", "where-held", "place",
                         "room-details"},
                        0.5,
                        {
                            Leaf("BUILDING",
                                 {"building", "bldg", "hall", "building-name",
                                  "facility"},
                                 ValueKind::kBuilding),
                            Leaf("ROOM-NUMBER",
                                 {"room", "room-number", "room-no", "rm",
                                  "room-num"},
                                 ValueKind::kRoomNumber),
                        }),
              }),
          Group("INSTRUCTOR-INFO",
                {"instructor", "instructor-info", "teacher", "professor-info",
                 "taught-by"},
                0.45,
                {
                    Leaf("INSTRUCTOR-NAME",
                         {"instructor-name", "name", "professor",
                          "teacher-name", "faculty-name"},
                         ValueKind::kPersonName),
                    Leaf("INSTRUCTOR-EMAIL",
                         {"email", "e-mail", "instructor-email",
                          "contact-email", "mail"},
                         ValueKind::kEmail, 0.7),
                    Leaf("INSTRUCTOR-OFFICE",
                         {"office", "office-room", "office-location",
                          "instructor-office", "office-no"},
                         ValueKind::kOfficeRoom, 0.6),
                }),
          Leaf("NOTES", {"notes", "comments", "remarks", "info", "misc"},
               ValueKind::kCourseNotes, 0.6),
      });
  spec.other_concepts = {
      {{"course-url", "url", "web-page", "link", "homepage"}, ValueKind::kUrl,
       0.4},
      {{"fee", "course-fee", "lab-fee", "extra-fee", "charges"},
       ValueKind::kMoneySmall, 0.3},
      {{"last-updated", "updated", "modified", "as-of", "refresh-date"},
       ValueKind::kDate, 0.4},
  };
  spec.synonym_groups = {
      {"course", "class", "offering"},
      {"credits", "units", "hours"},
      {"department", "dept", "division", "school"},
      {"section", "sect"},
      {"instructor", "teacher", "professor", "faculty"},
      {"room", "rm"},
      {"building", "bldg", "hall", "facility"},
      {"days", "day", "weekdays"},
      {"start", "begins", "from"},
      {"end", "ends", "to"},
      {"email", "mail"},
      {"enrollment", "enrolled", "students"},
      {"limit", "capacity", "seats"},
      {"term", "quarter", "semester", "session"},
      {"title", "name"},
      {"code", "number", "id"},
      {"schedule", "times", "when"},
      {"notes", "comments", "remarks", "info"},
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Faculty Listings: 14 tags, 4 non-leaf, depth 3.
// ---------------------------------------------------------------------------

DomainSpec FacultyListingsSpec() {
  DomainSpec spec;
  spec.name = "faculty-listings";
  spec.root = Group(
      "FACULTY-MEMBER",
      {"faculty-member", "professor", "faculty", "person", "staff-member"},
      0.0,
      {
          Group("NAME",
                {"name", "full-name", "faculty-name", "person-name", "who"},
                0.5,
                {
                    Leaf("FIRST-NAME",
                         {"first-name", "fname", "given-name", "first",
                          "firstname"},
                         ValueKind::kFirstName),
                    Leaf("LAST-NAME",
                         {"last-name", "lname", "surname", "last", "lastname"},
                         ValueKind::kLastName),
                }),
          Leaf("POSITION",
               {"position", "title", "rank", "job-title", "appointment"},
               ValueKind::kPosition),
          Leaf("RESEARCH-INTERESTS",
               {"research-interests", "interests", "research",
                "research-areas", "specialization"},
               ValueKind::kResearchInterests, 0.9),
          Leaf("BIO", {"bio", "biography", "about", "profile", "background"},
               ValueKind::kBio, 0.7),
          Group("EDUCATION",
                {"education", "degrees", "academic-background", "credentials",
                 "schooling"},
                0.5,
                {
                    Leaf("DEGREE",
                         {"degree", "highest-degree", "degree-type",
                          "qualification", "diploma"},
                         ValueKind::kDegree),
                    Leaf("UNIVERSITY",
                         {"university", "school", "alma-mater", "institution",
                          "college"},
                         ValueKind::kUniversity),
                }),
          Group("CONTACT",
                {"contact", "contact-info", "reach", "contact-details",
                 "coordinates"},
                0.5,
                {
                    Leaf("EMAIL",
                         {"email", "e-mail", "mail", "email-address",
                          "electronic-mail"},
                         ValueKind::kEmail),
                    Leaf("PHONE",
                         {"phone", "telephone", "phone-number", "office-phone",
                          "tel"},
                         ValueKind::kPhone, 0.85),
                    Leaf("OFFICE-ROOM",
                         {"office", "office-room", "room", "office-location",
                          "office-number"},
                         ValueKind::kOfficeRoom, 0.8),
                }),
      });
  spec.other_concepts = {
      {{"homepage", "web-page", "url", "website", "home-page"},
       ValueKind::kUrl, 0.5},
      {{"last-updated", "updated", "modified", "as-of", "page-date"},
       ValueKind::kDate, 0.3},
      {{"person-id", "id", "employee-id", "record-no", "uid"},
       ValueKind::kAdId, 0.3},
  };
  spec.synonym_groups = {
      {"name", "who"},
      {"first", "fname", "given"},
      {"last", "lname", "surname"},
      {"position", "title", "rank", "appointment"},
      {"research", "interests", "specialization"},
      {"bio", "biography", "about", "profile", "background"},
      {"education", "degrees", "credentials", "schooling"},
      {"university", "school", "institution", "college"},
      {"email", "mail"},
      {"phone", "telephone", "tel"},
      {"office", "room"},
      {"faculty", "professor", "person", "staff"},
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Real Estate II: 66 tags, 13 non-leaf, depth 4.
// ---------------------------------------------------------------------------

DomainSpec RealEstate2Spec() {
  DomainSpec spec;
  spec.name = "real-estate-2";
  spec.root = Group(
      "LISTING",
      {"listing", "house-listing", "property-listing", "home",
       "real-estate-listing"},
      0.0,
      {
          Group("GENERAL-INFO",
                {"general-info", "listing-info", "general", "basic-info",
                 "overview"},
                0.35,
                {
                    Leaf("MLS-NUMBER",
                         {"mls", "mls-number", "mls-id", "listing-number",
                          "listing-id"},
                         ValueKind::kMlsNumber),
                    Leaf("LISTING-DATE",
                         {"listing-date", "date-listed", "listed-on",
                          "entry-date", "posted"},
                         ValueKind::kDate, 0.8),
                    Leaf("LISTING-TYPE",
                         {"type", "listing-type", "property-type", "home-type",
                          "category"},
                         ValueKind::kListingType),
                    Leaf("STATUS",
                         {"status", "listing-status", "sale-status",
                          "availability", "stage"},
                         ValueKind::kListingStatus, 0.8),
                    Leaf("PRICE",
                         {"price", "listed-price", "asking-price",
                          "list-price", "cost"},
                         ValueKind::kPrice),
                    Leaf("TAX-AMOUNT",
                         {"taxes", "tax", "annual-tax", "property-tax",
                          "tax-amount"},
                         ValueKind::kMoneySmall, 0.7),
                    Leaf("HOA-FEE",
                         {"hoa", "hoa-fee", "association-fee", "hoa-dues",
                          "monthly-hoa"},
                         ValueKind::kMoneySmall, 0.6),
                }),
          Group("LOCATION",
                {"location-info", "where", "locale", "location-details",
                 "place-info"},
                0.3,
                {
                    Leaf("STREET-ADDRESS",
                         {"address", "location", "house-addr",
                          "street-address", "street"},
                         ValueKind::kStreetAddress),
                    Leaf("CITY",
                         {"city", "town", "municipality", "city-name",
                          "locality"},
                         ValueKind::kCity),
                    Leaf("STATE",
                         {"state", "st", "state-code", "province", "region"},
                         ValueKind::kState),
                    Leaf("ZIP",
                         {"zip", "zipcode", "postal-code", "zip-code",
                          "postal"},
                         ValueKind::kZip),
                    Leaf("COUNTY",
                         {"county", "county-name", "cnty", "parish",
                          "jurisdiction"},
                         ValueKind::kCounty, 0.7),
                    Leaf("NEIGHBORHOOD",
                         {"neighborhood", "area-name", "community",
                          "subdivision", "development"},
                         ValueKind::kNeighborhood, 0.7),
                    Leaf("SCHOOL-DISTRICT",
                         {"school-district", "schools", "school-dist",
                          "district-schools", "school-info"},
                         ValueKind::kSchoolDistrict, 0.6),
                }),
          Group(
              "HOUSE-INFO",
              {"house-info", "property-details", "home-info", "details",
               "property-info"},
              0.25,
              {
                  Group("BASIC-FEATURES",
                        {"basic-features", "features", "main-features",
                         "basics", "key-facts"},
                        0.4,
                        {
                            Leaf("NUM-BEDROOMS",
                                 {"bedrooms", "num-beds", "beds", "br",
                                  "bed-rooms"},
                                 ValueKind::kBedrooms),
                            Leaf("NUM-BATHROOMS",
                                 {"bathrooms", "num-baths", "baths", "ba",
                                  "bath-rooms"},
                                 ValueKind::kBathrooms),
                            Leaf("HALF-BATHS",
                                 {"half-baths", "half-bathrooms",
                                  "powder-rooms", "partial-baths", "half-ba"},
                                 ValueKind::kHalfBaths, 0.7),
                            Leaf("SQUARE-FEET",
                                 {"sqft", "square-feet", "living-area",
                                  "sq-ft", "floor-space"},
                                 ValueKind::kSquareFeet),
                            Leaf("LOT-SIZE",
                                 {"lot-size", "lot", "lot-area", "land-size",
                                  "parcel-size"},
                                 ValueKind::kLotSize, 0.8),
                            Leaf("YEAR-BUILT",
                                 {"year-built", "built", "yr-built",
                                  "construction-year", "vintage"},
                                 ValueKind::kYearBuilt, 0.8),
                            Leaf("STORIES",
                                 {"stories", "levels", "floors", "num-stories",
                                  "story-count"},
                                 ValueKind::kStories, 0.7),
                            Leaf("STYLE",
                                 {"style", "house-style", "architecture",
                                  "home-style", "design"},
                                 ValueKind::kHouseStyle, 0.8),
                        }),
                  Group("INTERIOR",
                        {"interior", "interior-features", "inside",
                         "interior-details", "indoor-features"},
                        0.4,
                        {
                            Leaf("FLOORING",
                                 {"flooring", "floors-type", "floor-covering",
                                  "floor-material", "floor-finish"},
                                 ValueKind::kFlooring),
                            Leaf("HEATING",
                                 {"heating", "heat", "heating-type",
                                  "heat-system", "heating-fuel"},
                                 ValueKind::kHeating),
                            Leaf("COOLING",
                                 {"cooling", "ac", "air-conditioning",
                                  "cooling-type", "climate-control"},
                                 ValueKind::kCooling, 0.8),
                            Leaf("FIREPLACE",
                                 {"fireplace", "fire-place", "has-fireplace",
                                  "fireplaces", "hearth"},
                                 ValueKind::kYesNo, 0.8),
                            Leaf("BASEMENT",
                                 {"basement", "has-basement", "lower-level",
                                  "cellar", "bsmt"},
                                 ValueKind::kYesNo, 0.8),
                            Leaf("APPLIANCES",
                                 {"appliances", "included-appliances",
                                  "kitchen-appliances", "appliances-included",
                                  "equipment"},
                                 ValueKind::kAppliances, 0.8),
                        }),
                  Group("EXTERIOR",
                        {"exterior", "exterior-features", "outside",
                         "exterior-details", "outdoor-features"},
                        0.4,
                        {
                            Leaf("ROOF",
                                 {"roof", "roofing", "roof-type",
                                  "roof-material", "roof-cover"},
                                 ValueKind::kRoof, 0.8),
                            Leaf("SIDING",
                                 {"siding", "exterior-finish", "cladding",
                                  "facade", "exterior-material"},
                                 ValueKind::kSiding, 0.8),
                            Leaf("GARAGE",
                                 {"garage", "garage-type", "garage-spaces",
                                  "car-storage", "garage-info"},
                                 ValueKind::kGarage),
                            Leaf("POOL",
                                 {"pool", "swimming-pool", "has-pool",
                                  "pool-spa", "spa"},
                                 ValueKind::kYesNo, 0.8),
                            Leaf("WATERFRONT",
                                 {"waterfront", "water-front", "on-water",
                                  "waterview", "water-access"},
                                 ValueKind::kYesNo, 0.7),
                            Leaf("VIEW",
                                 {"view", "views", "vista", "outlook",
                                  "scenery"},
                                 ValueKind::kView, 0.7),
                            Leaf("PARKING",
                                 {"parking", "parking-type", "park",
                                  "parking-info", "parking-spaces"},
                                 ValueKind::kParking, 0.7),
                        }),
              }),
          Leaf("DESCRIPTION",
               {"description", "comments", "extra-info", "detailed-desc",
                "listing-text"},
               ValueKind::kDescription),
          Leaf("REMARKS",
               {"remarks", "agent-remarks", "private-remarks", "broker-notes",
                "seller-notes"},
               ValueKind::kRemarks, 0.7),
          Leaf("VIRTUAL-TOUR",
               {"virtual-tour", "tour", "video-tour", "tour-link", "3d-tour"},
               ValueKind::kUrl, 0.5),
          Group("CONTACT-INFO",
                {"contact", "contact-info", "agent-contact", "contact-details",
                 "how-to-reach"},
                0.3,
                {
                    Group("AGENT-INFO",
                          {"agent-info", "agent", "listing-agent-info",
                           "realtor-info", "agent-details"},
                          0.4,
                          {
                              Leaf("AGENT-NAME",
                                   {"agent-name", "name", "realtor",
                                    "listing-agent", "salesperson"},
                                   ValueKind::kPersonName),
                              Leaf("AGENT-PHONE",
                                   {"phone", "contact-phone", "agent-phone",
                                    "work-phone", "telephone"},
                                   ValueKind::kPhone),
                              Leaf("AGENT-EMAIL",
                                   {"agent-email", "email", "e-mail",
                                    "agent-mail", "contact-email"},
                                   ValueKind::kEmail, 0.8),
                          }),
                    Group("OFFICE-INFO",
                          {"office", "office-info", "brokerage", "firm-info",
                           "broker"},
                          0.4,
                          {
                              Correlated("OFFICE-NAME",
                                         {"office-name", "firm", "firm-name",
                                          "brokerage-name", "company"},
                                         "office", 0),
                              Correlated("OFFICE-PHONE",
                                         {"office-phone", "firm-phone",
                                          "main-phone", "office-tel",
                                          "broker-phone"},
                                         "office", 1),
                              Correlated("OFFICE-ADDRESS",
                                         {"office-address", "firm-address",
                                          "office-location", "broker-address",
                                          "company-address"},
                                         "office", 2, 0.8),
                          }),
                }),
          Group("OPEN-HOUSE",
                {"open-house", "openhouse", "oh-info", "open-house-info",
                 "showing"},
                0.4,
                {
                    Leaf("OH-DATE",
                         {"oh-date", "open-date", "show-date", "when-open",
                          "open-on"},
                         ValueKind::kDate),
                    Leaf("OH-START",
                         {"oh-start", "open-from", "start-time", "begins",
                          "from"},
                         ValueKind::kTime),
                    Leaf("OH-END",
                         {"oh-end", "open-until", "end-time", "ends", "until"},
                         ValueKind::kTime, 0.8),
                },
                0.7),
          Group("UTILITIES",
                {"utilities", "utility-info", "services", "utils",
                 "connections"},
                0.4,
                {
                    Leaf("WATER",
                         {"water", "water-service", "water-source",
                          "water-supply", "water-co"},
                         ValueKind::kWaterService),
                    Leaf("SEWER",
                         {"sewer", "sewer-service", "septic-sewer", "waste",
                          "sewage"},
                         ValueKind::kSewerService),
                    Leaf("ELECTRIC",
                         {"electric", "electricity", "power",
                          "electric-service", "power-company"},
                         ValueKind::kElectricService, 0.8),
                },
                0.7),
          Group("FINANCIAL",
                {"financial", "financing", "financial-info", "money-info",
                 "terms"},
                0.4,
                {
                    Leaf("DOWN-PAYMENT",
                         {"down-payment", "down", "downpayment", "min-down",
                          "deposit"},
                         ValueKind::kMoneySmall),
                    Leaf("MORTGAGE-RATE",
                         {"rate", "mortgage-rate", "interest-rate", "apr",
                          "loan-rate"},
                         ValueKind::kRate),
                    Leaf("MONTHLY-PAYMENT",
                         {"monthly-payment", "payment", "est-payment",
                          "monthly", "per-month"},
                         ValueKind::kMoneySmall, 0.8),
                },
                0.6),
      });
  spec.other_concepts = {
      {{"ad-id", "listing-ref", "ad-number", "ref-no", "internal-id"},
       ValueKind::kAdId, 0.4},
      {{"page-views", "hits", "views-count", "times-viewed", "popularity"},
       ValueKind::kPageViews, 0.3},
      {{"more-info", "details-url", "link", "full-listing", "listing-url"},
       ValueKind::kUrl, 0.3},
      {{"date-crawled", "fetched-on", "snapshot-date", "crawl-date",
        "retrieved"},
       ValueKind::kDate, 0.3},
  };
  // Reuse Real Estate I's word-level synonyms plus RE-II specific groups.
  spec.synonym_groups = RealEstate1Spec().synonym_groups;
  spec.synonym_groups.push_back({"mls", "listing", "id", "number"});
  spec.synonym_groups.push_back({"taxes", "tax"});
  spec.synonym_groups.push_back({"hoa", "association", "dues"});
  spec.synonym_groups.push_back({"neighborhood", "community", "subdivision"});
  spec.synonym_groups.push_back({"heating", "heat"});
  spec.synonym_groups.push_back({"cooling", "ac", "air"});
  spec.synonym_groups.push_back({"garage", "parking", "car"});
  spec.synonym_groups.push_back({"roof", "roofing"});
  spec.synonym_groups.push_back({"water", "sewer", "septic"});
  spec.synonym_groups.push_back({"rate", "apr", "interest"});
  spec.synonym_groups.push_back({"payment", "monthly"});
  spec.synonym_groups.push_back({"open", "showing", "tour"});
  return spec;
}

}  // namespace

const std::vector<std::string>& EvaluationDomainNames() {
  static const auto* const kNames = new std::vector<std::string>{
      "real-estate-1", "time-schedule", "faculty-listings", "real-estate-2"};
  return *kNames;
}

StatusOr<DomainSpec> GetDomainSpec(const std::string& name) {
  if (name == "real-estate-1") return RealEstate1Spec();
  if (name == "time-schedule") return TimeScheduleSpec();
  if (name == "faculty-listings") return FacultyListingsSpec();
  if (name == "real-estate-2") return RealEstate2Spec();
  return Status::NotFound("unknown evaluation domain: " + name);
}

std::vector<std::unique_ptr<Constraint>> MakeDomainConstraints(
    const Domain& domain) {
  std::vector<std::unique_ptr<Constraint>> out;
  // 1-1 mappings: every mediated tag is matched by at most one source tag.
  for (const std::string& label : domain.mediated.AllTags()) {
    out.push_back(std::make_unique<FrequencyConstraint>(label, 0, 1));
  }
  // The root concept is always present: exactly one source tag matches it.
  out.push_back(std::make_unique<FrequencyConstraint>(
      domain.mediated.root_name(), 1, 1));
  // Always-present anchors per domain.
  if (domain.name == "real-estate-1" || domain.name == "real-estate-2") {
    out.push_back(std::make_unique<FrequencyConstraint>("PRICE", 1, 1));
    out.push_back(std::make_unique<ContiguityConstraint>("NUM-BEDROOMS",
                                                         "NUM-BATHROOMS"));
    out.push_back(std::make_unique<NestingConstraint>(
        "CONTACT-INFO", "PRICE", /*required=*/false));
  }
  if (domain.name == "time-schedule") {
    out.push_back(std::make_unique<FrequencyConstraint>("COURSE-CODE", 1, 1));
  }
  if (domain.name == "faculty-listings") {
    out.push_back(std::make_unique<FrequencyConstraint>("LAST-NAME", 1, 1));
  }
  // All applicable nesting constraints, derived from the mediated schema:
  // each mediated parent/child pair must nest when both are matched.
  for (const std::string& parent : domain.mediated.NonLeafTags()) {
    for (const std::string& child : domain.mediated.ChildTags(parent)) {
      out.push_back(std::make_unique<NestingConstraint>(parent, child,
                                                        /*required=*/true));
    }
  }
  // Column constraints.
  if (domain.name == "real-estate-2") {
    out.push_back(std::make_unique<KeyConstraint>("MLS-NUMBER"));
    out.push_back(std::make_unique<FunctionalDependencyConstraint>(
        "OFFICE-NAME", "OFFICE-NAME", "OFFICE-PHONE"));
    out.push_back(std::make_unique<ProximitySoftConstraint>(
        "AGENT-NAME", "AGENT-PHONE", 0.02));
  }
  if (domain.name == "real-estate-1") {
    out.push_back(std::make_unique<FunctionalDependencyConstraint>(
        "OFFICE-NAME", "OFFICE-NAME", "OFFICE-PHONE"));
  }
  return out;
}

StatusOr<Domain> MakeEvaluationDomain(const std::string& name,
                                      size_t num_sources, size_t num_listings,
                                      uint64_t seed) {
  LSD_ASSIGN_OR_RETURN(DomainSpec spec, GetDomainSpec(name));
  return RealizeDomain(spec, num_sources, num_listings, seed);
}

}  // namespace lsd
