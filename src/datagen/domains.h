#ifndef LSD_DATAGEN_DOMAINS_H_
#define LSD_DATAGEN_DOMAINS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "constraints/constraint.h"
#include "datagen/domain_spec.h"

namespace lsd {

/// Names of the four evaluation domains of Table 3, in paper order:
/// "real-estate-1", "time-schedule", "faculty-listings", "real-estate-2".
const std::vector<std::string>& EvaluationDomainNames();

/// Returns the specification of one evaluation domain.
///   real-estate-1    — 20 mediated tags, 4 non-leaf, depth 3;
///   time-schedule    — 23 tags, 6 non-leaf, depth 4;
///   faculty-listings — 14 tags, 4 non-leaf, depth 3;
///   real-estate-2    — 66 tags, 13 non-leaf, depth 4.
StatusOr<DomainSpec> GetDomainSpec(const std::string& name);

/// The domain's standing hard (and a few soft) constraints, as Section 6
/// prescribes: at-most-one frequency constraints for every mediated tag,
/// exactly-one constraints for always-present anchors, all applicable
/// nesting constraints (derived from the mediated schema), a contiguity
/// constraint per real-estate domain, and column (key/FD) constraints
/// where the data supports them.
std::vector<std::unique_ptr<Constraint>> MakeDomainConstraints(
    const Domain& domain);

/// Convenience: GetDomainSpec + RealizeDomain.
StatusOr<Domain> MakeEvaluationDomain(const std::string& name,
                                      size_t num_sources, size_t num_listings,
                                      uint64_t seed);

}  // namespace lsd

#endif  // LSD_DATAGEN_DOMAINS_H_
