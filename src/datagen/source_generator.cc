#include "datagen/domain_spec.h"

#include <map>
#include <set>

#include "common/logging.h"
#include "common/rng.h"

namespace lsd {
namespace {

/// A spec_node tree after per-source structural decisions: which concepts
/// are present, which non-leaves were flattened, and the concrete source
/// tag names.
struct ResolvedNode {
  std::string tag;
  std::string label;  // mediated label, or "OTHER"
  ValueKind kind = ValueKind::kYesNo;
  std::string correlation_group;
  int correlation_field = 0;
  std::vector<ResolvedNode> children;

  bool IsLeaf() const { return children.empty(); }
};

void AddConceptToDtd(const ConceptSpec& spec_node, Dtd* dtd) {
  ElementDecl decl;
  decl.name = spec_node.label;
  if (spec_node.IsLeaf()) {
    decl.content = ContentParticle::Pcdata();
  } else {
    std::vector<ContentParticle> parts;
    for (const ConceptSpec& child : spec_node.children) {
      Occurrence occ = child.presence_prob < 1.0 ? Occurrence::kOptional
                                                 : Occurrence::kOne;
      parts.push_back(ContentParticle::Element(child.label, occ));
    }
    decl.content = ContentParticle::Sequence(std::move(parts));
  }
  LSD_CHECK_OK(dtd->AddElement(std::move(decl)));
  for (const ConceptSpec& child : spec_node.children) {
    AddConceptToDtd(child, dtd);
  }
}

/// Vacuous tag names the generator occasionally uses instead of a
/// descriptive one (see DomainSpec::vague_name_prob).
const std::vector<std::string>& VagueNames() {
  static const auto* const kVague = new std::vector<std::string>{
      "item", "field", "info", "data", "value", "misc", "entry", "attr",
      "detail", "extra"};
  return *kVague;
}

/// Picks a tag name for `spec_node` in source `source_index`, avoiding names
/// already used in this source.
std::string PickTagName(const std::vector<std::string>& pool, int source_index,
                        std::set<std::string>* used) {
  LSD_CHECK(!pool.empty());
  for (size_t offset = 0; offset < pool.size(); ++offset) {
    const std::string& candidate =
        pool[(static_cast<size_t>(source_index) + offset) % pool.size()];
    if (used->insert(candidate).second) return candidate;
  }
  // Every pool name taken: disambiguate with a numeric suffix.
  for (int i = 2;; ++i) {
    std::string candidate = pool[0] + "-" + std::to_string(i);
    if (used->insert(candidate).second) return candidate;
  }
}

// Resolves `spec_node`'s subtree for one source. Children of flattened
// non-leaves are promoted into `out_children`.
void ResolveConcept(const ConceptSpec& spec_node, int source_index,
                    double vague_name_prob, Rng* rng,
                    std::set<std::string>* used,
                    std::vector<ResolvedNode>* out_children) {
  if (!rng->Bernoulli(spec_node.presence_prob)) return;
  bool flatten = !spec_node.IsLeaf() && rng->Bernoulli(spec_node.flatten_prob);
  if (flatten) {
    for (const ConceptSpec& child : spec_node.children) {
      ResolveConcept(child, source_index, vague_name_prob, rng, used,
                     out_children);
    }
    return;
  }
  ResolvedNode node;
  // Some sources use vacuous names ("item", "field") that carry no signal
  // for the name matcher; the concept is then learnable only from data.
  node.tag = rng->Bernoulli(vague_name_prob)
                 ? PickTagName(VagueNames(), source_index, used)
                 : PickTagName(spec_node.source_names, source_index, used);
  node.label = spec_node.label;
  node.kind = spec_node.kind;
  node.correlation_group = spec_node.correlation_group;
  node.correlation_field = spec_node.correlation_field;
  for (const ConceptSpec& child : spec_node.children) {
    ResolveConcept(child, source_index, vague_name_prob, rng, used,
                   &node.children);
  }
  if (!spec_node.IsLeaf() && node.children.empty()) {
    // All children were dropped: a childless non-leaf would be an empty
    // element; drop it entirely.
    used->erase(node.tag);
    return;
  }
  out_children->push_back(std::move(node));
}

void BuildSourceDtd(const ResolvedNode& node, Dtd* dtd) {
  ElementDecl decl;
  decl.name = node.tag;
  if (node.IsLeaf()) {
    decl.content = ContentParticle::Pcdata();
  } else {
    std::vector<ContentParticle> parts;
    for (const ResolvedNode& child : node.children) {
      parts.push_back(ContentParticle::Element(child.tag));
    }
    decl.content = ContentParticle::Sequence(std::move(parts));
  }
  LSD_CHECK_OK(dtd->AddElement(std::move(decl)));
  for (const ResolvedNode& child : node.children) {
    BuildSourceDtd(child, dtd);
  }
}

void CollectGold(const ResolvedNode& node, Mapping* gold) {
  gold->Set(node.tag, node.label);
  for (const ResolvedNode& child : node.children) {
    CollectGold(child, gold);
  }
}

struct NoiseProfile {
  double dirty_prob = 0.0;
  /// Value kinds of this source's leaves; extraction noise samples from
  /// them.
  std::vector<ValueKind> leaf_kinds;
  double extraction_noise_prob = 0.0;
};

XmlNode GenerateListingNode(const ResolvedNode& node, int source_index,
                            int listing_index, const NoiseProfile& noise,
                            Rng* rng,
                            const std::map<std::string, size_t>& group_record) {
  XmlNode out(node.tag);
  if (node.IsLeaf()) {
    std::string value;
    // Correlated fields and key-like identifiers stay clean: dirtying them
    // would break the very FD/key constraints they are designed to satisfy.
    bool exempt_from_dirt = !node.correlation_group.empty() ||
                            node.kind == ValueKind::kMlsNumber ||
                            node.kind == ValueKind::kAdId;
    if (!node.correlation_group.empty()) {
      size_t count = 0;
      const OfficeRecord* offices = OfficeTable(&count);
      size_t record = group_record.at(node.correlation_group) % count;
      switch (node.correlation_field) {
        case 0:
          value = offices[record].name;
          break;
        case 1:
          value = offices[record].phone;
          break;
        default:
          value = offices[record].address;
          break;
      }
    } else {
      ValueKind kind = node.kind;
      // Wrapper extraction noise: occasionally the scraped value belongs
      // to a different field of the listing.
      if (!exempt_from_dirt && !noise.leaf_kinds.empty() &&
          rng->Bernoulli(noise.extraction_noise_prob)) {
        kind = rng->Pick(noise.leaf_kinds);
      }
      value = GenerateValue(kind, source_index, listing_index, rng);
    }
    out.text = exempt_from_dirt
                   ? std::move(value)
                   : MaybeDirty(std::move(value), noise.dirty_prob, rng);
    return out;
  }
  for (const ResolvedNode& child : node.children) {
    out.children.push_back(GenerateListingNode(
        child, source_index, listing_index, noise, rng, group_record));
  }
  return out;
}

void CollectLeafKinds(const ResolvedNode& node, std::vector<ValueKind>* out) {
  if (node.IsLeaf()) {
    if (node.correlation_group.empty() &&
        node.kind != ValueKind::kMlsNumber && node.kind != ValueKind::kAdId) {
      out->push_back(node.kind);
    }
    return;
  }
  for (const ResolvedNode& child : node.children) {
    CollectLeafKinds(child, out);
  }
}

void CollectGroups(const ResolvedNode& node, std::set<std::string>* groups) {
  if (!node.correlation_group.empty()) groups->insert(node.correlation_group);
  for (const ResolvedNode& child : node.children) {
    CollectGroups(child, groups);
  }
}

}  // namespace

Dtd BuildMediatedDtd(const DomainSpec& spec) {
  Dtd dtd;
  AddConceptToDtd(spec.root, &dtd);
  return dtd;
}

GeneratedSource GenerateSource(const DomainSpec& spec, int source_index,
                               size_t num_listings, uint64_t structure_seed,
                               uint64_t data_seed) {
  Rng rng(structure_seed);
  GeneratedSource out;
  out.source.name =
      spec.name + "-source-" + std::to_string(source_index) + ".example.com";

  // Resolve structure. The root is always present and never flattened.
  std::set<std::string> used;
  ResolvedNode root;
  root.tag = PickTagName(spec.root.source_names, source_index, &used);
  root.label = spec.root.label;
  for (const ConceptSpec& child : spec.root.children) {
    ResolveConcept(child, source_index, spec.vague_name_prob, &rng, &used,
                   &root.children);
  }
  // Unmatchable filler tags go to the end of the root's child list.
  for (const OtherConceptSpec& other : spec.other_concepts) {
    if (!rng.Bernoulli(other.presence_prob)) continue;
    ResolvedNode node;
    node.tag = PickTagName(other.source_names, source_index, &used);
    node.label = "OTHER";
    node.kind = other.kind;
    root.children.push_back(std::move(node));
  }

  BuildSourceDtd(root, &out.source.schema);
  CollectGold(root, &out.gold);

  std::set<std::string> groups;
  CollectGroups(root, &groups);

  // Data uses its own stream so experiments can re-sample listings while
  // keeping the source schema fixed.
  Rng data_rng(data_seed != 0 ? data_seed ^ structure_seed
                              : structure_seed + 0x5bd1e995);
  NoiseProfile noise;
  noise.dirty_prob = spec.dirty_prob;
  noise.extraction_noise_prob = spec.extraction_noise_prob;
  CollectLeafKinds(root, &noise.leaf_kinds);

  out.source.listings.reserve(num_listings);
  for (size_t i = 0; i < num_listings; ++i) {
    std::map<std::string, size_t> group_record;
    for (const std::string& group : groups) {
      group_record[group] = static_cast<size_t>(data_rng.UniformInt(0, 1 << 20));
    }
    out.source.listings.emplace_back(
        GenerateListingNode(root, source_index, static_cast<int>(i), noise,
                            &data_rng, group_record));
  }
  return out;
}

Domain RealizeDomain(const DomainSpec& spec, size_t num_sources,
                     size_t num_listings, uint64_t seed, uint64_t data_seed) {
  Domain domain;
  domain.name = spec.name;
  domain.mediated = BuildMediatedDtd(spec);
  for (const auto& group : spec.synonym_groups) {
    domain.synonyms.AddGroup(group);
  }
  Rng master(seed);
  Rng data_master(data_seed != 0 ? data_seed : seed + 0x9e3779b9);
  for (size_t s = 0; s < num_sources; ++s) {
    domain.sources.push_back(GenerateSource(spec, static_cast<int>(s),
                                            num_listings, master.Next(),
                                            data_master.Next()));
  }
  return domain;
}

}  // namespace lsd
