#include "core/run_report.h"

namespace lsd {

bool RunReport::IsQuarantined(const std::string& learner) const {
  for (const LearnerIncident& incident : incidents) {
    if (incident.learner == learner) return true;
  }
  return false;
}

void RunReport::Quarantine(const std::string& learner, const std::string& stage,
                           const Status& status) {
  for (const LearnerIncident& incident : incidents) {
    if (incident.learner == learner && incident.stage == stage) return;
  }
  LearnerIncident incident;
  incident.learner = learner;
  incident.stage = stage;
  incident.error = status.ToString();
  incidents.push_back(std::move(incident));
}

std::string RunReport::ToString() const {
  if (!degraded()) return "run report: clean\n";
  std::string out = "run report: degraded\n";
  for (const LearnerIncident& incident : incidents) {
    out += "  quarantined [" + incident.stage + "] " + incident.learner + ": " +
           incident.error + "\n";
  }
  for (const std::string& note : notes) {
    out += "  note: " + note + "\n";
  }
  if (deadline_hit) out += "  deadline: expired (anytime fallback used)\n";
  return out;
}

}  // namespace lsd
