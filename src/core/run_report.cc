#include "core/run_report.h"

namespace lsd {

bool RunReport::IsQuarantined(const std::string& learner) const {
  for (const LearnerIncident& incident : incidents) {
    if (incident.learner == learner) return true;
  }
  return false;
}

void RunReport::Quarantine(const std::string& learner, const std::string& stage,
                           const Status& status) {
  for (const LearnerIncident& incident : incidents) {
    if (incident.learner == learner && incident.stage == stage) return;
  }
  LearnerIncident incident;
  incident.learner = learner;
  incident.stage = stage;
  incident.error = status.ToString();
  incidents.push_back(std::move(incident));
  // Deduped above, so this counts quarantined (learner, stage) pairs, not
  // raw failures; `stage` is "train" or "predict".
  MetricsRegistry::Global().GetCounter("quarantine." + stage)->Increment();
}

std::string RunReport::ToString() const {
  if (!degraded()) return "run report: clean\n";
  std::string out = "run report: degraded\n";
  for (const LearnerIncident& incident : incidents) {
    out += "  quarantined [" + incident.stage + "] " + incident.learner + ": " +
           incident.error + "\n";
  }
  for (const std::string& note : notes) {
    out += "  note: " + note + "\n";
  }
  if (deadline_hit) out += "  deadline: expired (anytime fallback used)\n";
  if (astar_truncated) {
    out += "  search: expansion budget exhausted (greedy completion used)\n";
  }
  if (!metrics.empty()) {
    out += "  metrics: " + std::to_string(metrics.counters.size()) +
           " counters, " + std::to_string(metrics.gauges.size()) +
           " gauges, " + std::to_string(metrics.histograms.size()) +
           " histograms (see --metrics-out)\n";
  }
  return out;
}

}  // namespace lsd
