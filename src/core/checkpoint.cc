#include "core/checkpoint.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/artifact_io.h"
#include "common/metrics.h"
#include "common/serial.h"
#include "common/strings.h"

namespace lsd {
namespace {

constexpr const char* kManifestKind = "checkpoint-manifest";
constexpr const char* kFoldKind = "checkpoint-fold";
constexpr const char* kLearnerKind = "checkpoint-learner";

std::string FoldKey(const std::string& learner, size_t fold) {
  return StrFormat("fold/%s/%zu", learner.c_str(), fold);
}

std::string LearnerKey(const std::string& name) { return "learner/" + name; }

void AppendPrediction(const Prediction& prediction, std::string* out) {
  out->append(StrFormat("p %zu", prediction.size()));
  for (double score : prediction.scores) {
    out->append(StrFormat(" %.17g", score));
  }
  out->push_back('\n');
}

StatusOr<Prediction> ReadPrediction(const std::vector<std::string>& fields,
                                    size_t offset) {
  LSD_ASSIGN_OR_RETURN(size_t n_scores, FieldToSize(fields[offset]));
  if (fields.size() != offset + 1 + n_scores) {
    return Status::ParseError("checkpoint: prediction field count mismatch");
  }
  Prediction prediction(n_scores);
  for (size_t c = 0; c < n_scores; ++c) {
    LSD_ASSIGN_OR_RETURN(prediction.scores[c],
                         FieldToDouble(fields[offset + 1 + c]));
  }
  return prediction;
}

StatusOr<FoldPredictions> ParseFoldPayload(std::string_view payload) {
  LineReader reader(payload);
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       reader.Expect("fold", 3));
  if (header[1] != "1") {
    return Status::FailedPrecondition("checkpoint-fold: unknown version");
  }
  LSD_ASSIGN_OR_RETURN(size_t n, FieldToSize(header[2]));
  FoldPredictions out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         reader.Expect("p", 3));
    LSD_ASSIGN_OR_RETURN(size_t index, FieldToSize(fields[1]));
    LSD_ASSIGN_OR_RETURN(Prediction prediction, ReadPrediction(fields, 2));
    out.emplace_back(index, std::move(prediction));
  }
  LSD_RETURN_IF_ERROR(ExpectAtEnd(reader, "checkpoint-fold"));
  return out;
}

StatusOr<std::vector<Prediction>> ParseCvPayload(std::string_view payload) {
  LineReader reader(payload);
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       reader.Expect("cv", 3));
  if (header[1] != "1") {
    return Status::FailedPrecondition("checkpoint-cv: unknown version");
  }
  LSD_ASSIGN_OR_RETURN(size_t n, FieldToSize(header[2]));
  std::vector<Prediction> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         reader.Expect("p", 2));
    LSD_ASSIGN_OR_RETURN(Prediction prediction, ReadPrediction(fields, 1));
    out.push_back(std::move(prediction));
  }
  LSD_RETURN_IF_ERROR(ExpectAtEnd(reader, "checkpoint-cv"));
  return out;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir) : dir_(std::move(dir)) {}

std::string CheckpointManager::ManifestPath() const {
  return dir_ + "/manifest.lsdckpt";
}

std::string CheckpointManager::FoldPath(const std::string& learner,
                                        size_t fold) const {
  return StrFormat("%s/fold-%s-%zu.lsdckpt", dir_.c_str(), learner.c_str(),
                   fold);
}

std::string CheckpointManager::LearnerPath(const std::string& name) const {
  return StrFormat("%s/learner-%s.lsdckpt", dir_.c_str(), name.c_str());
}

Status CheckpointManager::Open(uint64_t fingerprint, bool resume) {
  std::lock_guard<std::mutex> lock(mutex_);
  fingerprint_ = fingerprint;
  done_.clear();
  save_failures_ = 0;
  restored_ = 0;
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::Internal("checkpoint: cannot create directory '" + dir_ +
                            "': " + std::strerror(errno));
  }
  if (resume) {
    // Adopt a prior run's progress only when its manifest validates and
    // fingerprints the same problem; anything else (missing file, damage,
    // different sources/seed/roster) silently starts fresh — resuming is
    // an optimization, never a correctness dependency.
    StatusOr<Artifact> manifest = ReadArtifact(ManifestPath(), kManifestKind);
    if (manifest.ok()) {
      const ArtifactSection* section = manifest->Find("manifest");
      if (section != nullptr) {
        LineReader reader(section->payload);
        StatusOr<std::vector<std::string>> header = reader.Expect("ckpt", 3);
        if (header.ok() && (*header)[1] == "1" &&
            (*header)[2] == StrFormat("%016llx",
                                      static_cast<unsigned long long>(
                                          fingerprint))) {
          std::set<std::string> adopted;
          bool clean = true;
          while (!reader.AtEnd()) {
            StatusOr<std::vector<std::string>> line = reader.Next();
            if (!line.ok()) break;  // trailing blank lines
            if ((*line)[0] != "done" || line->size() != 2) {
              clean = false;
              break;
            }
            adopted.insert((*line)[1]);
          }
          if (clean) done_ = std::move(adopted);
        }
      }
    }
  }
  // Persist the (possibly empty) adopted state so the manifest on disk
  // always fingerprints the run in progress.
  return WriteManifestLocked();
}

Status CheckpointManager::WriteManifestLocked() {
  std::string payload = StrFormat(
      "ckpt 1 %016llx\n", static_cast<unsigned long long>(fingerprint_));
  for (const std::string& key : done_) {
    payload += "done " + key + "\n";
  }
  Artifact artifact;
  artifact.kind = kManifestKind;
  artifact.sections.push_back({"manifest", std::move(payload)});
  return WriteArtifact(ManifestPath(), artifact);
}

bool CheckpointManager::IsDone(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_.count(key) > 0;
}

void CheckpointManager::MarkDone(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  done_.insert(key);
  Status written = WriteManifestLocked();
  if (!written.ok()) {
    ++save_failures_;
    MetricsRegistry::Global().GetCounter("checkpoint.save_failures")
        ->Increment();
  }
}

bool CheckpointManager::LoadFold(const std::string& learner, size_t fold,
                                 FoldPredictions* out) const {
  if (!IsDone(FoldKey(learner, fold))) return false;
  StatusOr<Artifact> artifact =
      ReadArtifact(FoldPath(learner, fold), kFoldKind);
  if (!artifact.ok()) return false;
  const ArtifactSection* section = artifact->Find("predictions");
  if (section == nullptr) return false;
  StatusOr<FoldPredictions> parsed = ParseFoldPayload(section->payload);
  if (!parsed.ok()) return false;
  *out = std::move(parsed).value();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++restored_;
  }
  return true;
}

void CheckpointManager::SaveFold(const std::string& learner, size_t fold,
                                 const FoldPredictions& preds) {
  std::string payload = StrFormat("fold 1 %zu\n", preds.size());
  for (const auto& [index, prediction] : preds) {
    payload += StrFormat("p %zu %zu", index, prediction.size());
    for (double score : prediction.scores) {
      payload += StrFormat(" %.17g", score);
    }
    payload.push_back('\n');
  }
  Artifact artifact;
  artifact.kind = kFoldKind;
  artifact.sections.push_back({"predictions", std::move(payload)});
  Status written = WriteArtifact(FoldPath(learner, fold), artifact);
  if (!written.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++save_failures_;
    MetricsRegistry::Global().GetCounter("checkpoint.save_failures")
        ->Increment();
    return;  // no manifest entry: a fold that didn't persist is not done
  }
  MarkDone(FoldKey(learner, fold));
}

bool CheckpointManager::LoadLearner(
    const std::string& name, std::string* model,
    std::vector<Prediction>* cv_predictions) const {
  if (!IsDone(LearnerKey(name))) return false;
  StatusOr<Artifact> artifact = ReadArtifact(LearnerPath(name), kLearnerKind);
  if (!artifact.ok()) return false;
  const ArtifactSection* model_section = artifact->Find("model");
  const ArtifactSection* cv_section = artifact->Find("cv");
  if (model_section == nullptr || cv_section == nullptr) return false;
  StatusOr<std::vector<Prediction>> parsed =
      ParseCvPayload(cv_section->payload);
  if (!parsed.ok()) return false;
  *model = model_section->payload;
  *cv_predictions = std::move(parsed).value();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++restored_;
  }
  return true;
}

void CheckpointManager::SaveLearner(
    const std::string& name, const std::string& model,
    const std::vector<Prediction>& cv_predictions) {
  std::string cv_payload = StrFormat("cv 1 %zu\n", cv_predictions.size());
  for (const Prediction& prediction : cv_predictions) {
    AppendPrediction(prediction, &cv_payload);
  }
  Artifact artifact;
  artifact.kind = kLearnerKind;
  artifact.sections.push_back({"model", model});
  artifact.sections.push_back({"cv", std::move(cv_payload)});
  Status written = WriteArtifact(LearnerPath(name), artifact);
  if (!written.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++save_failures_;
    MetricsRegistry::Global().GetCounter("checkpoint.save_failures")
        ->Increment();
    return;
  }
  MarkDone(LearnerKey(name));
}

size_t CheckpointManager::save_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return save_failures_;
}

size_t CheckpointManager::restored() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return restored_;
}

}  // namespace lsd
