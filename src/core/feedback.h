#ifndef LSD_CORE_FEEDBACK_H_
#define LSD_CORE_FEEDBACK_H_

#include <vector>

#include "common/status.h"
#include "core/lsd_system.h"

namespace lsd {

/// Result of a feedback-to-perfection run (the Section 6.3 experiment).
struct FeedbackStats {
  /// Correct labels the user had to provide before the mapping was perfect.
  size_t corrections = 0;
  /// Constraint-handler re-runs performed.
  size_t iterations = 0;
  /// Tags in the source schema.
  size_t tags_total = 0;
  bool reached_perfect = false;
};

/// Interactive feedback loop over one target source (Sections 4.3, 6.3).
/// Learner predictions are computed once; each round of feedback only
/// re-runs the constraint handler, matching the paper's interaction model.
/// Tags are reviewed in decreasing structure-score order — the number of
/// distinct tags nestable below a tag — which is also the A* refinement
/// order (Section 6.3, footnote 1).
class FeedbackSession {
 public:
  /// Both referents must outlive the session; `system` must be trained.
  FeedbackSession(LsdSystem* system, const DataSource* source)
      : system_(system), source_(source) {}

  /// Runs the learners over the source. Must be called before the other
  /// methods.
  Status Initialize();

  /// Computes the mapping under the feedback accumulated so far.
  StatusOr<MatchResult> CurrentMapping(
      const MatchOptions& options = MatchOptions());

  /// Records one user feedback statement for this source.
  void AddFeedback(FeedbackConstraint feedback);
  const std::vector<FeedbackConstraint>& feedback() const { return feedback_; }

  /// The tag review order (decreasing structure score).
  std::vector<std::string> ReviewOrder() const;

  /// Simulates the Section 6.3 protocol with `gold` as the oracle user:
  /// repeatedly present tags in review order, correct the first wrong
  /// label, and re-run the constraint handler, until the mapping is
  /// perfect or `max_corrections` is reached.
  StatusOr<FeedbackStats> RunWithOracle(
      const Mapping& gold, const MatchOptions& options = MatchOptions(),
      size_t max_corrections = 100);

 private:
  LsdSystem* system_;
  const DataSource* source_;
  SourcePredictions predictions_;
  std::vector<FeedbackConstraint> feedback_;
  bool initialized_ = false;
};

}  // namespace lsd

#endif  // LSD_CORE_FEEDBACK_H_
