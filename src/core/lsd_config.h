#ifndef LSD_CORE_LSD_CONFIG_H_
#define LSD_CORE_LSD_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "constraints/astar_searcher.h"
#include "ml/meta_learner.h"
#include "ml/prediction_converter.h"
#include "ml/whirl.h"

namespace lsd {

/// Canonical learner names used in configs, lesion studies and reports.
inline constexpr const char* kNameMatcherName = "name-matcher";
inline constexpr const char* kContentMatcherName = "content-matcher";
inline constexpr const char* kNaiveBayesName = "naive-bayes";
inline constexpr const char* kXmlLearnerName = "xml-learner";
inline constexpr const char* kCountyRecognizerName = "county-recognizer";
inline constexpr const char* kFormatLearnerName = "format-learner";

/// System-wide configuration for an `LsdSystem` instance. Defaults
/// reproduce the paper's complete system.
struct LsdConfig {
  // --- Learner roster -----------------------------------------------------
  bool use_name_matcher = true;
  bool use_content_matcher = true;
  bool use_naive_bayes = true;
  bool use_xml_learner = true;
  /// Domain recognizer (real-estate domains only in the paper).
  bool use_county_recognizer = false;
  /// The Section 7 extension learner for alpha-numeric formats.
  bool use_format_learner = false;
  /// Mediated label the county recognizer vouches for.
  std::string county_label = "COUNTY";

  // --- Training -----------------------------------------------------------
  /// Stacking cross-validation folds (the paper uses 5).
  size_t cv_folds = 5;
  /// Master seed: fold assignment and any sampling derive from it.
  uint64_t seed = 42;
  /// Cap on listings consumed per training source (0 = all).
  size_t max_listings_train = 300;
  /// Cap on training instances kept per source-schema tag; extraction can
  /// produce hundreds per tag and the nearest-neighbour learners scale
  /// with stored examples. 0 = all.
  size_t max_instances_per_column_train = 60;

  // --- Matching -----------------------------------------------------------
  size_t max_listings_match = 300;
  size_t max_instances_per_column_match = 60;

  // --- Checkpointing ------------------------------------------------------
  /// Directory for training checkpoints (empty = no checkpointing). When
  /// set, Train() persists each completed CV fold and each finished
  /// learner as atomic, checksummed artifacts (core/checkpoint.h) so an
  /// interrupted run can pick up where it stopped. Checkpoint write
  /// failures degrade (noted in train_report()) rather than fail training.
  std::string checkpoint_dir;
  /// With `checkpoint_dir` set: adopt checkpoints from a previous run of
  /// the *same* training problem (sources, seed, folds, roster — verified
  /// by fingerprint) and skip the completed work. The resumed system is
  /// bit-identical to one trained in a single run. False starts fresh,
  /// overwriting any prior checkpoints.
  bool resume_from_checkpoint = false;

  // --- Execution ----------------------------------------------------------
  /// Threads used for training (per-learner CV + fit) and matching
  /// (per-column × per-learner prediction). 0 = hardware concurrency,
  /// 1 = serial (the default). Results are bit-identical for any value:
  /// every parallel region writes into pre-sized slots indexed by task id
  /// and all randomness stays seeded per task (see DESIGN.md "Threading
  /// model & determinism").
  size_t num_threads = 1;
  /// Capacity of the prediction cache (0 = no cache, the default for
  /// standalone systems). When set, per-(learner, instance) predictions
  /// are memoized across Match calls, keyed by content hashes of the
  /// trained model and the instance's value fields, so cached output is
  /// byte-identical to uncached. A MatchService overrides this with one
  /// cache shared across all replicas (MatchServiceOptions::
  /// pred_cache_entries).
  size_t pred_cache_entries = 0;

  // --- Component options ---------------------------------------------------
  MetaLearnerOptions meta_options;
  AStarOptions astar_options;
  ConverterPolicy converter_policy = ConverterPolicy::kAverage;
  WhirlOptions whirl_options;
  /// Laplace smoothing for the Naive-Bayes-based learners.
  double nb_alpha = 0.1;
};

/// Selects which registered domain constraints a matching call may use —
/// the Figure 9b schema-information / data-information split.
enum class ConstraintFilter {
  kAll,
  /// Only constraints verifiable from the source schema alone: frequency,
  /// nesting, contiguity, exclusivity, numeric-proximity.
  kSchemaOnly,
  /// Only constraints that consult extracted data: column (key / FD).
  kDataOnly,
};

/// Per-call matching options: which trained learners participate and which
/// combination stages run. Drives the Figure 8a configurations and the
/// Figure 9a/9b lesion studies without retraining base learners.
struct MatchOptions {
  /// Learner names to use; empty = every trained learner.
  std::vector<std::string> learners;
  /// Trained learners to treat as unavailable for this call without
  /// invoking them: each is recorded as a "skipped" incident in the run
  /// report and the ensemble renormalizes over the survivors — exactly the
  /// path a predict-time failure takes, so the resulting mapping is
  /// byte-identical to one where the learner failed, minus the cost of
  /// the failure. This is the hook the service's per-learner circuit
  /// breaker uses (service/match_service.h); unknown names are ignored.
  /// Unlike `learners` (which retrains a subset meta-learner), skipping
  /// keeps the full-roster meta-learner with survivor-mask weights.
  std::vector<std::string> skip_learners;
  /// Combine with the stacking meta-learner (true) or a plain average of
  /// the participating learners' scores (false).
  bool use_meta_learner = true;
  /// Run the constraint handler (true) or per-tag argmax (false).
  bool use_constraint_handler = true;
  /// Which registered constraints the handler may use.
  ConstraintFilter constraint_filter = ConstraintFilter::kAll;
  /// Reject-option threshold for low-overlap domains (the paper's
  /// Section 7 "Overlapping of Schemas" discussion): when the converter's
  /// best label scores below this, the tag's prediction is redirected to
  /// OTHER before the mapping is computed. 0 disables (the paper's
  /// aggregator-domain setting, and the default).
  double other_threshold = 0.0;
  /// Anytime budget for the matching call. On expiry the system degrades
  /// instead of erroring: the XML learner's refinement pass is skipped and
  /// the A* search returns its greedy completion; `MatchResult::report`
  /// records what was cut. Default: no deadline.
  Deadline deadline;
};

}  // namespace lsd

#endif  // LSD_CORE_LSD_CONFIG_H_
