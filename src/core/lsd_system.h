#ifndef LSD_CORE_LSD_SYSTEM_H_
#define LSD_CORE_LSD_SYSTEM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "constraints/handler.h"
#include "core/lsd_config.h"
#include "core/run_report.h"
#include "learners/xml_learner.h"
#include "ml/cross_validation.h"
#include "ml/learner.h"
#include "ml/meta_learner.h"
#include "ml/prediction.h"
#include "ml/prediction_converter.h"
#include "schema/extraction.h"
#include "schema/schema.h"
#include "xml/dtd.h"

namespace lsd {

struct Artifact;

/// All per-learner, per-instance predictions for one target source —
/// computed once, reusable across `MatchOptions` (the evaluation harness
/// exploits this to score many system configurations without re-running
/// the learners).
struct SourcePredictions {
  /// Source-schema tags, in schema declaration order.
  std::vector<std::string> tags;
  /// The extracted columns (instances point into the source's listings;
  /// the source must stay alive while this object is used).
  std::vector<Column> columns;
  /// predictions[tag][learner][instance]. Buckets of quarantined learners
  /// are empty; consult `learner_healthy` before indexing.
  std::vector<std::vector<std::vector<Prediction>>> predictions;
  /// learner_healthy[l] — whether learner l's predictions are usable for
  /// this run (false for learners quarantined at training time or that
  /// failed during this prediction pass).
  std::vector<bool> learner_healthy;
  /// Degradation record: training-time incidents carried forward plus
  /// anything absorbed while predicting.
  RunReport report;
};

/// The outcome of matching one source.
struct MatchResult {
  Mapping mapping;
  /// Source tags in schema order, aligned with `tag_predictions`.
  std::vector<std::string> tags;
  /// The prediction converter's element-level distribution per tag.
  std::vector<Prediction> tag_predictions;
  /// Constraint-handler diagnostics (cost 0 / expanded 0 when the handler
  /// was bypassed).
  double search_cost = 0.0;
  size_t search_expanded = 0;
  bool search_truncated = false;
  /// What (if anything) degraded on the way to this mapping: quarantined
  /// learners, skipped passes, deadline-truncated search.
  RunReport report;
};

/// The LSD system (Sections 3-5): multi-strategy schema matching against a
/// mediated schema. Lifecycle:
///
///   LsdSystem lsd(mediated_dtd, config);
///   lsd.AddTrainingSource(src1, gold1);       // Section 3.1 steps 1-3
///   lsd.AddTrainingSource(src2, gold2);
///   lsd.Train();                              // steps 4-5 (CV + stacking)
///   MatchResult r = lsd.MatchSource(new_src).value();   // Section 3.2
///
/// Training sources must outlive the system (extracted instances point
/// into their listings). Domain constraints are registered with
/// `AddConstraint` at any time before matching; user feedback is passed
/// per `MatchSource` call.
class LsdSystem {
 public:
  /// `synonyms` may be null; when given it must outlive the system.
  LsdSystem(Dtd mediated_schema, LsdConfig config,
            const SynonymDictionary* synonyms = nullptr);

  LsdSystem(const LsdSystem&) = delete;
  LsdSystem& operator=(const LsdSystem&) = delete;

  const Dtd& mediated_schema() const { return mediated_schema_; }
  const LabelSpace& labels() const { return labels_; }
  const LsdConfig& config() const { return config_; }

  /// Names of the active learners, in ensemble order.
  std::vector<std::string> LearnerNames() const;

  /// Registers a training source with its user-specified 1-1 mapping.
  /// The source object must remain alive until after `Train`.
  Status AddTrainingSource(const DataSource& source, const Mapping& gold);

  /// Trains every base learner and the stacking meta-learner. Requires at
  /// least one training source. A learner whose cross-validation or fit
  /// fails (or that misses `deadline`) is quarantined — recorded in
  /// `train_report()` and excluded from the ensemble — rather than failing
  /// the call; Train errors only when every learner fails. The stacking
  /// meta-learner is trained over the surviving roster, so ensemble
  /// weights renormalize automatically.
  Status Train(const Deadline& deadline = Deadline());
  bool trained() const { return trained_; }

  /// Training-time degradation record; clean when every learner trained.
  const RunReport& train_report() const { return train_report_; }

  /// Names of learners quarantined during Train(), in roster order.
  std::vector<std::string> QuarantinedLearners() const;

  /// Adds a standing domain constraint.
  void AddConstraint(std::unique_ptr<Constraint> constraint);
  const ConstraintSet& constraints() const { return constraints_; }

  /// Runs every trained learner over the source's extracted instances.
  /// The XML learner's node labels come from a first pass over the other
  /// learners (Section 5, Table 2 testing step 2). A learner that errors
  /// on any column is marked unhealthy in the result (with an incident in
  /// its report) instead of failing the call; the call errors only when no
  /// learner survives. When `deadline` expires before the XML refinement
  /// pass, that pass is skipped and noted. Learners named in
  /// `skip_learners` are marked unavailable up front — never invoked,
  /// quarantined in the report with stage "skipped" — so the ensemble
  /// renormalizes exactly as if they had failed (the circuit-breaker path;
  /// unknown names are ignored).
  StatusOr<SourcePredictions> PredictSource(
      const DataSource& source, const Deadline& deadline = Deadline(),
      const std::vector<std::string>& skip_learners = {});

  /// Combines precomputed predictions into a mapping under `options` and
  /// `feedback`. Cheap relative to `PredictSource`.
  StatusOr<MatchResult> MatchWithPredictions(
      const SourcePredictions& predictions, const DataSource& source,
      const MatchOptions& options = MatchOptions(),
      const std::vector<FeedbackConstraint>& feedback = {});

  /// PredictSource + MatchWithPredictions in one call.
  StatusOr<MatchResult> MatchSource(
      const DataSource& source, const MatchOptions& options = MatchOptions(),
      const std::vector<FeedbackConstraint>& feedback = {});

  /// The meta-learner trained over the surviving ensemble (the full roster
  /// on a clean run); valid after Train().
  const MetaLearner& meta_learner() const { return full_meta_; }

  /// Persists the trained system (every learner's model, the full-roster
  /// meta-learner weights, and the gold node-label map) to `path` as a
  /// checksummed artifact (common/artifact_io.h), written atomically.
  /// Requires `trained()`. Constraints are not part of the model file —
  /// keep them in a `.constraints` file (constraints/constraint_parser.h)
  /// and re-register after loading.
  ///
  /// Last-good rotation: when `path` already holds a *valid* model, it is
  /// first renamed to `path + ".lastgood"` so the previous generation
  /// survives as a fallback; an invalid file at `path` is simply replaced
  /// (never rotated — a corrupt primary must not displace a good backup).
  /// A crash or injected fault mid-save leaves the primary either absent
  /// (with the last-good intact) or holding complete old or new contents,
  /// never a torn file.
  ///
  /// A degraded system (quarantined learners) cannot be saved: the model
  /// format stores the full roster, and persisting a partial ensemble
  /// would silently bake the degradation into future sessions.
  Status SaveModel(const std::string& path) const;

  /// Restores a model saved by `SaveModel` into this system, which must be
  /// untrained and configured with the same mediated schema and learner
  /// roster. Both the artifact format and the legacy "lsd-model 1" text
  /// format load (dispatch on magic).
  ///
  /// Recovery: when the primary is missing, truncated, or fails its
  /// checksums, the loader falls back to the newest last-good artifact
  /// (`path + ".lastgood"`); success sets `loaded_from_last_good()` and
  /// leaves a note in `train_report()`. Config mismatches (wrong roster or
  /// schema) do not trigger fallback — they mean the caller asked for the
  /// wrong model, not that the bytes rotted.
  ///
  /// Limitation: a loaded system has no stored cross-validation
  /// predictions, so `MatchOptions::learners` subsets that need a freshly
  /// trained subset meta-learner are unavailable — match with the full
  /// roster (or with `use_meta_learner = false`).
  Status LoadModel(const std::string& path);

  /// True when the last successful LoadModel recovered from the last-good
  /// artifact because the primary was missing or corrupt.
  bool loaded_from_last_good() const { return loaded_from_last_good_; }

  /// Replaces the prediction cache (null disables caching). A MatchService
  /// injects one shared cache into every replica — including freshly
  /// rebuilt ones — so replicas serve each other's warm entries; the
  /// content-hash keys make that safe (see common/pred_cache.h).
  void SetPredictionCache(std::shared_ptr<PredCache> cache) {
    pred_cache_ = std::move(cache);
    // Fingerprinting serializes each trained model once; paying that at
    // injection time keeps it out of the first request's latency.
    if (pred_cache_ != nullptr) {
      for (const auto& learner : learners_) learner->CacheFingerprint();
    }
  }

  /// The active prediction cache (null when caching is off). Constructed
  /// from `config.pred_cache_entries` unless SetPredictionCache overrode
  /// it.
  const std::shared_ptr<PredCache>& prediction_cache() const {
    return pred_cache_;
  }

 private:
  /// NodeLabeler backed by a tag→label map; the system points the XML
  /// learner at one of these and swaps the contents between phases.
  class MapNodeLabeler : public NodeLabeler {
   public:
    std::string LabelOf(const std::string& tag_name) const override {
      auto it = map_.find(tag_name);
      return it == map_.end() ? std::string() : it->second;
    }
    void Clear() { map_.clear(); }
    void Set(const std::string& tag, const std::string& label) {
      map_[tag] = label;
    }

   private:
    std::map<std::string, std::string> map_;
  };

  /// Index of the learner with `name` in `learners_`, or -1.
  int LearnerIndex(const std::string& name) const;

  /// FNV-1a digest of the training problem — labels, roster, seed, fold
  /// count, and every training example with its stacking group. Guards
  /// checkpoint resume: checkpoints fingerprinted for a different problem
  /// are ignored rather than silently restored.
  uint64_t TrainingFingerprint() const;

  /// Resolves MatchOptions.learners to a mask over `learners_`.
  StatusOr<std::vector<bool>> ResolveLearnerMask(
      const std::vector<std::string>& names) const;

  /// Returns (training lazily, cached) the meta-learner for a subset mask.
  StatusOr<const MetaLearner*> MetaForMask(const std::vector<bool>& mask);

  /// Subsamples a column's instances to `cap` in place (deterministic
  /// stride). No-op — and no copies — when no cap applies.
  static void CapInstances(std::vector<Instance>* instances, size_t cap);

  /// Reads and applies the model file at `path` (either format). Factored
  /// out of LoadModel so the last-good fallback can retry cleanly.
  Status LoadModelFile(const std::string& path);

  /// Applies a decoded model artifact's sections to this system.
  Status LoadModelFromArtifact(const Artifact& artifact);

  /// Applies the legacy "lsd-model 1" line format.
  Status LoadModelFromLegacyText(std::string_view text);

  Dtd mediated_schema_;
  LsdConfig config_;
  const SynonymDictionary* synonyms_;
  LabelSpace labels_;

  std::vector<std::unique_ptr<BaseLearner>> learners_;
  MapNodeLabeler node_labeler_;
  /// Gold tag→label map accumulated from training sources; restored into
  /// `node_labeler_` after each matching pass.
  std::map<std::string, std::string> gold_node_labels_;

  std::vector<TrainingExample> training_examples_;
  /// Stacking group per example: one id per (source, tag) column.
  std::vector<int> training_group_ids_;
  int next_group_id_ = 0;
  /// CV predictions per learner per training example (stacking input).
  std::vector<std::vector<Prediction>> cv_predictions_;
  std::vector<int> true_labels_;

  MetaLearner full_meta_;
  std::map<std::vector<bool>, MetaLearner> meta_cache_;
  /// train_healthy_[l] — learner l trained successfully (all-true after
  /// LoadModel; sized by Train/LoadModel).
  std::vector<bool> train_healthy_;
  RunReport train_report_;

  ConstraintSet constraints_;
  PredictionConverter converter_;
  ConstraintHandler handler_;
  /// Shared worker pool for Train() and PredictSource(); sized from
  /// `config_.num_threads` (a size-1 pool runs everything inline).
  ThreadPool pool_;
  /// Cross-call prediction cache; null when disabled.
  std::shared_ptr<PredCache> pred_cache_;
  bool trained_ = false;
  bool loaded_from_last_good_ = false;
};

}  // namespace lsd

#endif  // LSD_CORE_LSD_SYSTEM_H_
