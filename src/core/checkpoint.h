#ifndef LSD_CORE_CHECKPOINT_H_
#define LSD_CORE_CHECKPOINT_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/cross_validation.h"
#include "ml/prediction.h"

namespace lsd {

/// Training checkpoint store: lets an interrupted `LsdSystem::Train` run
/// resume without redoing finished work, with results bit-identical to an
/// uninterrupted run.
///
/// Layout — one directory, all files in the crc-framed artifact format
/// (common/artifact_io.h), every write atomic + fsynced:
///
///   manifest.lsdckpt            kind checkpoint-manifest; the fingerprint
///                               of the training problem plus one `done`
///                               key per completed unit of work
///   fold-<learner>-<n>.lsdckpt  kind checkpoint-fold; the held-out
///                               predictions of one finished CV fold
///   learner-<name>.lsdckpt      kind checkpoint-learner; a finished
///                               learner's serialized model and its full
///                               stacking predictions
///
/// The manifest is the source of truth: a fold or learner file is only
/// eligible for restore once its `done` key is in a manifest whose
/// fingerprint matches the current problem, so stale files from an
/// abandoned run (different sources, seed, roster, or fold count) are
/// inert rather than silently wrong. The manifest is rewritten atomically
/// after each fold and each learner completes — a crash at any instant
/// leaves either the old or the new manifest, never a torn one.
///
/// Every save is best-effort: a checkpoint that fails to persist (disk
/// full, injected fault) costs recomputation after the next crash, never
/// correctness, so failures increment `save_failures()` and training
/// continues. Loads are strict: a checkpoint that exists but fails
/// validation is skipped and the work is redone.
///
/// Thread-safety: all methods may be called concurrently (Train runs
/// learners and folds on a pool); the manifest is mutex-guarded, and
/// fold/learner files are only ever written by the task that owns them.
class CheckpointManager {
 public:
  /// `dir` is created if missing (one level).
  explicit CheckpointManager(std::string dir);

  /// Binds the store to a training problem. With `resume` set, an existing
  /// manifest whose fingerprint equals `fingerprint` is adopted and its
  /// completed work becomes restorable; a missing, corrupt, or
  /// mismatched manifest — or `resume` false — starts empty. Errors only
  /// when the directory cannot be created or the fresh manifest cannot be
  /// written (checkpointing would be a no-op; the caller should disable it).
  Status Open(uint64_t fingerprint, bool resume);

  /// Whether the unit of work `key` completed in a prior adopted run.
  bool IsDone(const std::string& key) const;

  /// Records `key` as complete and atomically rewrites the manifest.
  void MarkDone(const std::string& key);

  /// Restores one CV fold's held-out predictions. True only when the fold
  /// is marked done in the adopted manifest and its file validates.
  bool LoadFold(const std::string& learner, size_t fold,
                FoldPredictions* out) const;

  /// Persists one finished fold, then marks it done.
  void SaveFold(const std::string& learner, size_t fold,
                const FoldPredictions& preds);

  /// Restores a finished learner: its serialized model text and its
  /// stacking predictions (one per training example).
  bool LoadLearner(const std::string& name, std::string* model,
                   std::vector<Prediction>* cv_predictions) const;

  /// Persists a finished learner, then marks it done.
  void SaveLearner(const std::string& name, const std::string& model,
                   const std::vector<Prediction>& cv_predictions);

  /// Checkpoint writes that failed (and were absorbed) since Open.
  size_t save_failures() const;

  /// Units of work restored from checkpoint since Open.
  size_t restored() const;

  /// The manifest path, exposed for tests and tooling.
  std::string ManifestPath() const;

 private:
  std::string FoldPath(const std::string& learner, size_t fold) const;
  std::string LearnerPath(const std::string& name) const;
  /// Rewrites the manifest from `done_`; caller holds `mutex_`.
  Status WriteManifestLocked();

  std::string dir_;
  uint64_t fingerprint_ = 0;
  mutable std::mutex mutex_;
  std::set<std::string> done_;
  size_t save_failures_ = 0;
  mutable size_t restored_ = 0;
};

}  // namespace lsd

#endif  // LSD_CORE_CHECKPOINT_H_
