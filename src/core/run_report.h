#ifndef LSD_CORE_RUN_REPORT_H_
#define LSD_CORE_RUN_REPORT_H_

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace lsd {

/// One learner failure absorbed by the system instead of failing the run.
struct LearnerIncident {
  /// Canonical learner name (core/lsd_config.h).
  std::string learner;
  /// The pipeline stage that failed: "train" or "predict".
  std::string stage;
  /// The status that triggered the quarantine, rendered with its code.
  std::string error;
};

/// Degradation record for one training or matching run. A clean run has an
/// empty report; every absorbed failure — a quarantined learner, a skipped
/// refinement pass, a deadline-truncated search — leaves a trace here so
/// callers can tell a full-strength mapping from a degraded one.
struct RunReport {
  /// Learners isolated from the ensemble this run, in roster order.
  std::vector<LearnerIncident> incidents;
  /// Free-form degradation notes (skipped passes, fallback combiners).
  std::vector<std::string> notes;
  /// True when a deadline expired somewhere in the run and an anytime
  /// fallback was substituted.
  bool deadline_hit = false;
  /// True when the constraint search exhausted its expansion budget (or
  /// deadline) and returned the greedy anytime completion instead of the
  /// optimal assignment.
  bool astar_truncated = false;
  /// Registry snapshot taken when the run finished (timings, search and
  /// parse counters). Purely informational: never affects degraded().
  MetricsSnapshot metrics;

  bool degraded() const {
    return !incidents.empty() || !notes.empty() || deadline_hit ||
           astar_truncated;
  }

  /// True if `learner` has an incident recorded (any stage).
  bool IsQuarantined(const std::string& learner) const;

  /// Appends an incident for `learner` unless one for the same stage is
  /// already recorded (a learner failing many columns yields one entry).
  void Quarantine(const std::string& learner, const std::string& stage,
                  const Status& status);

  /// Multi-line human-readable rendering ("run report: clean" when empty).
  std::string ToString() const;
};

}  // namespace lsd

#endif  // LSD_CORE_RUN_REPORT_H_
