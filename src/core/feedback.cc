#include "core/feedback.h"

#include <algorithm>

namespace lsd {

Status FeedbackSession::Initialize() {
  LSD_ASSIGN_OR_RETURN(predictions_, system_->PredictSource(*source_));
  initialized_ = true;
  return Status::OK();
}

StatusOr<MatchResult> FeedbackSession::CurrentMapping(
    const MatchOptions& options) {
  if (!initialized_) {
    return Status::FailedPrecondition("FeedbackSession: call Initialize()");
  }
  return system_->MatchWithPredictions(predictions_, *source_, options,
                                       feedback_);
}

void FeedbackSession::AddFeedback(FeedbackConstraint feedback) {
  feedback_.push_back(std::move(feedback));
}

std::vector<std::string> FeedbackSession::ReviewOrder() const {
  std::vector<std::string> tags = source_->schema.AllTags();
  std::vector<size_t> scores(tags.size());
  for (size_t i = 0; i < tags.size(); ++i) {
    scores[i] = source_->schema.DescendantCount(tags[i]);
  }
  std::vector<size_t> order(tags.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  std::vector<std::string> out;
  out.reserve(tags.size());
  for (size_t index : order) out.push_back(tags[index]);
  return out;
}

StatusOr<FeedbackStats> FeedbackSession::RunWithOracle(
    const Mapping& gold, const MatchOptions& options, size_t max_corrections) {
  if (!initialized_) {
    return Status::FailedPrecondition("FeedbackSession: call Initialize()");
  }
  FeedbackStats stats;
  stats.tags_total = source_->schema.AllTags().size();
  std::vector<std::string> order = ReviewOrder();
  while (stats.corrections < max_corrections) {
    LSD_ASSIGN_OR_RETURN(MatchResult result, CurrentMapping(options));
    ++stats.iterations;
    const std::string* wrong_tag = nullptr;
    std::string wanted;
    for (const std::string& tag : order) {
      std::string predicted = result.mapping.LabelOrOther(tag);
      std::string expected = gold.LabelOrOther(tag);
      if (predicted != expected) {
        wrong_tag = &tag;
        wanted = expected;
        break;
      }
    }
    if (wrong_tag == nullptr) {
      stats.reached_perfect = true;
      return stats;
    }
    feedback_.emplace_back(*wrong_tag, wanted, /*must_equal=*/true);
    ++stats.corrections;
  }
  // Final check after exhausting the budget.
  LSD_ASSIGN_OR_RETURN(MatchResult result, CurrentMapping(options));
  ++stats.iterations;
  stats.reached_perfect = true;
  for (const std::string& tag : order) {
    if (result.mapping.LabelOrOther(tag) != gold.LabelOrOther(tag)) {
      stats.reached_perfect = false;
      break;
    }
  }
  return stats;
}

}  // namespace lsd
