#include "core/lsd_system.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/artifact_io.h"
#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/serial.h"
#include "common/strings.h"
#include "common/trace.h"
#include "core/checkpoint.h"
#include "learners/content_matcher.h"
#include "learners/county_recognizer.h"
#include "learners/format_learner.h"
#include "learners/name_matcher.h"
#include "learners/naive_bayes_learner.h"

namespace lsd {
namespace {

/// Kind tag of model artifacts, and the magic of the pre-artifact text
/// format (still loadable; see LoadModelFromLegacyText).
constexpr const char* kModelArtifactKind = "model";
constexpr const char* kLegacyModelMagic = "lsd-model";

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// FNV-1a accumulators for the training-problem fingerprint.
uint64_t HashBytes(uint64_t h, std::string_view bytes) {
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t HashNumber(uint64_t h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

LsdSystem::LsdSystem(Dtd mediated_schema, LsdConfig config,
                     const SynonymDictionary* synonyms)
    : mediated_schema_(std::move(mediated_schema)),
      config_(config),
      synonyms_(synonyms),
      labels_(mediated_schema_.AllTags()),
      converter_(config.converter_policy),
      handler_(config.astar_options),
      pool_(config.num_threads) {
  if (config_.use_name_matcher) {
    learners_.push_back(std::make_unique<NameMatcher>(config_.whirl_options));
  }
  if (config_.use_content_matcher) {
    learners_.push_back(
        std::make_unique<ContentMatcher>(config_.whirl_options));
  }
  if (config_.use_naive_bayes) {
    learners_.push_back(std::make_unique<NaiveBayesLearner>(config_.nb_alpha));
  }
  if (config_.use_xml_learner) {
    learners_.push_back(
        std::make_unique<XmlLearner>(&node_labeler_, config_.nb_alpha));
  }
  if (config_.use_county_recognizer) {
    learners_.push_back(
        std::make_unique<CountyRecognizer>(config_.county_label));
  }
  if (config_.use_format_learner) {
    learners_.push_back(std::make_unique<FormatLearner>(config_.nb_alpha));
  }
  if (config_.pred_cache_entries > 0) {
    pred_cache_ = std::make_shared<PredCache>(config_.pred_cache_entries);
  }
}

std::vector<std::string> LsdSystem::LearnerNames() const {
  std::vector<std::string> out;
  out.reserve(learners_.size());
  for (const auto& learner : learners_) out.push_back(learner->name());
  return out;
}

int LsdSystem::LearnerIndex(const std::string& name) const {
  for (size_t i = 0; i < learners_.size(); ++i) {
    if (learners_[i]->name() == name) return static_cast<int>(i);
  }
  return -1;
}

void LsdSystem::CapInstances(std::vector<Instance>* instances, size_t cap) {
  std::vector<Instance>& in = *instances;
  if (cap == 0 || in.size() <= cap) return;
  // Deterministic stride sampling keeps coverage across listings. The
  // sampled indices are strictly increasing, so the kept instances can be
  // moved down in place and the tail dropped — no copies either way.
  double stride = static_cast<double>(in.size()) / static_cast<double>(cap);
  for (size_t i = 0; i < cap; ++i) {
    size_t pick = static_cast<size_t>(static_cast<double>(i) * stride);
    if (pick != i) in[i] = std::move(in[pick]);
  }
  in.resize(cap);
}

Status LsdSystem::AddTrainingSource(const DataSource& source,
                                    const Mapping& gold) {
  if (trained_) {
    return Status::FailedPrecondition(
        "AddTrainingSource: system already trained; create a new system or "
        "add sources before Train()");
  }
  ExtractionOptions options;
  options.max_listings = config_.max_listings_train;
  options.synonyms = synonyms_;
  LSD_ASSIGN_OR_RETURN(std::vector<Column> columns,
                       ExtractColumns(source, options));
  for (Column& column : columns) {
    CapInstances(&column.instances, config_.max_instances_per_column_train);
  }
  // One stacking group per (source, tag) column: grouped cross-validation
  // keeps a held-out column's tag name out of the fold's training data.
  size_t added = 0;
  for (const Column& column : columns) {
    std::string label_name = gold.LabelOrOther(column.tag);
    int label = labels_.IndexOf(label_name);
    if (label < 0) continue;
    int group = next_group_id_++;
    for (const Instance& instance : column.instances) {
      training_examples_.push_back(TrainingExample{instance, label});
      training_group_ids_.push_back(group);
      ++added;
    }
  }
  if (added == 0) {
    return Status::InvalidArgument("AddTrainingSource: source '" +
                                   source.name + "' produced no examples");
  }
  for (const auto& [tag, label] : gold.entries()) {
    gold_node_labels_[tag] = label;
  }
  return Status::OK();
}

uint64_t LsdSystem::TrainingFingerprint() const {
  uint64_t h = 14695981039346656037ULL;
  for (const std::string& label : labels_.labels()) {
    h = HashBytes(h, label);
    h = HashBytes(h, "\x1f");
  }
  for (const auto& learner : learners_) {
    h = HashBytes(h, learner->name());
    h = HashBytes(h, "\x1f");
  }
  h = HashNumber(h, config_.seed);
  h = HashNumber(h, config_.cv_folds);
  h = HashNumber(h, training_examples_.size());
  for (size_t i = 0; i < training_examples_.size(); ++i) {
    const TrainingExample& example = training_examples_[i];
    h = HashBytes(h, example.instance.tag_name);
    h = HashBytes(h, "\x1f");
    h = HashBytes(h, example.instance.name_path);
    h = HashBytes(h, "\x1f");
    h = HashBytes(h, example.instance.content);
    h = HashBytes(h, "\x1f");
    h = HashNumber(h, static_cast<uint64_t>(example.label));
    h = HashNumber(h, static_cast<uint64_t>(training_group_ids_[i]));
  }
  return h;
}

std::vector<std::string> LsdSystem::QuarantinedLearners() const {
  std::vector<std::string> out;
  for (size_t l = 0; l < learners_.size(); ++l) {
    if (l < train_healthy_.size() && !train_healthy_[l]) {
      out.push_back(learners_[l]->name());
    }
  }
  return out;
}

Status LsdSystem::Train(const Deadline& deadline) {
  if (learners_.empty()) {
    return Status::FailedPrecondition("Train: no learners configured");
  }
  if (training_examples_.empty()) {
    return Status::FailedPrecondition("Train: no training sources added");
  }
  TraceSpan train_span("train/system");
  MetricsRegistry::Global()
      .GetCounter("train.examples")
      ->Increment(training_examples_.size());
  // Gold labels drive the XML learner's structure tokens during training.
  node_labeler_.Clear();
  for (const auto& [tag, label] : gold_node_labels_) {
    node_labeler_.Set(tag, label);
  }

  true_labels_.clear();
  true_labels_.reserve(training_examples_.size());
  for (const TrainingExample& example : training_examples_) {
    true_labels_.push_back(example.label);
  }

  cv_predictions_.assign(learners_.size(), {});
  CrossValidationOptions cv_options;
  cv_options.folds = config_.cv_folds;
  cv_options.seed = config_.seed;
  cv_options.group_ids = training_group_ids_;
  cv_options.pool = &pool_;
  // Each learner's CV + final fit is independent of every other learner's
  // (they read the shared training set and the frozen node-label map, and
  // write only their own model state and cv_predictions_ slot), so the
  // roster trains concurrently; folds inside each CV run nest on the same
  // pool. Fold seeds derive from config_.seed per learner, never from a
  // shared RNG, keeping results bit-identical for any thread count.
  //
  // Fault tolerance: a learner whose CV or fit errors is quarantined, not
  // fatal. Each task writes its outcome into its own slot and returns OK,
  // so ParallelFor's first-error-wins semantics never mask which learners
  // failed; the quarantined set depends only on per-learner outcomes,
  // never on thread scheduling.
  train_report_ = RunReport();
  train_healthy_.assign(learners_.size(), true);

  // Optional crash-safety: checkpoint each completed fold and learner so a
  // killed run resumes instead of restarting. The store is fingerprinted
  // to this exact training problem; a checkpoint directory left over from
  // different sources, seed, folds, or roster is ignored. Checkpointing
  // that cannot even start (unwritable directory) is disabled with a note
  // — it is an optimization, never a correctness dependency.
  std::unique_ptr<CheckpointManager> checkpoints;
  if (!config_.checkpoint_dir.empty()) {
    checkpoints = std::make_unique<CheckpointManager>(config_.checkpoint_dir);
    Status opened = checkpoints->Open(TrainingFingerprint(),
                                      config_.resume_from_checkpoint);
    if (!opened.ok()) {
      train_report_.notes.push_back("checkpointing disabled: " +
                                    opened.message());
      checkpoints.reset();
    }
  }

  std::vector<Status> outcomes(learners_.size(), Status::OK());
  LSD_RETURN_IF_ERROR(pool_.ParallelFor(
      learners_.size(), [&](size_t l) -> Status {
        TraceSpan span("train/learner", learners_[l]->name());
        auto start = std::chrono::steady_clock::now();
        outcomes[l] = [&]() -> Status {
          const std::string name = learners_[l]->name();
          // A learner that finished in a previous (interrupted) run is
          // restored whole: its serialized model and its stacking
          // predictions. Both were persisted with exact round-trip
          // encodings, so the restored state is bit-identical to the state
          // the interrupted run computed.
          if (checkpoints != nullptr) {
            std::string model;
            std::vector<Prediction> cv;
            if (checkpoints->LoadLearner(name, &model, &cv) &&
                cv.size() == training_examples_.size()) {
              Status loaded = learners_[l]->LoadModel(model);
              if (loaded.ok()) {
                cv_predictions_[l] = std::move(cv);
                MetricsRegistry::Global()
                    .GetCounter("checkpoint.learners_restored")
                    ->Increment();
                return Status::OK();
              }
            }
          }
          if (deadline.expired()) {
            return Status::DeadlineExceeded(
                "training deadline expired before learner '" + name +
                "' started");
          }
          LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kLearnerTrain, name));
          // Stacking first (the learner must not have seen the held-out
          // folds), then the final model on the full training set.
          CrossValidationOptions learner_cv = cv_options;
          if (checkpoints != nullptr) {
            CheckpointManager* store = checkpoints.get();
            learner_cv.load_fold = [store, name](size_t fold,
                                                 FoldPredictions* out) {
              return store->LoadFold(name, fold, out);
            };
            learner_cv.save_fold = [store, name](
                                       size_t fold,
                                       const FoldPredictions& preds) {
              store->SaveFold(name, fold, preds);
            };
          }
          LSD_ASSIGN_OR_RETURN(
              cv_predictions_[l],
              CrossValidatePredictions(*learners_[l], training_examples_,
                                       labels_, learner_cv));
          LSD_RETURN_IF_ERROR(
              learners_[l]->Train(training_examples_, labels_));
          if (checkpoints != nullptr) {
            StatusOr<std::string> model = learners_[l]->SerializeModel();
            if (model.ok()) {
              checkpoints->SaveLearner(name, *model, cv_predictions_[l]);
            }
          }
          return Status::OK();
        }();
        MetricsRegistry::Global()
            .GetHistogram("train.micros." + learners_[l]->name())
            ->Record(ElapsedMicros(start));
        return Status::OK();
      }));
  if (checkpoints != nullptr && checkpoints->save_failures() > 0) {
    train_report_.notes.push_back(StrFormat(
        "%zu checkpoint write(s) failed; training completed but a crash "
        "would redo that work", checkpoints->save_failures()));
  }

  size_t survivors = 0;
  for (size_t l = 0; l < learners_.size(); ++l) {
    if (outcomes[l].ok()) {
      ++survivors;
      continue;
    }
    train_healthy_[l] = false;
    cv_predictions_[l].clear();
    train_report_.Quarantine(learners_[l]->name(), "train", outcomes[l]);
    if (outcomes[l].code() == StatusCode::kDeadlineExceeded) {
      train_report_.deadline_hit = true;
      MetricsRegistry::Global().GetCounter("deadline.train_hits")->Increment();
    }
  }
  if (survivors == 0) {
    for (const Status& outcome : outcomes) {
      if (!outcome.ok()) {
        return Status(outcome.code(),
                      "Train: every learner failed; first error: " +
                          outcome.message());
      }
    }
  }

  // The stacking meta-learner trains over the survivors only, so its
  // weights renormalize over the degraded roster automatically.
  std::vector<std::vector<Prediction>> survivor_cv;
  survivor_cv.reserve(survivors);
  for (size_t l = 0; l < learners_.size(); ++l) {
    if (train_healthy_[l]) survivor_cv.push_back(cv_predictions_[l]);
  }
  LSD_RETURN_IF_ERROR(full_meta_.Train(survivor_cv, true_labels_,
                                       labels_.size(), config_.meta_options));
  meta_cache_.clear();
  meta_cache_[train_healthy_] = full_meta_;
  trained_ = true;
  return Status::OK();
}

void LsdSystem::AddConstraint(std::unique_ptr<Constraint> constraint) {
  constraints_.Add(std::move(constraint));
}

StatusOr<std::vector<bool>> LsdSystem::ResolveLearnerMask(
    const std::vector<std::string>& names) const {
  std::vector<bool> mask(learners_.size(), names.empty());
  for (const std::string& name : names) {
    int index = LearnerIndex(name);
    if (index < 0) {
      return Status::NotFound("unknown or inactive learner: " + name);
    }
    mask[static_cast<size_t>(index)] = true;
  }
  bool any = false;
  for (bool b : mask) any = any || b;
  if (!any) {
    return Status::InvalidArgument("MatchOptions: no learners selected");
  }
  return mask;
}

StatusOr<const MetaLearner*> LsdSystem::MetaForMask(
    const std::vector<bool>& mask) {
  auto it = meta_cache_.find(mask);
  if (it != meta_cache_.end()) return &it->second;
  if (cv_predictions_.empty()) {
    return Status::FailedPrecondition(
        "subset meta-learners are unavailable on a model restored with "
        "LoadModel; match with the full learner roster or set "
        "use_meta_learner = false");
  }
  std::vector<std::vector<Prediction>> subset;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) subset.push_back(cv_predictions_[i]);
  }
  MetaLearner meta;
  LSD_RETURN_IF_ERROR(
      meta.Train(subset, true_labels_, labels_.size(), config_.meta_options));
  auto [inserted, unused] = meta_cache_.emplace(mask, std::move(meta));
  return &inserted->second;
}

StatusOr<SourcePredictions> LsdSystem::PredictSource(
    const DataSource& source, const Deadline& deadline,
    const std::vector<std::string>& skip_learners) {
  if (!trained_) {
    return Status::FailedPrecondition("PredictSource: call Train() first");
  }
  TraceSpan predict_span("predict/source", source.name);
  SourcePredictions out;
  out.learner_healthy = train_healthy_;
  out.report = train_report_;
  // Breaker-style skips come first so every later stage (pass 1, the
  // provisional node labels, the XML pass) sees the same health mask a
  // predict-time failure of the same learner would have produced.
  for (const std::string& name : skip_learners) {
    int index = LearnerIndex(name);
    if (index < 0 || !out.learner_healthy[static_cast<size_t>(index)]) {
      continue;
    }
    out.learner_healthy[static_cast<size_t>(index)] = false;
    out.report.Quarantine(
        name, "skipped",
        Status::Unavailable("skipped by caller (circuit breaker open)"));
    MetricsRegistry::Global()
        .GetCounter("predict.learners_skipped")
        ->Increment();
  }
  ExtractionOptions options;
  options.max_listings = config_.max_listings_match;
  options.synonyms = synonyms_;
  LSD_ASSIGN_OR_RETURN(out.columns, ExtractColumns(source, options));
  for (Column& column : out.columns) {
    CapInstances(&column.instances, config_.max_instances_per_column_match);
    if (column.instances.empty()) {
      // A declared tag with no sampled data still needs a prediction; the
      // name matcher can work from the tag name alone.
      Instance synthetic;
      synthetic.tag_name = column.tag;
      synthetic.name_path = column.tag;
      column.instances.push_back(std::move(synthetic));
    }
    out.tags.push_back(column.tag);
  }

  const size_t n_tags = out.columns.size();
  const size_t n_learners = learners_.size();
  int xml_index = LearnerIndex(kXmlLearnerName);
  out.predictions.assign(n_tags, {});

  for (size_t t = 0; t < n_tags; ++t) {
    out.predictions[t].assign(n_learners, {});
  }

  // Pass 1: every healthy learner except the XML learner predicts each
  // instance. One task per (column, learner) pair; each task owns exactly
  // one pre-sized prediction bucket and Predict() is const on every
  // learner, so tasks share no mutable state and output order is fixed by
  // the slot. A pair that errors (fault injection at the Predict seam)
  // records into its own outcome slot; the learner is then marked
  // unhealthy for this run — the set of unhealthy learners is a function
  // of per-pair outcomes only, identical for any thread count.
  std::vector<std::pair<size_t, size_t>> pass1;
  pass1.reserve(n_tags * n_learners);
  for (size_t t = 0; t < n_tags; ++t) {
    for (size_t l = 0; l < n_learners; ++l) {
      if (static_cast<int>(l) == xml_index) continue;
      if (!out.learner_healthy[l]) continue;
      pass1.emplace_back(t, l);
    }
  }
  // Cache addressing, hoisted out of the per-pair tasks: each learner's
  // model fingerprint (0 = uncacheable, e.g. the XML learner) and each
  // instance's content hash, shared by every learner's lookups on that
  // column. Both are pure content hashes, so entries written by any
  // identically-trained system — another service replica, a rebuilt
  // replica, an earlier request — replay byte-identically here.
  PredCache* cache = pred_cache_.get();
  std::vector<uint64_t> learner_fp(n_learners, 0);
  std::vector<std::vector<uint64_t>> instance_hashes;
  if (cache != nullptr) {
    for (size_t l = 0; l < n_learners; ++l) {
      if (static_cast<int>(l) == xml_index || !out.learner_healthy[l]) continue;
      learner_fp[l] = learners_[l]->CacheFingerprint();
    }
    instance_hashes.assign(n_tags, {});
    LSD_RETURN_IF_ERROR(pool_.ParallelFor(n_tags, [&](size_t t) -> Status {
      const Column& column = out.columns[t];
      instance_hashes[t].reserve(column.instances.size());
      for (const Instance& instance : column.instances) {
        instance_hashes[t].push_back(InstanceCacheHash(instance));
      }
      return Status::OK();
    }));
  }
  std::vector<Status> pair_outcomes(pass1.size(), Status::OK());
  LSD_RETURN_IF_ERROR(pool_.ParallelFor(pass1.size(), [&](size_t k) -> Status {
    const auto [t, l] = pass1[k];
    Status fault = CheckFault(FaultSite::kLearnerPredict,
                              learners_[l]->name() + "/" + out.tags[t]);
    if (!fault.ok()) {
      pair_outcomes[k] = std::move(fault);
      return Status::OK();
    }
    TraceSpan span("predict/learner", learners_[l]->name());
    auto start = std::chrono::steady_clock::now();
    const Column& column = out.columns[t];
    const size_t n_instances = column.instances.size();
    auto& bucket = out.predictions[t][l];
    size_t predicted = n_instances;
    if (cache == nullptr || learner_fp[l] == 0) {
      std::vector<const Instance*> batch;
      batch.reserve(n_instances);
      for (const Instance& instance : column.instances) {
        batch.push_back(&instance);
      }
      learners_[l]->PredictBatch(batch, &bucket);
    } else {
      // Cached path: serve hits verbatim, batch-predict only the misses,
      // then publish them. PredictBatch results are independent of batch
      // composition (the learner contract), so mixing cached and fresh
      // predictions is byte-identical to predicting everything.
      bucket.assign(n_instances, Prediction());
      std::vector<const Instance*> miss_batch;
      std::vector<size_t> miss_index;
      for (size_t i = 0; i < n_instances; ++i) {
        if (!cache->Lookup(learner_fp[l], instance_hashes[t][i],
                           &bucket[i].scores)) {
          miss_batch.push_back(&column.instances[i]);
          miss_index.push_back(i);
        }
      }
      if (!miss_batch.empty()) {
        std::vector<Prediction> fresh;
        learners_[l]->PredictBatch(miss_batch, &fresh);
        for (size_t j = 0; j < miss_index.size(); ++j) {
          cache->Insert(learner_fp[l], instance_hashes[t][miss_index[j]],
                        fresh[j].scores);
          bucket[miss_index[j]] = std::move(fresh[j]);
        }
      }
      predicted = miss_batch.size();
    }
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetHistogram("predict.micros." + learners_[l]->name())
        ->Record(ElapsedMicros(start));
    registry.GetCounter("predict.instances")->Increment(predicted);
    return Status::OK();
  }));
  for (size_t k = 0; k < pass1.size(); ++k) {
    if (pair_outcomes[k].ok()) continue;
    const size_t l = pass1[k].second;
    out.learner_healthy[l] = false;
    out.report.Quarantine(learners_[l]->name(), "predict", pair_outcomes[k]);
  }

  bool xml_healthy = xml_index >= 0 &&
                     out.learner_healthy[static_cast<size_t>(xml_index)];
  if (xml_healthy && deadline.expired()) {
    out.learner_healthy[static_cast<size_t>(xml_index)] = false;
    out.report.deadline_hit = true;
    MetricsRegistry::Global().GetCounter("deadline.predict_hits")->Increment();
    out.report.notes.push_back(
        "deadline expired before the XML-learner refinement pass; matched "
        "without the XML learner");
    xml_healthy = false;
  }
  if (xml_healthy) {
    // Provisional node labels for the target source: equal-weight average
    // of the other learners per tag, then argmax (Table 2 testing step 2).
    node_labeler_.Clear();
    for (const auto& [tag, label] : gold_node_labels_) {
      node_labeler_.Set(tag, label);
    }
    // Each tag's provisional label depends only on that tag's pass-1
    // predictions; compute them into per-tag slots, then apply to the
    // (shared, hence serial) node labeler in tag order.
    std::vector<int> provisional(n_tags, -1);
    LSD_RETURN_IF_ERROR(pool_.ParallelFor(n_tags, [&](size_t t) -> Status {
      std::vector<Prediction> instance_preds;
      const size_t n_instances = out.columns[t].instances.size();
      instance_preds.reserve(n_instances);
      for (size_t i = 0; i < n_instances; ++i) {
        Prediction combined(labels_.size());
        size_t used = 0;
        for (size_t l = 0; l < n_learners; ++l) {
          if (static_cast<int>(l) == xml_index) continue;
          if (!out.learner_healthy[l]) continue;
          for (size_t c = 0; c < labels_.size(); ++c) {
            combined.scores[c] += out.predictions[t][l][i].scores[c];
          }
          ++used;
        }
        if (used == 0) combined = Prediction::Uniform(labels_.size());
        combined.Normalize();
        instance_preds.push_back(std::move(combined));
      }
      LSD_ASSIGN_OR_RETURN(Prediction tag_pred,
                           converter_.Convert(instance_preds));
      provisional[t] = tag_pred.Best();
      return Status::OK();
    }));
    for (size_t t = 0; t < n_tags; ++t) {
      // Target-source tags override gold entries with the same name.
      node_labeler_.Set(out.tags[t], labels_.NameOf(provisional[t]));
    }
    // Pass 2: the XML learner with provisional labels in place (frozen for
    // the duration of the parallel region; one task per column). Same
    // quarantine discipline as pass 1: per-column outcomes into slots.
    auto& xml_learner = learners_[static_cast<size_t>(xml_index)];
    std::vector<Status> xml_outcomes(n_tags, Status::OK());
    LSD_RETURN_IF_ERROR(pool_.ParallelFor(n_tags, [&](size_t t) -> Status {
      Status fault = CheckFault(FaultSite::kLearnerPredict,
                                xml_learner->name() + "/" + out.tags[t]);
      if (!fault.ok()) {
        xml_outcomes[t] = std::move(fault);
        return Status::OK();
      }
      TraceSpan span("predict/learner", xml_learner->name());
      auto start = std::chrono::steady_clock::now();
      auto& bucket = out.predictions[t][static_cast<size_t>(xml_index)];
      bucket.reserve(out.columns[t].instances.size());
      for (const Instance& instance : out.columns[t].instances) {
        bucket.push_back(xml_learner->Predict(instance));
      }
      MetricsRegistry& registry = MetricsRegistry::Global();
      registry.GetHistogram("predict.micros." + xml_learner->name())
          ->Record(ElapsedMicros(start));
      registry.GetCounter("predict.instances")
          ->Increment(out.columns[t].instances.size());
      return Status::OK();
    }));
    for (size_t t = 0; t < n_tags; ++t) {
      if (xml_outcomes[t].ok()) continue;
      out.learner_healthy[static_cast<size_t>(xml_index)] = false;
      out.report.Quarantine(xml_learner->name(), "predict", xml_outcomes[t]);
    }
    // Restore gold labels so later training-phase consumers see them.
    node_labeler_.Clear();
    for (const auto& [tag, label] : gold_node_labels_) {
      node_labeler_.Set(tag, label);
    }
  }

  // Graceful degradation ends where the ensemble does: no survivors means
  // there is nothing to combine, and that is a hard error.
  bool any_healthy = false;
  for (bool healthy : out.learner_healthy) any_healthy = any_healthy || healthy;
  if (!any_healthy) {
    std::string detail = out.report.incidents.empty()
                             ? std::string("no incidents recorded")
                             : out.report.incidents.front().learner + ": " +
                                   out.report.incidents.front().error;
    return Status::FailedPrecondition(
        "PredictSource: every learner failed (first incident — " + detail +
        ")");
  }
  return out;
}

StatusOr<MatchResult> LsdSystem::MatchWithPredictions(
    const SourcePredictions& predictions, const DataSource& source,
    const MatchOptions& options,
    const std::vector<FeedbackConstraint>& feedback) {
  if (!trained_) {
    return Status::FailedPrecondition("MatchWithPredictions: call Train() first");
  }
  TraceSpan match_span("match/source", source.name);
  LSD_ASSIGN_OR_RETURN(std::vector<bool> mask,
                       ResolveLearnerMask(options.learners));
  MatchResult result;
  result.report = predictions.report;

  // Drop quarantined learners from the requested roster. A degraded
  // ensemble still matches; only an empty one errors.
  std::vector<bool> effective = mask;
  if (predictions.learner_healthy.size() == learners_.size()) {
    for (size_t l = 0; l < learners_.size(); ++l) {
      if (effective[l] && !predictions.learner_healthy[l]) {
        effective[l] = false;
        if (!options.learners.empty()) {
          result.report.notes.push_back("requested learner '" +
                                        learners_[l]->name() +
                                        "' is quarantined; matched without it");
        }
      }
    }
  }
  bool any_effective = false;
  for (bool b : effective) any_effective = any_effective || b;
  if (!any_effective) {
    return Status::FailedPrecondition(
        "MatchWithPredictions: every selected learner is quarantined");
  }

  const MetaLearner* meta = nullptr;
  if (options.use_meta_learner) {
    StatusOr<const MetaLearner*> meta_or = MetaForMask(effective);
    if (meta_or.ok()) {
      meta = meta_or.value();
    } else if (effective != mask && cv_predictions_.empty()) {
      // A LoadModel-restored system has no stored CV predictions, so a
      // fresh survivor meta-learner cannot be trained; degrade to the
      // unweighted average rather than refusing to match.
      result.report.notes.push_back(
          "meta-learner unavailable for the degraded roster on a loaded "
          "model; combined surviving learners by unweighted average");
    } else {
      return meta_or.status();
    }
  }
  result.tags = predictions.tags;
  const size_t n_tags = predictions.tags.size();
  auto convert_start = std::chrono::steady_clock::now();
  result.tag_predictions.reserve(n_tags);
  for (size_t t = 0; t < n_tags; ++t) {
    const size_t n_instances = predictions.columns[t].instances.size();
    std::vector<Prediction> instance_preds;
    instance_preds.reserve(n_instances);
    for (size_t i = 0; i < n_instances; ++i) {
      std::vector<Prediction> subset;
      for (size_t l = 0; l < learners_.size(); ++l) {
        if (effective[l]) subset.push_back(predictions.predictions[t][l][i]);
      }
      if (meta != nullptr) {
        LSD_ASSIGN_OR_RETURN(Prediction combined, meta->Combine(subset));
        instance_preds.push_back(std::move(combined));
      } else {
        LSD_ASSIGN_OR_RETURN(Prediction combined, AveragePredictions(subset));
        instance_preds.push_back(std::move(combined));
      }
    }
    LSD_ASSIGN_OR_RETURN(Prediction tag_pred,
                         converter_.Convert(instance_preds));
    // Reject option (Section 7): a tag whose best label is weaker than the
    // threshold probably matches nothing in the mediated schema.
    if (options.other_threshold > 0.0) {
      int best = tag_pred.Best();
      int other = labels_.other_index();
      if (best >= 0 && best != other &&
          tag_pred.scores[static_cast<size_t>(best)] <
              options.other_threshold) {
        double boosted = std::max(tag_pred.scores[static_cast<size_t>(other)],
                                  options.other_threshold);
        tag_pred.scores[static_cast<size_t>(other)] = boosted;
        tag_pred.Normalize();
      }
    }
    result.tag_predictions.push_back(std::move(tag_pred));
  }
  MetricsRegistry::Global()
      .GetHistogram("match.convert_micros")
      ->Record(ElapsedMicros(convert_start));

  ConstraintContext context(&source.schema, &predictions.columns);
  std::vector<const Constraint*> active_constraints;
  for (const Constraint* c : constraints_.All()) {
    bool is_column = c->type() == ConstraintType::kColumn;
    switch (options.constraint_filter) {
      case ConstraintFilter::kAll:
        active_constraints.push_back(c);
        break;
      case ConstraintFilter::kSchemaOnly:
        if (!is_column) active_constraints.push_back(c);
        break;
      case ConstraintFilter::kDataOnly:
        if (is_column) active_constraints.push_back(c);
        break;
    }
  }
  if (options.use_constraint_handler &&
      (!active_constraints.empty() || !feedback.empty())) {
    auto search_start = std::chrono::steady_clock::now();
    LSD_ASSIGN_OR_RETURN(
        HandlerResult handled,
        handler_.ComputeMapping(result.tag_predictions, active_constraints,
                                feedback, labels_, context,
                                options.deadline));
    MetricsRegistry::Global()
        .GetHistogram("match.search_micros")
        ->Record(ElapsedMicros(search_start));
    result.mapping = std::move(handled.mapping);
    result.search_cost = handled.cost;
    result.search_expanded = handled.expanded;
    result.search_truncated = handled.truncated;
    result.report.astar_truncated = handled.truncated;
    if (handled.deadline_hit) {
      result.report.deadline_hit = true;
      MetricsRegistry::Global().GetCounter("deadline.search_hits")->Increment();
      result.report.notes.push_back(
          "constraint-search deadline expired; mapping is the greedy "
          "anytime completion");
    }
  } else {
    LSD_ASSIGN_OR_RETURN(
        result.mapping,
        ArgmaxMapping(result.tag_predictions, labels_, context));
  }
  // Snapshot after the last pipeline stage so the report carries every
  // counter this run touched (plus whatever earlier runs accumulated —
  // the registry is process-wide).
  result.report.metrics = MetricsRegistry::Global().Snapshot();
  return result;
}

StatusOr<MatchResult> LsdSystem::MatchSource(
    const DataSource& source, const MatchOptions& options,
    const std::vector<FeedbackConstraint>& feedback) {
  LSD_ASSIGN_OR_RETURN(SourcePredictions predictions,
                       PredictSource(source, options.deadline,
                                     options.skip_learners));
  return MatchWithPredictions(predictions, source, options, feedback);
}


Status LsdSystem::SaveModel(const std::string& path) const {
  if (!trained_) {
    return Status::FailedPrecondition("SaveModel: call Train() first");
  }
  if (!QuarantinedLearners().empty()) {
    return Status::FailedPrecondition(
        "SaveModel: learner '" + QuarantinedLearners().front() +
        "' is quarantined; a degraded ensemble cannot be persisted — retrain "
        "cleanly first");
  }
  Artifact artifact;
  artifact.kind = kModelArtifactKind;
  std::string labels_payload = StrFormat("labels %zu\n", labels_.size());
  for (const std::string& label : labels_.labels()) {
    labels_payload += "l " + label + "\n";
  }
  artifact.sections.push_back({"labels", std::move(labels_payload)});
  std::string nl_payload =
      StrFormat("node-labels %zu\n", gold_node_labels_.size());
  for (const auto& [tag, label] : gold_node_labels_) {
    nl_payload += "nl " + tag + " " + label + "\n";
  }
  artifact.sections.push_back({"node-labels", std::move(nl_payload)});
  for (const auto& learner : learners_) {
    LSD_ASSIGN_OR_RETURN(std::string payload, learner->SerializeModel());
    artifact.sections.push_back(
        {"learner-" + learner->name(), std::move(payload)});
  }
  artifact.sections.push_back({"meta", full_meta_.Serialize()});

  // Publish in three steps so a failure at any point leaves a loadable
  // model behind:
  //   1. the new artifact lands fully (atomic, fsync'd) in a staging file
  //      — a write fault here leaves the primary byte-identical;
  //   2. a primary that still *validates* rotates to the .lastgood slot
  //      (never rotate blindly: a corrupt primary must not evict the one
  //      good copy left; a failed rotation just skips the backup);
  //   3. the staging file renames over the primary. A crash between 2 and
  //      3 leaves no primary but an intact .lastgood — LoadModel's
  //      NotFound fallback covers exactly this window.
  const std::string staging = path + ".staging";
  LSD_RETURN_IF_ERROR(WriteArtifact(staging, artifact));
  if (FileExists(path)) {
    bool valid = ReadArtifact(path, kModelArtifactKind).ok();
    if (!valid) {
      // A legacy-format primary counts as a prior good generation too.
      StatusOr<std::string> text = ReadFileToString(path);
      valid = text.ok() && text->rfind(kLegacyModelMagic, 0) == 0;
    }
    if (valid) {
      std::string backup = path + ".lastgood";
      Status rotated = CheckFault(FaultSite::kFileRename, backup);
      if (rotated.ok() && std::rename(path.c_str(), backup.c_str()) != 0) {
        rotated = Status::Internal("rename to " + backup + " failed");
      }
      MetricsRegistry::Global()
          .GetCounter(rotated.ok() ? "artifact.lastgood_rotations"
                                   : "artifact.lastgood_rotation_failures")
          ->Increment();
    }
  }
  Status published = CheckFault(FaultSite::kFileRename, path);
  if (published.ok() && std::rename(staging.c_str(), path.c_str()) != 0) {
    published =
        Status::Internal("SaveModel: publishing rename to " + path + " failed");
  }
  if (!published.ok()) {
    std::remove(staging.c_str());
    return published;
  }
  return Status::OK();
}

Status LsdSystem::LoadModelFromArtifact(const Artifact& artifact) {
  const ArtifactSection* labels_section = artifact.Find("labels");
  const ArtifactSection* nl_section = artifact.Find("node-labels");
  const ArtifactSection* meta_section = artifact.Find("meta");
  if (labels_section == nullptr || nl_section == nullptr ||
      meta_section == nullptr) {
    return Status::ParseError("LoadModel: model artifact is missing a "
                              "labels/node-labels/meta section");
  }
  if (artifact.sections.size() != 3 + learners_.size()) {
    return Status::FailedPrecondition(
        "LoadModel: model stores a different learner roster — construct the "
        "system with the same LsdConfig");
  }
  {
    LineReader reader(labels_section->payload);
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> labels_line,
                         reader.Expect("labels", 2));
    LSD_ASSIGN_OR_RETURN(size_t n_labels, FieldToSize(labels_line[1]));
    if (n_labels != labels_.size()) {
      return Status::FailedPrecondition(
          "LoadModel: label count differs from the mediated schema");
    }
    for (size_t c = 0; c < n_labels; ++c) {
      LSD_ASSIGN_OR_RETURN(std::vector<std::string> label_line,
                           reader.Expect("l", 2));
      if (label_line[1] != labels_.NameOf(static_cast<int>(c))) {
        return Status::FailedPrecondition(
            "LoadModel: label '" + label_line[1] +
            "' does not match the mediated schema at position " +
            std::to_string(c));
      }
    }
    LSD_RETURN_IF_ERROR(ExpectAtEnd(reader, "model labels"));
  }
  {
    LineReader reader(nl_section->payload);
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> nl_header,
                         reader.Expect("node-labels", 2));
    LSD_ASSIGN_OR_RETURN(size_t n_node_labels, FieldToSize(nl_header[1]));
    gold_node_labels_.clear();
    for (size_t i = 0; i < n_node_labels; ++i) {
      LSD_ASSIGN_OR_RETURN(std::vector<std::string> nl,
                           reader.Expect("nl", 3));
      gold_node_labels_[nl[1]] = nl[2];
    }
    LSD_RETURN_IF_ERROR(ExpectAtEnd(reader, "model node-labels"));
  }
  for (auto& learner : learners_) {
    const ArtifactSection* section =
        artifact.Find("learner-" + learner->name());
    if (section == nullptr) {
      return Status::FailedPrecondition(
          "LoadModel: model has no section for learner '" + learner->name() +
          "' — construct the system with the same LsdConfig");
    }
    LSD_RETURN_IF_ERROR(learner->LoadModel(section->payload));
  }
  LSD_ASSIGN_OR_RETURN(full_meta_,
                       MetaLearner::Deserialize(meta_section->payload));
  return Status::OK();
}

Status LsdSystem::LoadModelFromLegacyText(std::string_view text) {
  LineReader reader(text);
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       reader.Expect("lsd-model", 2));
  if (header[1] != "1") {
    return Status::FailedPrecondition("lsd-model: unknown version");
  }
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> labels_line,
                       reader.Expect("labels", 2));
  LSD_ASSIGN_OR_RETURN(size_t n_labels, FieldToSize(labels_line[1]));
  if (n_labels != labels_.size()) {
    return Status::FailedPrecondition(
        "LoadModel: label count differs from the mediated schema");
  }
  for (size_t c = 0; c < n_labels; ++c) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> label_line,
                         reader.Expect("l", 2));
    if (label_line[1] != labels_.NameOf(static_cast<int>(c))) {
      return Status::FailedPrecondition(
          "LoadModel: label '" + label_line[1] +
          "' does not match the mediated schema at position " +
          std::to_string(c));
    }
  }
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> nl_header,
                       reader.Expect("node-labels", 2));
  LSD_ASSIGN_OR_RETURN(size_t n_node_labels, FieldToSize(nl_header[1]));
  gold_node_labels_.clear();
  for (size_t i = 0; i < n_node_labels; ++i) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> nl, reader.Expect("nl", 3));
    gold_node_labels_[nl[1]] = nl[2];
  }
  for (auto& learner : learners_) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> frame,
                         reader.Expect("learner", 3));
    if (frame[1] != learner->name()) {
      return Status::FailedPrecondition(
          "LoadModel: model has learner '" + frame[1] +
          "' where the configured roster expects '" + learner->name() +
          "' — construct the system with the same LsdConfig");
    }
    LSD_ASSIGN_OR_RETURN(size_t lines, FieldToSize(frame[2]));
    LSD_ASSIGN_OR_RETURN(std::string payload, reader.TakeLines(lines));
    LSD_RETURN_IF_ERROR(learner->LoadModel(payload));
  }
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> meta_frame,
                       reader.Expect("meta-block", 2));
  LSD_ASSIGN_OR_RETURN(size_t meta_lines, FieldToSize(meta_frame[1]));
  LSD_ASSIGN_OR_RETURN(std::string meta_payload, reader.TakeLines(meta_lines));
  LSD_ASSIGN_OR_RETURN(full_meta_, MetaLearner::Deserialize(meta_payload));
  return ExpectAtEnd(reader, "lsd-model");
}

Status LsdSystem::LoadModelFile(const std::string& path) {
  LSD_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  if (bytes.rfind(kLegacyModelMagic, 0) == 0) {
    LSD_RETURN_IF_ERROR(LoadModelFromLegacyText(bytes));
  } else {
    StatusOr<Artifact> decoded = DecodeArtifact(bytes, kModelArtifactKind);
    if (!decoded.ok()) {
      return Status(decoded.status().code(),
                    path + ": " + decoded.status().message());
    }
    LSD_RETURN_IF_ERROR(LoadModelFromArtifact(*decoded));
  }
  if (full_meta_.learner_count() != learners_.size() ||
      full_meta_.label_count() != labels_.size()) {
    return Status::FailedPrecondition(
        "LoadModel: meta-learner shape does not match the configuration");
  }
  node_labeler_.Clear();
  for (const auto& [tag, label] : gold_node_labels_) {
    node_labeler_.Set(tag, label);
  }
  meta_cache_.clear();
  meta_cache_[std::vector<bool>(learners_.size(), true)] = full_meta_;
  train_healthy_.assign(learners_.size(), true);
  train_report_ = RunReport();
  trained_ = true;
  return Status::OK();
}

Status LsdSystem::LoadModel(const std::string& path) {
  if (trained_) {
    return Status::FailedPrecondition(
        "LoadModel: system already trained; construct a fresh LsdSystem");
  }
  loaded_from_last_good_ = false;
  Status primary = LoadModelFile(path);
  if (primary.ok()) return primary;
  // Fall back to the newest last-good generation only for damage —
  // corruption (bad magic, truncation, checksum mismatch) or a missing
  // primary (a crash in SaveModel's rotate-then-write window leaves the
  // backup as the only copy). Config mismatches and version skew are the
  // caller's problem and must surface as-is.
  bool recoverable = primary.code() == StatusCode::kParseError ||
                     primary.code() == StatusCode::kDataLoss ||
                     primary.code() == StatusCode::kOutOfRange ||
                     primary.code() == StatusCode::kNotFound;
  if (!recoverable) return primary;
  Status fallback = LoadModelFile(path + ".lastgood");
  if (!fallback.ok()) return primary;  // the primary's error says what broke
  loaded_from_last_good_ = true;
  train_report_.notes.push_back(
      "model at '" + path + "' was unreadable (" + primary.message() +
      "); recovered from the last-good artifact");
  MetricsRegistry::Global().GetCounter("artifact.lastgood_recoveries")
      ->Increment();
  return Status::OK();
}

}  // namespace lsd
