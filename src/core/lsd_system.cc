#include "core/lsd_system.h"

#include <algorithm>
#include <chrono>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/serial.h"
#include "common/strings.h"
#include "common/trace.h"
#include "learners/content_matcher.h"
#include "learners/county_recognizer.h"
#include "learners/format_learner.h"
#include "learners/name_matcher.h"
#include "learners/naive_bayes_learner.h"

namespace lsd {
namespace {

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

LsdSystem::LsdSystem(Dtd mediated_schema, LsdConfig config,
                     const SynonymDictionary* synonyms)
    : mediated_schema_(std::move(mediated_schema)),
      config_(config),
      synonyms_(synonyms),
      labels_(mediated_schema_.AllTags()),
      converter_(config.converter_policy),
      handler_(config.astar_options),
      pool_(config.num_threads) {
  if (config_.use_name_matcher) {
    learners_.push_back(std::make_unique<NameMatcher>(config_.whirl_options));
  }
  if (config_.use_content_matcher) {
    learners_.push_back(
        std::make_unique<ContentMatcher>(config_.whirl_options));
  }
  if (config_.use_naive_bayes) {
    learners_.push_back(std::make_unique<NaiveBayesLearner>(config_.nb_alpha));
  }
  if (config_.use_xml_learner) {
    learners_.push_back(
        std::make_unique<XmlLearner>(&node_labeler_, config_.nb_alpha));
  }
  if (config_.use_county_recognizer) {
    learners_.push_back(
        std::make_unique<CountyRecognizer>(config_.county_label));
  }
  if (config_.use_format_learner) {
    learners_.push_back(std::make_unique<FormatLearner>(config_.nb_alpha));
  }
}

std::vector<std::string> LsdSystem::LearnerNames() const {
  std::vector<std::string> out;
  out.reserve(learners_.size());
  for (const auto& learner : learners_) out.push_back(learner->name());
  return out;
}

int LsdSystem::LearnerIndex(const std::string& name) const {
  for (size_t i = 0; i < learners_.size(); ++i) {
    if (learners_[i]->name() == name) return static_cast<int>(i);
  }
  return -1;
}

void LsdSystem::CapInstances(std::vector<Instance>* instances, size_t cap) {
  std::vector<Instance>& in = *instances;
  if (cap == 0 || in.size() <= cap) return;
  // Deterministic stride sampling keeps coverage across listings. The
  // sampled indices are strictly increasing, so the kept instances can be
  // moved down in place and the tail dropped — no copies either way.
  double stride = static_cast<double>(in.size()) / static_cast<double>(cap);
  for (size_t i = 0; i < cap; ++i) {
    size_t pick = static_cast<size_t>(static_cast<double>(i) * stride);
    if (pick != i) in[i] = std::move(in[pick]);
  }
  in.resize(cap);
}

Status LsdSystem::AddTrainingSource(const DataSource& source,
                                    const Mapping& gold) {
  if (trained_) {
    return Status::FailedPrecondition(
        "AddTrainingSource: system already trained; create a new system or "
        "add sources before Train()");
  }
  ExtractionOptions options;
  options.max_listings = config_.max_listings_train;
  options.synonyms = synonyms_;
  LSD_ASSIGN_OR_RETURN(std::vector<Column> columns,
                       ExtractColumns(source, options));
  for (Column& column : columns) {
    CapInstances(&column.instances, config_.max_instances_per_column_train);
  }
  // One stacking group per (source, tag) column: grouped cross-validation
  // keeps a held-out column's tag name out of the fold's training data.
  size_t added = 0;
  for (const Column& column : columns) {
    std::string label_name = gold.LabelOrOther(column.tag);
    int label = labels_.IndexOf(label_name);
    if (label < 0) continue;
    int group = next_group_id_++;
    for (const Instance& instance : column.instances) {
      training_examples_.push_back(TrainingExample{instance, label});
      training_group_ids_.push_back(group);
      ++added;
    }
  }
  if (added == 0) {
    return Status::InvalidArgument("AddTrainingSource: source '" +
                                   source.name + "' produced no examples");
  }
  for (const auto& [tag, label] : gold.entries()) {
    gold_node_labels_[tag] = label;
  }
  return Status::OK();
}

std::vector<std::string> LsdSystem::QuarantinedLearners() const {
  std::vector<std::string> out;
  for (size_t l = 0; l < learners_.size(); ++l) {
    if (l < train_healthy_.size() && !train_healthy_[l]) {
      out.push_back(learners_[l]->name());
    }
  }
  return out;
}

Status LsdSystem::Train(const Deadline& deadline) {
  if (learners_.empty()) {
    return Status::FailedPrecondition("Train: no learners configured");
  }
  if (training_examples_.empty()) {
    return Status::FailedPrecondition("Train: no training sources added");
  }
  TraceSpan train_span("train/system");
  MetricsRegistry::Global()
      .GetCounter("train.examples")
      ->Increment(training_examples_.size());
  // Gold labels drive the XML learner's structure tokens during training.
  node_labeler_.Clear();
  for (const auto& [tag, label] : gold_node_labels_) {
    node_labeler_.Set(tag, label);
  }

  true_labels_.clear();
  true_labels_.reserve(training_examples_.size());
  for (const TrainingExample& example : training_examples_) {
    true_labels_.push_back(example.label);
  }

  cv_predictions_.assign(learners_.size(), {});
  CrossValidationOptions cv_options;
  cv_options.folds = config_.cv_folds;
  cv_options.seed = config_.seed;
  cv_options.group_ids = training_group_ids_;
  cv_options.pool = &pool_;
  // Each learner's CV + final fit is independent of every other learner's
  // (they read the shared training set and the frozen node-label map, and
  // write only their own model state and cv_predictions_ slot), so the
  // roster trains concurrently; folds inside each CV run nest on the same
  // pool. Fold seeds derive from config_.seed per learner, never from a
  // shared RNG, keeping results bit-identical for any thread count.
  //
  // Fault tolerance: a learner whose CV or fit errors is quarantined, not
  // fatal. Each task writes its outcome into its own slot and returns OK,
  // so ParallelFor's first-error-wins semantics never mask which learners
  // failed; the quarantined set depends only on per-learner outcomes,
  // never on thread scheduling.
  train_report_ = RunReport();
  train_healthy_.assign(learners_.size(), true);
  std::vector<Status> outcomes(learners_.size(), Status::OK());
  LSD_RETURN_IF_ERROR(pool_.ParallelFor(
      learners_.size(), [&](size_t l) -> Status {
        TraceSpan span("train/learner", learners_[l]->name());
        auto start = std::chrono::steady_clock::now();
        outcomes[l] = [&]() -> Status {
          if (deadline.expired()) {
            return Status::DeadlineExceeded(
                "training deadline expired before learner '" +
                learners_[l]->name() + "' started");
          }
          LSD_RETURN_IF_ERROR(
              CheckFault(FaultSite::kLearnerTrain, learners_[l]->name()));
          // Stacking first (the learner must not have seen the held-out
          // folds), then the final model on the full training set.
          LSD_ASSIGN_OR_RETURN(
              cv_predictions_[l],
              CrossValidatePredictions(*learners_[l], training_examples_,
                                       labels_, cv_options));
          return learners_[l]->Train(training_examples_, labels_);
        }();
        MetricsRegistry::Global()
            .GetHistogram("train.micros." + learners_[l]->name())
            ->Record(ElapsedMicros(start));
        return Status::OK();
      }));

  size_t survivors = 0;
  for (size_t l = 0; l < learners_.size(); ++l) {
    if (outcomes[l].ok()) {
      ++survivors;
      continue;
    }
    train_healthy_[l] = false;
    cv_predictions_[l].clear();
    train_report_.Quarantine(learners_[l]->name(), "train", outcomes[l]);
    if (outcomes[l].code() == StatusCode::kDeadlineExceeded) {
      train_report_.deadline_hit = true;
      MetricsRegistry::Global().GetCounter("deadline.train_hits")->Increment();
    }
  }
  if (survivors == 0) {
    for (const Status& outcome : outcomes) {
      if (!outcome.ok()) {
        return Status(outcome.code(),
                      "Train: every learner failed; first error: " +
                          outcome.message());
      }
    }
  }

  // The stacking meta-learner trains over the survivors only, so its
  // weights renormalize over the degraded roster automatically.
  std::vector<std::vector<Prediction>> survivor_cv;
  survivor_cv.reserve(survivors);
  for (size_t l = 0; l < learners_.size(); ++l) {
    if (train_healthy_[l]) survivor_cv.push_back(cv_predictions_[l]);
  }
  LSD_RETURN_IF_ERROR(full_meta_.Train(survivor_cv, true_labels_,
                                       labels_.size(), config_.meta_options));
  meta_cache_.clear();
  meta_cache_[train_healthy_] = full_meta_;
  trained_ = true;
  return Status::OK();
}

void LsdSystem::AddConstraint(std::unique_ptr<Constraint> constraint) {
  constraints_.Add(std::move(constraint));
}

StatusOr<std::vector<bool>> LsdSystem::ResolveLearnerMask(
    const std::vector<std::string>& names) const {
  std::vector<bool> mask(learners_.size(), names.empty());
  for (const std::string& name : names) {
    int index = LearnerIndex(name);
    if (index < 0) {
      return Status::NotFound("unknown or inactive learner: " + name);
    }
    mask[static_cast<size_t>(index)] = true;
  }
  bool any = false;
  for (bool b : mask) any = any || b;
  if (!any) {
    return Status::InvalidArgument("MatchOptions: no learners selected");
  }
  return mask;
}

StatusOr<const MetaLearner*> LsdSystem::MetaForMask(
    const std::vector<bool>& mask) {
  auto it = meta_cache_.find(mask);
  if (it != meta_cache_.end()) return &it->second;
  if (cv_predictions_.empty()) {
    return Status::FailedPrecondition(
        "subset meta-learners are unavailable on a model restored with "
        "LoadModel; match with the full learner roster or set "
        "use_meta_learner = false");
  }
  std::vector<std::vector<Prediction>> subset;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) subset.push_back(cv_predictions_[i]);
  }
  MetaLearner meta;
  LSD_RETURN_IF_ERROR(
      meta.Train(subset, true_labels_, labels_.size(), config_.meta_options));
  auto [inserted, unused] = meta_cache_.emplace(mask, std::move(meta));
  return &inserted->second;
}

StatusOr<SourcePredictions> LsdSystem::PredictSource(const DataSource& source,
                                                     const Deadline& deadline) {
  if (!trained_) {
    return Status::FailedPrecondition("PredictSource: call Train() first");
  }
  TraceSpan predict_span("predict/source", source.name);
  SourcePredictions out;
  out.learner_healthy = train_healthy_;
  out.report = train_report_;
  ExtractionOptions options;
  options.max_listings = config_.max_listings_match;
  options.synonyms = synonyms_;
  LSD_ASSIGN_OR_RETURN(out.columns, ExtractColumns(source, options));
  for (Column& column : out.columns) {
    CapInstances(&column.instances, config_.max_instances_per_column_match);
    if (column.instances.empty()) {
      // A declared tag with no sampled data still needs a prediction; the
      // name matcher can work from the tag name alone.
      Instance synthetic;
      synthetic.tag_name = column.tag;
      synthetic.name_path = column.tag;
      column.instances.push_back(std::move(synthetic));
    }
    out.tags.push_back(column.tag);
  }

  const size_t n_tags = out.columns.size();
  const size_t n_learners = learners_.size();
  int xml_index = LearnerIndex(kXmlLearnerName);
  out.predictions.assign(n_tags, {});

  for (size_t t = 0; t < n_tags; ++t) {
    out.predictions[t].assign(n_learners, {});
  }

  // Pass 1: every healthy learner except the XML learner predicts each
  // instance. One task per (column, learner) pair; each task owns exactly
  // one pre-sized prediction bucket and Predict() is const on every
  // learner, so tasks share no mutable state and output order is fixed by
  // the slot. A pair that errors (fault injection at the Predict seam)
  // records into its own outcome slot; the learner is then marked
  // unhealthy for this run — the set of unhealthy learners is a function
  // of per-pair outcomes only, identical for any thread count.
  std::vector<std::pair<size_t, size_t>> pass1;
  pass1.reserve(n_tags * n_learners);
  for (size_t t = 0; t < n_tags; ++t) {
    for (size_t l = 0; l < n_learners; ++l) {
      if (static_cast<int>(l) == xml_index) continue;
      if (!out.learner_healthy[l]) continue;
      pass1.emplace_back(t, l);
    }
  }
  std::vector<Status> pair_outcomes(pass1.size(), Status::OK());
  LSD_RETURN_IF_ERROR(pool_.ParallelFor(pass1.size(), [&](size_t k) -> Status {
    const auto [t, l] = pass1[k];
    Status fault = CheckFault(FaultSite::kLearnerPredict,
                              learners_[l]->name() + "/" + out.tags[t]);
    if (!fault.ok()) {
      pair_outcomes[k] = std::move(fault);
      return Status::OK();
    }
    TraceSpan span("predict/learner", learners_[l]->name());
    auto start = std::chrono::steady_clock::now();
    const Column& column = out.columns[t];
    auto& bucket = out.predictions[t][l];
    bucket.reserve(column.instances.size());
    for (const Instance& instance : column.instances) {
      bucket.push_back(learners_[l]->Predict(instance));
    }
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetHistogram("predict.micros." + learners_[l]->name())
        ->Record(ElapsedMicros(start));
    registry.GetCounter("predict.instances")->Increment(column.instances.size());
    return Status::OK();
  }));
  for (size_t k = 0; k < pass1.size(); ++k) {
    if (pair_outcomes[k].ok()) continue;
    const size_t l = pass1[k].second;
    out.learner_healthy[l] = false;
    out.report.Quarantine(learners_[l]->name(), "predict", pair_outcomes[k]);
  }

  bool xml_healthy = xml_index >= 0 &&
                     out.learner_healthy[static_cast<size_t>(xml_index)];
  if (xml_healthy && deadline.expired()) {
    out.learner_healthy[static_cast<size_t>(xml_index)] = false;
    out.report.deadline_hit = true;
    MetricsRegistry::Global().GetCounter("deadline.predict_hits")->Increment();
    out.report.notes.push_back(
        "deadline expired before the XML-learner refinement pass; matched "
        "without the XML learner");
    xml_healthy = false;
  }
  if (xml_healthy) {
    // Provisional node labels for the target source: equal-weight average
    // of the other learners per tag, then argmax (Table 2 testing step 2).
    node_labeler_.Clear();
    for (const auto& [tag, label] : gold_node_labels_) {
      node_labeler_.Set(tag, label);
    }
    // Each tag's provisional label depends only on that tag's pass-1
    // predictions; compute them into per-tag slots, then apply to the
    // (shared, hence serial) node labeler in tag order.
    std::vector<int> provisional(n_tags, -1);
    LSD_RETURN_IF_ERROR(pool_.ParallelFor(n_tags, [&](size_t t) -> Status {
      std::vector<Prediction> instance_preds;
      const size_t n_instances = out.columns[t].instances.size();
      instance_preds.reserve(n_instances);
      for (size_t i = 0; i < n_instances; ++i) {
        Prediction combined(labels_.size());
        size_t used = 0;
        for (size_t l = 0; l < n_learners; ++l) {
          if (static_cast<int>(l) == xml_index) continue;
          if (!out.learner_healthy[l]) continue;
          for (size_t c = 0; c < labels_.size(); ++c) {
            combined.scores[c] += out.predictions[t][l][i].scores[c];
          }
          ++used;
        }
        if (used == 0) combined = Prediction::Uniform(labels_.size());
        combined.Normalize();
        instance_preds.push_back(std::move(combined));
      }
      LSD_ASSIGN_OR_RETURN(Prediction tag_pred,
                           converter_.Convert(instance_preds));
      provisional[t] = tag_pred.Best();
      return Status::OK();
    }));
    for (size_t t = 0; t < n_tags; ++t) {
      // Target-source tags override gold entries with the same name.
      node_labeler_.Set(out.tags[t], labels_.NameOf(provisional[t]));
    }
    // Pass 2: the XML learner with provisional labels in place (frozen for
    // the duration of the parallel region; one task per column). Same
    // quarantine discipline as pass 1: per-column outcomes into slots.
    auto& xml_learner = learners_[static_cast<size_t>(xml_index)];
    std::vector<Status> xml_outcomes(n_tags, Status::OK());
    LSD_RETURN_IF_ERROR(pool_.ParallelFor(n_tags, [&](size_t t) -> Status {
      Status fault = CheckFault(FaultSite::kLearnerPredict,
                                xml_learner->name() + "/" + out.tags[t]);
      if (!fault.ok()) {
        xml_outcomes[t] = std::move(fault);
        return Status::OK();
      }
      TraceSpan span("predict/learner", xml_learner->name());
      auto start = std::chrono::steady_clock::now();
      auto& bucket = out.predictions[t][static_cast<size_t>(xml_index)];
      bucket.reserve(out.columns[t].instances.size());
      for (const Instance& instance : out.columns[t].instances) {
        bucket.push_back(xml_learner->Predict(instance));
      }
      MetricsRegistry& registry = MetricsRegistry::Global();
      registry.GetHistogram("predict.micros." + xml_learner->name())
          ->Record(ElapsedMicros(start));
      registry.GetCounter("predict.instances")
          ->Increment(out.columns[t].instances.size());
      return Status::OK();
    }));
    for (size_t t = 0; t < n_tags; ++t) {
      if (xml_outcomes[t].ok()) continue;
      out.learner_healthy[static_cast<size_t>(xml_index)] = false;
      out.report.Quarantine(xml_learner->name(), "predict", xml_outcomes[t]);
    }
    // Restore gold labels so later training-phase consumers see them.
    node_labeler_.Clear();
    for (const auto& [tag, label] : gold_node_labels_) {
      node_labeler_.Set(tag, label);
    }
  }

  // Graceful degradation ends where the ensemble does: no survivors means
  // there is nothing to combine, and that is a hard error.
  bool any_healthy = false;
  for (bool healthy : out.learner_healthy) any_healthy = any_healthy || healthy;
  if (!any_healthy) {
    std::string detail = out.report.incidents.empty()
                             ? std::string("no incidents recorded")
                             : out.report.incidents.front().learner + ": " +
                                   out.report.incidents.front().error;
    return Status::FailedPrecondition(
        "PredictSource: every learner failed (first incident — " + detail +
        ")");
  }
  return out;
}

StatusOr<MatchResult> LsdSystem::MatchWithPredictions(
    const SourcePredictions& predictions, const DataSource& source,
    const MatchOptions& options,
    const std::vector<FeedbackConstraint>& feedback) {
  if (!trained_) {
    return Status::FailedPrecondition("MatchWithPredictions: call Train() first");
  }
  TraceSpan match_span("match/source", source.name);
  LSD_ASSIGN_OR_RETURN(std::vector<bool> mask,
                       ResolveLearnerMask(options.learners));
  MatchResult result;
  result.report = predictions.report;

  // Drop quarantined learners from the requested roster. A degraded
  // ensemble still matches; only an empty one errors.
  std::vector<bool> effective = mask;
  if (predictions.learner_healthy.size() == learners_.size()) {
    for (size_t l = 0; l < learners_.size(); ++l) {
      if (effective[l] && !predictions.learner_healthy[l]) {
        effective[l] = false;
        if (!options.learners.empty()) {
          result.report.notes.push_back("requested learner '" +
                                        learners_[l]->name() +
                                        "' is quarantined; matched without it");
        }
      }
    }
  }
  bool any_effective = false;
  for (bool b : effective) any_effective = any_effective || b;
  if (!any_effective) {
    return Status::FailedPrecondition(
        "MatchWithPredictions: every selected learner is quarantined");
  }

  const MetaLearner* meta = nullptr;
  if (options.use_meta_learner) {
    StatusOr<const MetaLearner*> meta_or = MetaForMask(effective);
    if (meta_or.ok()) {
      meta = meta_or.value();
    } else if (effective != mask && cv_predictions_.empty()) {
      // A LoadModel-restored system has no stored CV predictions, so a
      // fresh survivor meta-learner cannot be trained; degrade to the
      // unweighted average rather than refusing to match.
      result.report.notes.push_back(
          "meta-learner unavailable for the degraded roster on a loaded "
          "model; combined surviving learners by unweighted average");
    } else {
      return meta_or.status();
    }
  }
  result.tags = predictions.tags;
  const size_t n_tags = predictions.tags.size();
  result.tag_predictions.reserve(n_tags);
  for (size_t t = 0; t < n_tags; ++t) {
    const size_t n_instances = predictions.columns[t].instances.size();
    std::vector<Prediction> instance_preds;
    instance_preds.reserve(n_instances);
    for (size_t i = 0; i < n_instances; ++i) {
      std::vector<Prediction> subset;
      for (size_t l = 0; l < learners_.size(); ++l) {
        if (effective[l]) subset.push_back(predictions.predictions[t][l][i]);
      }
      if (meta != nullptr) {
        LSD_ASSIGN_OR_RETURN(Prediction combined, meta->Combine(subset));
        instance_preds.push_back(std::move(combined));
      } else {
        LSD_ASSIGN_OR_RETURN(Prediction combined, AveragePredictions(subset));
        instance_preds.push_back(std::move(combined));
      }
    }
    LSD_ASSIGN_OR_RETURN(Prediction tag_pred,
                         converter_.Convert(instance_preds));
    // Reject option (Section 7): a tag whose best label is weaker than the
    // threshold probably matches nothing in the mediated schema.
    if (options.other_threshold > 0.0) {
      int best = tag_pred.Best();
      int other = labels_.other_index();
      if (best >= 0 && best != other &&
          tag_pred.scores[static_cast<size_t>(best)] <
              options.other_threshold) {
        double boosted = std::max(tag_pred.scores[static_cast<size_t>(other)],
                                  options.other_threshold);
        tag_pred.scores[static_cast<size_t>(other)] = boosted;
        tag_pred.Normalize();
      }
    }
    result.tag_predictions.push_back(std::move(tag_pred));
  }

  ConstraintContext context(&source.schema, &predictions.columns);
  std::vector<const Constraint*> active_constraints;
  for (const Constraint* c : constraints_.All()) {
    bool is_column = c->type() == ConstraintType::kColumn;
    switch (options.constraint_filter) {
      case ConstraintFilter::kAll:
        active_constraints.push_back(c);
        break;
      case ConstraintFilter::kSchemaOnly:
        if (!is_column) active_constraints.push_back(c);
        break;
      case ConstraintFilter::kDataOnly:
        if (is_column) active_constraints.push_back(c);
        break;
    }
  }
  if (options.use_constraint_handler &&
      (!active_constraints.empty() || !feedback.empty())) {
    LSD_ASSIGN_OR_RETURN(
        HandlerResult handled,
        handler_.ComputeMapping(result.tag_predictions, active_constraints,
                                feedback, labels_, context,
                                options.deadline));
    result.mapping = std::move(handled.mapping);
    result.search_cost = handled.cost;
    result.search_expanded = handled.expanded;
    result.search_truncated = handled.truncated;
    if (handled.deadline_hit) {
      result.report.deadline_hit = true;
      MetricsRegistry::Global().GetCounter("deadline.search_hits")->Increment();
      result.report.notes.push_back(
          "constraint-search deadline expired; mapping is the greedy "
          "anytime completion");
    }
  } else {
    LSD_ASSIGN_OR_RETURN(
        result.mapping,
        ArgmaxMapping(result.tag_predictions, labels_, context));
  }
  // Snapshot after the last pipeline stage so the report carries every
  // counter this run touched (plus whatever earlier runs accumulated —
  // the registry is process-wide).
  result.report.metrics = MetricsRegistry::Global().Snapshot();
  return result;
}

StatusOr<MatchResult> LsdSystem::MatchSource(
    const DataSource& source, const MatchOptions& options,
    const std::vector<FeedbackConstraint>& feedback) {
  LSD_ASSIGN_OR_RETURN(SourcePredictions predictions,
                       PredictSource(source, options.deadline));
  return MatchWithPredictions(predictions, source, options, feedback);
}


Status LsdSystem::SaveModel(const std::string& path) const {
  if (!trained_) {
    return Status::FailedPrecondition("SaveModel: call Train() first");
  }
  if (!QuarantinedLearners().empty()) {
    return Status::FailedPrecondition(
        "SaveModel: learner '" + QuarantinedLearners().front() +
        "' is quarantined; a degraded ensemble cannot be persisted — retrain "
        "cleanly first");
  }
  std::string out = "lsd-model 1\n";
  out += StrFormat("labels %zu\n", labels_.size());
  for (const std::string& label : labels_.labels()) {
    out += "l " + label + "\n";
  }
  out += StrFormat("node-labels %zu\n", gold_node_labels_.size());
  for (const auto& [tag, label] : gold_node_labels_) {
    out += "nl " + tag + " " + label + "\n";
  }
  for (const auto& learner : learners_) {
    LSD_ASSIGN_OR_RETURN(std::string payload, learner->SerializeModel());
    out += StrFormat("learner %s %zu\n", learner->name().c_str(),
                     CountLines(payload));
    out += payload;
  }
  std::string meta = full_meta_.Serialize();
  out += StrFormat("meta-block %zu\n", CountLines(meta));
  out += meta;
  return WriteStringToFile(path, out);
}

Status LsdSystem::LoadModel(const std::string& path) {
  if (trained_) {
    return Status::FailedPrecondition(
        "LoadModel: system already trained; construct a fresh LsdSystem");
  }
  LSD_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  LineReader reader(text);
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       reader.Expect("lsd-model", 2));
  if (header[1] != "1") {
    return Status::ParseError("lsd-model: unknown version");
  }
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> labels_line,
                       reader.Expect("labels", 2));
  LSD_ASSIGN_OR_RETURN(size_t n_labels, FieldToSize(labels_line[1]));
  if (n_labels != labels_.size()) {
    return Status::FailedPrecondition(
        "LoadModel: label count differs from the mediated schema");
  }
  for (size_t c = 0; c < n_labels; ++c) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> label_line,
                         reader.Expect("l", 2));
    if (label_line[1] != labels_.NameOf(static_cast<int>(c))) {
      return Status::FailedPrecondition(
          "LoadModel: label '" + label_line[1] +
          "' does not match the mediated schema at position " +
          std::to_string(c));
    }
  }
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> nl_header,
                       reader.Expect("node-labels", 2));
  LSD_ASSIGN_OR_RETURN(size_t n_node_labels, FieldToSize(nl_header[1]));
  gold_node_labels_.clear();
  for (size_t i = 0; i < n_node_labels; ++i) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> nl, reader.Expect("nl", 3));
    gold_node_labels_[nl[1]] = nl[2];
  }
  for (auto& learner : learners_) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> frame,
                         reader.Expect("learner", 3));
    if (frame[1] != learner->name()) {
      return Status::FailedPrecondition(
          "LoadModel: model has learner '" + frame[1] +
          "' where the configured roster expects '" + learner->name() +
          "' — construct the system with the same LsdConfig");
    }
    LSD_ASSIGN_OR_RETURN(size_t lines, FieldToSize(frame[2]));
    LSD_ASSIGN_OR_RETURN(std::string payload, reader.TakeLines(lines));
    LSD_RETURN_IF_ERROR(learner->LoadModel(payload));
  }
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> meta_frame,
                       reader.Expect("meta-block", 2));
  LSD_ASSIGN_OR_RETURN(size_t meta_lines, FieldToSize(meta_frame[1]));
  LSD_ASSIGN_OR_RETURN(std::string meta_payload, reader.TakeLines(meta_lines));
  LSD_ASSIGN_OR_RETURN(full_meta_, MetaLearner::Deserialize(meta_payload));
  if (full_meta_.learner_count() != learners_.size() ||
      full_meta_.label_count() != labels_.size()) {
    return Status::FailedPrecondition(
        "LoadModel: meta-learner shape does not match the configuration");
  }
  node_labeler_.Clear();
  for (const auto& [tag, label] : gold_node_labels_) {
    node_labeler_.Set(tag, label);
  }
  meta_cache_.clear();
  meta_cache_[std::vector<bool>(learners_.size(), true)] = full_meta_;
  train_healthy_.assign(learners_.size(), true);
  train_report_ = RunReport();
  trained_ = true;
  return Status::OK();
}

}  // namespace lsd
