#include "ml/prediction.h"

#include "common/linalg.h"
#include "common/logging.h"
#include "common/strings.h"

namespace lsd {

LabelSpace::LabelSpace(std::vector<std::string> labels)
    : labels_(std::move(labels)) {
  bool has_other = false;
  for (const std::string& label : labels_) {
    if (label == kOtherLabel) has_other = true;
  }
  if (!has_other) labels_.emplace_back(kOtherLabel);
  for (size_t i = 0; i < labels_.size(); ++i) {
    index_[labels_[i]] = static_cast<int>(i);
    if (labels_[i] == kOtherLabel) other_index_ = static_cast<int>(i);
  }
}

int LabelSpace::IndexOf(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? -1 : it->second;
}

Prediction Prediction::Uniform(size_t n_labels) {
  Prediction p(n_labels);
  if (n_labels == 0) return p;
  double w = 1.0 / static_cast<double>(n_labels);
  for (double& s : p.scores) s = w;
  return p;
}

Prediction Prediction::PointMass(size_t n_labels, int label) {
  // Callers routinely feed LabelSpace::IndexOf results here; that returns
  // -1 for unknown labels, which would index out of bounds. Fail loudly
  // instead of corrupting memory.
  LSD_CHECK(label >= 0 && static_cast<size_t>(label) < n_labels);
  Prediction p(n_labels);
  p.scores[static_cast<size_t>(label)] = 1.0;
  return p;
}

int Prediction::Best() const {
  if (scores.empty()) return -1;
  int best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[static_cast<size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

void Prediction::Normalize() { NormalizeToDistribution(&scores); }

std::string Prediction::ToString(const LabelSpace& labels) const {
  std::string out = "<";
  for (size_t i = 0; i < scores.size(); ++i) {
    if (i > 0) out += ", ";
    out += labels.NameOf(static_cast<int>(i));
    out += StrFormat(":%.3f", scores[i]);
  }
  out += ">";
  return out;
}

StatusOr<Prediction> AveragePredictions(
    const std::vector<Prediction>& predictions) {
  if (predictions.empty()) {
    return Status::InvalidArgument("AveragePredictions: no predictions");
  }
  Prediction out(predictions[0].size());
  for (const Prediction& p : predictions) {
    if (p.size() != out.size()) {
      return Status::InvalidArgument("AveragePredictions: size mismatch");
    }
    for (size_t i = 0; i < p.size(); ++i) out.scores[i] += p.scores[i];
  }
  out.Normalize();
  return out;
}

}  // namespace lsd
