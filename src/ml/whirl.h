#ifndef LSD_ML_WHIRL_H_
#define LSD_ML_WHIRL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ml/prediction.h"
#include "text/tfidf.h"

namespace lsd {

/// Options for `WhirlClassifier`.
struct WhirlOptions {
  /// Number of nearest neighbours consulted per query.
  size_t k = 7;
  /// Neighbours with cosine similarity below this threshold are ignored —
  /// the paper's "within a Δ distance" rule.
  double min_similarity = 0.05;
};

/// Whirl-style soft nearest-neighbour classifier (Cohen & Hirsh 1998, as
/// used by the paper's name and content matchers): training examples are
/// stored as TF/IDF vectors; a query is scored against its k nearest
/// stored examples by cosine similarity, and each label's confidence is
/// the noisy-or combination 1 - prod(1 - sim_i) of its supporting
/// neighbours, normalized across labels.
class WhirlClassifier {
 public:
  explicit WhirlClassifier(WhirlOptions options = WhirlOptions())
      : options_(options) {}

  /// Trains from (token-bag, label) pairs; rebuilds the TF/IDF corpus.
  Status Train(const std::vector<std::vector<std::string>>& documents,
               const std::vector<int>& labels, size_t n_labels);

  /// Returns the label distribution for a token bag; uniform-zero (all
  /// mass on nothing → normalized to uniform) when no stored example is
  /// within the similarity threshold.
  Prediction Predict(const std::vector<std::string>& tokens) const;

  /// Predicts a batch of token bags, one prediction per document. Each
  /// result is bit-identical to a standalone Predict call — both paths run
  /// the same scoring core (ScoreQuery) — while the batch reuses one
  /// neighbour buffer and the per-thread accumulator slab across the whole
  /// batch instead of regrowing them per call.
  void PredictBatch(const std::vector<std::vector<std::string>>& documents,
                    std::vector<Prediction>* out) const;

  bool trained() const { return trained_; }
  size_t example_count() const { return examples_.size(); }
  size_t label_count() const { return n_labels_; }

  /// Serializes the trained model (options, TF/IDF statistics, stored
  /// example vectors); the inverted index is rebuilt on load.
  std::string Serialize() const;

  /// Restores a model produced by `Serialize`.
  static StatusOr<WhirlClassifier> Deserialize(std::string_view text);

 private:
  struct StoredExample {
    SparseVector vector;
    int label;
  };

  /// The scoring core shared by Predict and PredictBatch: inverted-index
  /// similarity accumulation, threshold, top-k, noisy-or. `neighbours` is
  /// caller-provided scratch (cleared here) so batches can reuse one
  /// allocation.
  Prediction ScoreQuery(const SparseVector& query,
                        std::vector<std::pair<double, int>>* neighbours) const;

  WhirlOptions options_;
  bool trained_ = false;
  size_t n_labels_ = 0;
  TfIdfModel tfidf_;
  std::vector<StoredExample> examples_;
  /// Inverted index: postings_[token_id] lists (example index, weight) so
  /// a query only touches examples sharing at least one token. Makes
  /// Predict O(query postings) instead of O(|examples|).
  std::vector<std::vector<std::pair<int, double>>> postings_;
};

}  // namespace lsd

#endif  // LSD_ML_WHIRL_H_
