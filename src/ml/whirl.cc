#include "ml/whirl.h"

#include <algorithm>

#include "common/serial.h"
#include "common/strings.h"

namespace lsd {

Status WhirlClassifier::Train(
    const std::vector<std::vector<std::string>>& documents,
    const std::vector<int>& labels, size_t n_labels) {
  if (documents.size() != labels.size()) {
    return Status::InvalidArgument("Whirl: documents/labels mismatch");
  }
  if (documents.empty()) {
    return Status::InvalidArgument("Whirl: empty training set");
  }
  if (n_labels == 0) return Status::InvalidArgument("Whirl: no labels");
  n_labels_ = n_labels;
  tfidf_ = TfIdfModel();
  examples_.clear();
  for (const auto& doc : documents) tfidf_.AddDocument(doc);
  tfidf_.Finalize();
  examples_.reserve(documents.size());
  postings_.assign(tfidf_.vocabulary().size(), {});
  for (size_t i = 0; i < documents.size(); ++i) {
    if (labels[i] < 0 || static_cast<size_t>(labels[i]) >= n_labels) {
      return Status::InvalidArgument("Whirl: label out of range");
    }
    SparseVector vec = tfidf_.Vectorize(documents[i]);
    for (const auto& [token, weight] : vec.entries()) {
      postings_[static_cast<size_t>(token)].emplace_back(static_cast<int>(i),
                                                         weight);
    }
    examples_.push_back({std::move(vec), labels[i]});
  }
  trained_ = true;
  return Status::OK();
}

Prediction WhirlClassifier::Predict(
    const std::vector<std::string>& tokens) const {
  Prediction out(n_labels_);
  if (!trained_) return out;
  std::vector<std::pair<double, int>> neighbours;
  return ScoreQuery(tfidf_.Vectorize(tokens), &neighbours);
}

void WhirlClassifier::PredictBatch(
    const std::vector<std::vector<std::string>>& documents,
    std::vector<Prediction>* out) const {
  out->clear();
  out->reserve(documents.size());
  if (!trained_) {
    for (size_t d = 0; d < documents.size(); ++d) {
      out->push_back(Prediction(n_labels_));
    }
    return;
  }
  std::vector<std::pair<double, int>> neighbours;
  for (const std::vector<std::string>& tokens : documents) {
    out->push_back(ScoreQuery(tfidf_.Vectorize(tokens), &neighbours));
  }
}

Prediction WhirlClassifier::ScoreQuery(
    const SparseVector& query,
    std::vector<std::pair<double, int>>* neighbours_scratch) const {
  Prediction out(n_labels_);
  if (query.empty()) {
    out.Normalize();  // uniform: nothing to go on
    return out;
  }
  // Accumulate similarities through the inverted index: only examples
  // sharing a token with the query are touched. Vectors are unit-norm, so
  // the accumulated dot product is the cosine similarity. The accumulator
  // is a dense per-thread scratch slab (no hashing in the inner loop);
  // -1 marks untouched slots and the touched list drives a sparse reset,
  // so the slab amortizes to O(postings) per query. thread_local keeps
  // Predict safe under the parallel matching runtime.
  thread_local std::vector<double> accumulator;
  thread_local std::vector<int> touched;
  if (accumulator.size() < examples_.size()) {
    accumulator.resize(examples_.size(), -1.0);
  }
  for (const auto& [token, q_weight] : query.entries()) {
    for (const auto& [example, e_weight] :
         postings_[static_cast<size_t>(token)]) {
      double& slot = accumulator[static_cast<size_t>(example)];
      if (slot < 0.0) {
        slot = q_weight * e_weight;
        touched.push_back(example);
      } else {
        slot += q_weight * e_weight;
      }
    }
  }
  // (similarity, example index); examples visited in index order purely
  // for tidiness — ties are broken by index below either way.
  std::sort(touched.begin(), touched.end());
  std::vector<std::pair<double, int>>& neighbours = *neighbours_scratch;
  neighbours.clear();
  neighbours.reserve(touched.size());
  for (int example : touched) {
    double sim = accumulator[static_cast<size_t>(example)];
    accumulator[static_cast<size_t>(example)] = -1.0;  // sparse reset
    if (sim >= options_.min_similarity) {
      neighbours.emplace_back(sim, example);
    }
  }
  touched.clear();
  if (neighbours.empty()) {
    out.Normalize();
    return out;
  }
  size_t k = std::min(options_.k, neighbours.size());
  std::partial_sort(neighbours.begin(), neighbours.begin() + static_cast<long>(k),
                    neighbours.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  // Noisy-or per label over the top-k neighbours. Similarity is capped
  // below 1 so an exact duplicate cannot zero out every other label — the
  // meta-learner needs soft scores to weigh learners against each other.
  constexpr double kSimilarityCap = 0.95;
  std::vector<double> miss(n_labels_, 1.0);
  for (size_t i = 0; i < k; ++i) {
    double sim = std::min(neighbours[i].first, kSimilarityCap);
    int label = examples_[static_cast<size_t>(neighbours[i].second)].label;
    miss[static_cast<size_t>(label)] *= (1.0 - sim);
  }
  // A small smoothing floor keeps the normalized output soft even when a
  // single label holds all neighbours — downstream stacking needs graded
  // confidences, not 1/0 votes.
  constexpr double kScoreFloor = 1e-3;
  for (size_t c = 0; c < n_labels_; ++c) {
    out.scores[c] = (1.0 - miss[c]) + kScoreFloor;
  }
  out.Normalize();
  return out;
}


std::string WhirlClassifier::Serialize() const {
  // Version 2 marks the framed tfidf block as the escaped-token format;
  // whirl's own lines carry only numbers. Version-1 files still load.
  std::string out = StrFormat("whirl 2 %zu %.17g %zu %zu\n", options_.k,
                              options_.min_similarity, n_labels_,
                              examples_.size());
  std::string tfidf = tfidf_.Serialize();
  out += StrFormat("tfidf-block %zu\n", CountLines(tfidf));
  out += tfidf;
  for (const StoredExample& example : examples_) {
    out += StrFormat("example %d %zu", example.label, example.vector.size());
    for (const auto& [id, weight] : example.vector.entries()) {
      out += StrFormat(" %d %.17g", id, weight);
    }
    out += "\n";
  }
  return out;
}

StatusOr<WhirlClassifier> WhirlClassifier::Deserialize(std::string_view text) {
  LineReader reader(text);
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       reader.Expect("whirl", 6));
  if (header[1] != "1" && header[1] != "2") {
    return Status::ParseError("whirl: unknown version");
  }
  WhirlClassifier out;
  LSD_ASSIGN_OR_RETURN(out.options_.k, FieldToSize(header[2]));
  LSD_ASSIGN_OR_RETURN(out.options_.min_similarity, FieldToDouble(header[3]));
  LSD_ASSIGN_OR_RETURN(out.n_labels_, FieldToSize(header[4]));
  LSD_ASSIGN_OR_RETURN(size_t n_examples, FieldToSize(header[5]));

  LSD_ASSIGN_OR_RETURN(std::vector<std::string> block,
                       reader.Expect("tfidf-block", 2));
  LSD_ASSIGN_OR_RETURN(size_t tfidf_lines, FieldToSize(block[1]));
  LSD_ASSIGN_OR_RETURN(std::string tfidf_text, reader.TakeLines(tfidf_lines));
  LSD_ASSIGN_OR_RETURN(out.tfidf_, TfIdfModel::Deserialize(tfidf_text));

  out.postings_.assign(out.tfidf_.vocabulary().size(), {});
  for (size_t e = 0; e < n_examples; ++e) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         reader.Expect("example", 3));
    StoredExample example;
    LSD_ASSIGN_OR_RETURN(example.label, FieldToInt(fields[1]));
    LSD_ASSIGN_OR_RETURN(size_t nnz, FieldToSize(fields[2]));
    if (fields.size() != 3 + 2 * nnz ||
        example.label < 0 ||
        static_cast<size_t>(example.label) >= out.n_labels_) {
      return Status::ParseError("whirl: malformed example line");
    }
    std::vector<std::pair<int, double>> pairs;
    pairs.reserve(nnz);
    for (size_t i = 0; i < nnz; ++i) {
      LSD_ASSIGN_OR_RETURN(int id, FieldToInt(fields[3 + 2 * i]));
      LSD_ASSIGN_OR_RETURN(double weight, FieldToDouble(fields[4 + 2 * i]));
      if (id < 0 || static_cast<size_t>(id) >= out.postings_.size()) {
        return Status::ParseError("whirl: token id out of range");
      }
      pairs.emplace_back(id, weight);
    }
    example.vector = SparseVector::FromPairs(std::move(pairs));
    for (const auto& [id, weight] : example.vector.entries()) {
      out.postings_[static_cast<size_t>(id)].emplace_back(
          static_cast<int>(e), weight);
    }
    out.examples_.push_back(std::move(example));
  }
  LSD_RETURN_IF_ERROR(ExpectAtEnd(reader, "whirl"));
  out.trained_ = true;
  return out;
}

}  // namespace lsd
