#ifndef LSD_ML_LEARNER_H_
#define LSD_ML_LEARNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/pred_cache.h"
#include "common/status.h"
#include "ml/prediction.h"
#include "xml/xml.h"

namespace lsd {

/// One XML element instance presented to the learners: the unit that base
/// learners classify (Section 3 of the paper). The LSD extraction step
/// fills every field; individual learners read only the features they
/// understand.
struct Instance {
  /// The source-schema tag of the element, e.g. "extra-info".
  std::string tag_name;
  /// The tag name expanded with all tag names on the path from the listing
  /// root, e.g. "house-listing contact agent-phone" — the name matcher's
  /// input (Section 3.3).
  std::string name_path;
  /// Synonym expansion of the tag name (empty when no synonyms known).
  std::string name_synonyms;
  /// The element's full text content (subtree text, space-joined).
  std::string content;
  /// The element subtree itself, for structure-aware learners. May be null
  /// for schema-only configurations; owned by the caller and must outlive
  /// any Train/Predict call using this instance.
  const XmlNode* node = nullptr;
  /// Index of the source listing this instance was extracted from; -1 when
  /// unknown. Lets the constraint handler line instances up into rows when
  /// verifying key and functional-dependency constraints.
  int listing_index = -1;
};

/// A labeled training example.
struct TrainingExample {
  Instance instance;
  int label = -1;
};

/// Stable content hash of the instance fields learners read — tag name,
/// name path, synonyms, content — the instance half of a prediction-cache
/// key. The `node` pointer and listing index are deliberately excluded:
/// they are not value features, and any learner whose predictions depend
/// on document structure must report itself uncacheable (fingerprint 0)
/// rather than rely on this hash.
inline uint64_t InstanceCacheHash(const Instance& instance) {
  uint64_t h = CacheHashBytes(kCacheHashSeed, instance.tag_name);
  h = CacheHashBytes(h, "\x1f");
  h = CacheHashBytes(h, instance.name_path);
  h = CacheHashBytes(h, "\x1f");
  h = CacheHashBytes(h, instance.name_synonyms);
  h = CacheHashBytes(h, "\x1f");
  h = CacheHashBytes(h, instance.content);
  return h;
}

/// The base-learner interface (Section 3.3). A learner is trained once on
/// labeled instances, then produces a confidence-score distribution over
/// labels for new instances. Implementations must be deterministic given
/// the same training set.
class BaseLearner {
 public:
  virtual ~BaseLearner() = default;

  /// Stable learner name used in reports and lesion configs, e.g.
  /// "name-matcher".
  virtual std::string name() const = 0;

  /// Trains on `examples` whose labels index into `labels`. May be called
  /// again to retrain from scratch (cross-validation does this).
  virtual Status Train(const std::vector<TrainingExample>& examples,
                       const LabelSpace& labels) = 0;

  /// Predicts the label distribution for one instance. Requires a prior
  /// successful `Train`.
  virtual Prediction Predict(const Instance& instance) const = 0;

  /// Predicts every instance in `batch`, writing one prediction per
  /// instance into `*out` (cleared first). The contract is strict: each
  /// result must be byte-identical to what a standalone Predict call on
  /// the same instance returns — batching may share lookups and scratch
  /// buffers but never change the arithmetic or its order. The prediction
  /// cache depends on this: a result computed in one batch is replayed
  /// verbatim into any other batch composition.
  virtual void PredictBatch(const std::vector<const Instance*>& batch,
                            std::vector<Prediction>* out) const {
    out->clear();
    out->reserve(batch.size());
    for (const Instance* instance : batch) {
      out->push_back(Predict(*instance));
    }
  }

  /// Stable content fingerprint of the trained model — the learner half of
  /// a prediction-cache key — or 0 when this learner's predictions cannot
  /// be cached (they read state outside the instance's value fields, e.g.
  /// the XML learner consults the mutable node-label map). Equal
  /// fingerprints must imply byte-identical predictions for equal
  /// instances; learners derive it from their serialized model bytes
  /// (FingerprintModelBytes), so identically-trained service replicas
  /// share cache entries and a rebuilt replica rejoins the shared cache
  /// without invalidating it.
  virtual uint64_t CacheFingerprint() const { return 0; }

  /// Creates an untrained copy configured identically — used by
  /// cross-validation to train per-fold models.
  virtual std::unique_ptr<BaseLearner> CloneUntrained() const = 0;

  /// Serializes the trained model (text; common/serial.h format). Used by
  /// `LsdSystem::SaveModel`. Learners without persistence support return
  /// Unimplemented.
  virtual StatusOr<std::string> SerializeModel() const {
    return Status::Unimplemented("learner '" + name() +
                                 "' does not support persistence");
  }

  /// Restores state produced by `SerializeModel` into this
  /// identically-configured instance.
  virtual Status LoadModel(std::string_view text) {
    (void)text;
    return Status::Unimplemented("learner '" + name() +
                                 "' does not support persistence");
  }
};

}  // namespace lsd

#endif  // LSD_ML_LEARNER_H_
