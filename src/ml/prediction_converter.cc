#include "ml/prediction_converter.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"

namespace lsd {

StatusOr<Prediction> PredictionConverter::Convert(
    const std::vector<Prediction>& instance_predictions) const {
  if (instance_predictions.empty()) {
    return Status::InvalidArgument("PredictionConverter: no predictions");
  }
  const size_t n_labels = instance_predictions[0].size();
  for (const Prediction& p : instance_predictions) {
    if (p.size() != n_labels) {
      return Status::InvalidArgument("PredictionConverter: size mismatch");
    }
  }
  Prediction out(n_labels);
  switch (policy_) {
    case ConverterPolicy::kAverage:
      for (const Prediction& p : instance_predictions) {
        for (size_t c = 0; c < n_labels; ++c) out.scores[c] += p.scores[c];
      }
      break;
    case ConverterPolicy::kMax:
      for (const Prediction& p : instance_predictions) {
        for (size_t c = 0; c < n_labels; ++c) {
          out.scores[c] = std::max(out.scores[c], p.scores[c]);
        }
      }
      break;
    case ConverterPolicy::kProduct: {
      constexpr double kFloor = 1e-9;  // avoid log(0) wiping a label out
      std::vector<double> log_scores(n_labels, 0.0);
      for (const Prediction& p : instance_predictions) {
        for (size_t c = 0; c < n_labels; ++c) {
          log_scores[c] += std::log(std::max(p.scores[c], kFloor));
        }
      }
      double max_log = *std::max_element(log_scores.begin(), log_scores.end());
      for (size_t c = 0; c < n_labels; ++c) {
        out.scores[c] = std::exp(log_scores[c] - max_log);
      }
      break;
    }
  }
  out.Normalize();
  MetricsRegistry::Global().GetCounter("converter.conversions")->Increment();
  MetricsRegistry::Global()
      .GetCounter("converter.instances")
      ->Increment(instance_predictions.size());
  return out;
}

}  // namespace lsd
