#ifndef LSD_ML_NAIVE_BAYES_H_
#define LSD_ML_NAIVE_BAYES_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "ml/prediction.h"

namespace lsd {

/// Multinomial Naive Bayes text classifier over bags of tokens
/// (Section 3.3): assigns d = {w1..wk} to the class maximizing
/// P(c) * prod_j P(wj | c), with Laplace-smoothed token estimates
/// P(w|c) = (n(w,c) + alpha) / (n(c) + alpha * |V|). Computation is done
/// in log space; the returned distribution is the softmax of the class
/// log-posteriors.
class NaiveBayesClassifier {
 public:
  /// `alpha` is the Laplace smoothing pseudo-count.
  explicit NaiveBayesClassifier(double alpha = 0.1) : alpha_(alpha) {}

  /// Trains from (token-bag, label) pairs; labels must lie in
  /// [0, n_labels). Resets any previous model.
  Status Train(const std::vector<std::vector<std::string>>& documents,
               const std::vector<int>& labels, size_t n_labels);

  /// Returns the class distribution for a token bag. Unknown tokens are
  /// smoothed, not dropped, so heavily out-of-vocabulary documents drift
  /// toward the class priors.
  Prediction Predict(const std::vector<std::string>& tokens) const;

  /// Predicts a batch of token bags, one prediction per document. Results
  /// are bit-identical to calling Predict per document: the batch resolves
  /// each token against the vocabulary once (instead of once per class)
  /// and memoizes per-(token, class) log-probabilities, but every memoized
  /// value is the exact double TokenLogProb computes and the per-class
  /// additions keep the document's token order.
  void PredictBatch(const std::vector<std::vector<std::string>>& documents,
                    std::vector<Prediction>* out) const;

  bool trained() const { return trained_; }
  size_t vocabulary_size() const { return token_index_.size(); }
  size_t label_count() const { return n_labels_; }

  /// log P(token|label), exposed for the XML learner's diagnostics and
  /// tests. Unknown tokens receive the smoothed unseen-token estimate.
  double TokenLogProb(const std::string& token, int label) const;

  /// Serializes the trained model to the library's line-oriented text
  /// format (see common/serial.h). Requires `trained()`.
  std::string Serialize() const;

  /// Restores a model produced by `Serialize`.
  static StatusOr<NaiveBayesClassifier> Deserialize(std::string_view text);

 private:
  double alpha_;
  bool trained_ = false;
  size_t n_labels_ = 0;
  std::unordered_map<std::string, int> token_index_;
  /// token_counts_[label][token_id]
  std::vector<std::vector<double>> token_counts_;
  /// Total token count per label.
  std::vector<double> label_token_totals_;
  /// log P(c)
  std::vector<double> log_priors_;
};

}  // namespace lsd

#endif  // LSD_ML_NAIVE_BAYES_H_
