#ifndef LSD_ML_CROSS_VALIDATION_H_
#define LSD_ML_CROSS_VALIDATION_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ml/learner.h"
#include "ml/prediction.h"

namespace lsd {

class ThreadPool;

/// The held-out predictions of one completed CV fold: (example index,
/// prediction) pairs, in ascending index order. The unit of fold-level
/// checkpointing — serializable with full precision, so a resumed run's
/// stacking inputs are bit-identical to an uninterrupted one's.
using FoldPredictions = std::vector<std::pair<size_t, Prediction>>;

/// Options for `CrossValidatePredictions`.
struct CrossValidationOptions {
  /// Number of folds `d`; the paper uses d = 5.
  size_t folds = 5;
  /// Seed for the random partition of examples into folds.
  uint64_t seed = 42;
  /// Optional grouping: examples with the same group id are assigned to
  /// the same fold. LSD groups by (source, tag) column so that a held-out
  /// column's tag name never appears in the fold's training data — the
  /// stacking weights then measure cross-source generalization instead of
  /// rewarding learners that memorize tag names. Empty = ungrouped.
  std::vector<int> group_ids;
  /// Optional pool to train the fold clones concurrently (each fold is an
  /// independent model over a disjoint held-out slice, and fold membership
  /// is fixed by `seed` before any training starts, so predictions are
  /// bit-identical to the serial path). Null = serial.
  ThreadPool* pool = nullptr;
  /// Checkpoint hooks (both optional, called from fold tasks — must be
  /// thread-safe). `load_fold(fold, out)` returns true when a persisted
  /// checkpoint for `fold` was restored into `out`, in which case the fold
  /// clone is not trained at all. `save_fold(fold, preds)` persists a
  /// freshly computed fold; failures are the callee's to absorb (a lost
  /// checkpoint costs recomputation, never correctness).
  std::function<bool(size_t fold, FoldPredictions* out)> load_fold;
  std::function<void(size_t fold, const FoldPredictions& preds)> save_fold;
};

/// Computes the stacking set CV(L) of Section 3.1 step 5(a): randomly
/// partitions `examples` into `folds` parts; for each part, trains a fresh
/// clone of `prototype` on the remaining parts and predicts the held-out
/// examples. Returns one prediction per input example, in input order.
/// When there are fewer examples than folds, the fold count is reduced;
/// with a single example the prediction falls back to uniform.
StatusOr<std::vector<Prediction>> CrossValidatePredictions(
    const BaseLearner& prototype, const std::vector<TrainingExample>& examples,
    const LabelSpace& labels,
    const CrossValidationOptions& options = CrossValidationOptions());

/// Deterministically assigns each of `n` items to one of `folds` folds,
/// balanced to within one item, shuffled by `seed`. Exposed for tests.
std::vector<size_t> MakeFoldAssignment(size_t n, size_t folds, uint64_t seed);

/// Grouped variant: items sharing a group id land in the same fold; groups
/// are distributed round-robin in shuffled order.
std::vector<size_t> MakeGroupedFoldAssignment(const std::vector<int>& group_ids,
                                              size_t folds, uint64_t seed);

}  // namespace lsd

#endif  // LSD_ML_CROSS_VALIDATION_H_
