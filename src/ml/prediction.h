#ifndef LSD_ML_PREDICTION_H_
#define LSD_ML_PREDICTION_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace lsd {

/// The reserved label assigned to source tags that match no mediated-schema
/// element (Section 2.2 of the paper).
inline constexpr std::string_view kOtherLabel = "OTHER";

/// The ordered set of class labels for a matching problem: the mediated
/// schema's tags plus the reserved OTHER label (always last).
class LabelSpace {
 public:
  LabelSpace() = default;

  /// Builds a label space from mediated-schema tag names. OTHER is appended
  /// automatically when not already present.
  explicit LabelSpace(std::vector<std::string> labels);

  size_t size() const { return labels_.size(); }

  /// Index of `name`, or -1 when unknown.
  int IndexOf(std::string_view name) const;

  const std::string& NameOf(int index) const {
    return labels_[static_cast<size_t>(index)];
  }

  int other_index() const { return other_index_; }

  const std::vector<std::string>& labels() const { return labels_; }

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, int> index_;
  int other_index_ = -1;
};

/// A soft prediction: one confidence score per label, summing to 1
/// (the form <s(c1|x), ..., s(cn|x)> of Section 2.2).
struct Prediction {
  std::vector<double> scores;

  Prediction() = default;
  explicit Prediction(size_t n_labels) : scores(n_labels, 0.0) {}

  /// The uniform distribution over `n_labels` labels.
  static Prediction Uniform(size_t n_labels);

  /// A point mass on `label`.
  static Prediction PointMass(size_t n_labels, int label);

  size_t size() const { return scores.size(); }

  /// Index of the highest-scoring label (lowest index wins ties); -1 when
  /// empty.
  int Best() const;

  /// Score of `label`.
  double ScoreOf(int label) const {
    return scores[static_cast<size_t>(label)];
  }

  /// Clamps negatives to zero and rescales to sum 1 (uniform when the mass
  /// is zero).
  void Normalize();

  /// Renders like "<ADDRESS:0.7, PHONE:0.3>" using `labels`.
  std::string ToString(const LabelSpace& labels) const;
};

/// Averages a set of predictions element-wise and normalizes. Returns
/// InvalidArgument when `predictions` is empty or sizes disagree.
StatusOr<Prediction> AveragePredictions(
    const std::vector<Prediction>& predictions);

}  // namespace lsd

#endif  // LSD_ML_PREDICTION_H_
