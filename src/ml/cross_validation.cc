#include "ml/cross_validation.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace lsd {

std::vector<size_t> MakeFoldAssignment(size_t n, size_t folds, uint64_t seed) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&order);
  std::vector<size_t> assignment(n, 0);
  for (size_t i = 0; i < n; ++i) {
    assignment[order[i]] = folds == 0 ? 0 : i % folds;
  }
  return assignment;
}

std::vector<size_t> MakeGroupedFoldAssignment(const std::vector<int>& group_ids,
                                              size_t folds, uint64_t seed) {
  // Distinct groups in first-appearance order.
  std::vector<int> groups;
  std::map<int, size_t> group_fold;
  for (int id : group_ids) {
    if (group_fold.emplace(id, 0).second) groups.push_back(id);
  }
  std::vector<size_t> group_order = MakeFoldAssignment(groups.size(),
                                                       folds, seed);
  for (size_t g = 0; g < groups.size(); ++g) {
    group_fold[groups[g]] = group_order[g];
  }
  std::vector<size_t> assignment(group_ids.size());
  for (size_t i = 0; i < group_ids.size(); ++i) {
    assignment[i] = group_fold[group_ids[i]];
  }
  return assignment;
}

StatusOr<std::vector<Prediction>> CrossValidatePredictions(
    const BaseLearner& prototype, const std::vector<TrainingExample>& examples,
    const LabelSpace& labels, const CrossValidationOptions& options) {
  if (examples.empty()) {
    return Status::InvalidArgument("CrossValidate: no examples");
  }
  if (!options.group_ids.empty() &&
      options.group_ids.size() != examples.size()) {
    return Status::InvalidArgument("CrossValidate: group_ids size mismatch");
  }
  size_t folds = std::min(options.folds, examples.size());
  if (folds == 0) folds = 1;
  std::vector<Prediction> out(examples.size(),
                              Prediction::Uniform(labels.size()));
  if (examples.size() < 2) return out;

  std::vector<size_t> assignment =
      options.group_ids.empty()
          ? MakeFoldAssignment(examples.size(), folds, options.seed)
          : MakeGroupedFoldAssignment(options.group_ids, folds, options.seed);

  // Each fold trains an independent clone and writes only its own held-out
  // indices of `out`, so folds can run concurrently without changing any
  // result: the partition is fixed by `assignment` before training starts.
  auto run_fold = [&](size_t fold) -> Status {
    TraceSpan span("cv/fold");
    std::vector<TrainingExample> train_split;
    std::vector<size_t> held_out;
    for (size_t i = 0; i < examples.size(); ++i) {
      if (assignment[i] == fold) {
        held_out.push_back(i);
      } else {
        train_split.push_back(examples[i]);
      }
    }
    if (held_out.empty()) return Status::OK();
    if (train_split.empty()) return Status::OK();  // leaves uniform predictions
    // A checkpointed fold is restored instead of retrained. The checkpoint
    // stores exact (%.17g round-trip) predictions for this fold's held-out
    // indices, so the stacking inputs — and hence the meta-learner — are
    // bit-identical whether the fold was computed now or before a crash.
    if (options.load_fold) {
      FoldPredictions restored;
      if (options.load_fold(fold, &restored)) {
        for (auto& [index, prediction] : restored) {
          if (index < out.size()) out[index] = std::move(prediction);
        }
        MetricsRegistry::Global()
            .GetCounter("checkpoint.folds_restored")
            ->Increment();
        return Status::OK();
      }
    }
    std::unique_ptr<BaseLearner> model = prototype.CloneUntrained();
    LSD_RETURN_IF_ERROR(model->Train(train_split, labels));
    for (size_t index : held_out) {
      out[index] = model->Predict(examples[index].instance);
    }
    if (options.save_fold) {
      FoldPredictions fresh;
      fresh.reserve(held_out.size());
      for (size_t index : held_out) fresh.emplace_back(index, out[index]);
      options.save_fold(fold, fresh);
    }
    MetricsRegistry::Global().GetCounter("cv.folds_trained")->Increment();
    MetricsRegistry::Global()
        .GetCounter("cv.held_out_predictions")
        ->Increment(held_out.size());
    return Status::OK();
  };
  if (options.pool != nullptr) {
    LSD_RETURN_IF_ERROR(options.pool->ParallelFor(folds, run_fold));
  } else {
    for (size_t fold = 0; fold < folds; ++fold) {
      LSD_RETURN_IF_ERROR(run_fold(fold));
    }
  }
  return out;
}

}  // namespace lsd
