#ifndef LSD_ML_META_LEARNER_H_
#define LSD_ML_META_LEARNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ml/prediction.h"

namespace lsd {

/// Options for `MetaLearner::Train`.
struct MetaLearnerOptions {
  /// Ridge regularization for the per-label least-squares problems.
  double ridge = 1e-4;
  /// Constrain learner weights to be non-negative (classic stacked
  /// generalization); negative weights would let one learner's confidence
  /// *reduce* a label's combined score.
  bool non_negative = true;
  /// Rescale each label's weights to sum to 1 after the regression. The
  /// raw least-squares weights calibrate each label's score in isolation,
  /// which can blow a rarely-confident label's weight up to 10x and wreck
  /// the cross-label argmax; normalizing keeps the regression's *relative*
  /// trust between learners while making combined scores comparable across
  /// labels. Requires non_negative.
  bool normalize_per_label = true;
  /// Balance each label's regression: rows where the label is the true
  /// answer carry as much total weight as rows where it is not. Without
  /// this, positives are ~1/|labels| of the rows and the regression mostly
  /// rewards learners for scoring 0 on negatives — a learner that never
  /// detects the label can still look good. Implemented as weighted least
  /// squares (rows scaled by sqrt of their weight). Off by default:
  /// empirically it over-rewards confidently-wrong positives (see
  /// bench/ablation_stacking).
  bool balance_classes = false;
  /// Shrink each label's (normalized) weights toward the uniform vector:
  /// W ← (1-s)·W + s·(1/k). The regression happily gives a label entirely
  /// to the learner that predicted it best *in cross-validation*; shrinkage
  /// keeps every label reachable through every learner, hedging against a
  /// trusted learner failing on an unseen source.
  double uniform_shrinkage = 0.5;
};

/// The stacking meta-learner of Section 3.1 step 5: for each label c and
/// base learner L it learns a weight W[c][L] by least-squares regression
/// from the base learners' cross-validation confidence scores to the 0/1
/// truth indicator, minimizing
///   sum_x ( l(c,x) - sum_L s(c|x,L) * W[c][L] )^2.
/// At matching time `Combine` forms, per label, the weighted sum of the
/// base learners' scores and normalizes (Section 3.2 step 2).
class MetaLearner {
 public:
  MetaLearner() = default;

  /// Trains the weight matrix.
  ///   cv_predictions[L][x] — learner L's CV prediction for example x;
  ///   true_labels[x]       — gold label index of example x.
  /// All predictions must have `n_labels` scores.
  Status Train(const std::vector<std::vector<Prediction>>& cv_predictions,
               const std::vector<int>& true_labels, size_t n_labels,
               const MetaLearnerOptions& options = MetaLearnerOptions());

  /// Combines one prediction per base learner (same order as training)
  /// into a single normalized prediction.
  StatusOr<Prediction> Combine(
      const std::vector<Prediction>& learner_predictions) const;

  bool trained() const { return trained_; }
  size_t learner_count() const { return learner_count_; }
  size_t label_count() const { return weights_.size(); }

  /// W[label][learner].
  double WeightOf(int label, size_t learner) const {
    return weights_[static_cast<size_t>(label)][learner];
  }

  /// Human-readable weight table for reports.
  std::string WeightsToString(const LabelSpace& labels,
                              const std::vector<std::string>& learner_names) const;

  /// Serializes the trained weight matrix (common/serial.h text format).
  std::string Serialize() const;

  /// Restores a weight matrix produced by `Serialize`.
  static StatusOr<MetaLearner> Deserialize(std::string_view text);

 private:
  bool trained_ = false;
  size_t learner_count_ = 0;
  /// weights_[label][learner]
  std::vector<std::vector<double>> weights_;
};

}  // namespace lsd

#endif  // LSD_ML_META_LEARNER_H_
