#include "ml/meta_learner.h"

#include <cmath>

#include "common/linalg.h"
#include "common/metrics.h"
#include "common/serial.h"
#include "common/strings.h"
#include "common/trace.h"

namespace lsd {

Status MetaLearner::Train(
    const std::vector<std::vector<Prediction>>& cv_predictions,
    const std::vector<int>& true_labels, size_t n_labels,
    const MetaLearnerOptions& options) {
  if (cv_predictions.empty()) {
    return Status::InvalidArgument("MetaLearner: no base learners");
  }
  const size_t n_learners = cv_predictions.size();
  const size_t n_examples = true_labels.size();
  if (n_examples == 0) {
    return Status::InvalidArgument("MetaLearner: no training examples");
  }
  for (const auto& preds : cv_predictions) {
    if (preds.size() != n_examples) {
      return Status::InvalidArgument(
          "MetaLearner: prediction count mismatch across learners");
    }
    for (const Prediction& p : preds) {
      if (p.size() != n_labels) {
        return Status::InvalidArgument("MetaLearner: label-count mismatch");
      }
    }
  }

  TraceSpan span("meta/train");
  weights_.assign(n_labels, std::vector<double>(n_learners, 0.0));
  LeastSquaresOptions ls_options;
  ls_options.ridge = options.ridge;
  ls_options.non_negative = options.non_negative;

  // One regression per label: design matrix T(ML, c) of Section 3.1 5(b).
  for (size_t c = 0; c < n_labels; ++c) {
    size_t n_pos = 0;
    for (int label : true_labels) {
      if (static_cast<size_t>(label) == c) ++n_pos;
    }
    size_t n_neg = n_examples - n_pos;
    double pos_scale = 1.0, neg_scale = 1.0;
    if (options.balance_classes && n_pos > 0 && n_neg > 0) {
      // Give the positive and negative rows equal total weight; least
      // squares with row weights w is least squares with rows scaled by
      // sqrt(w).
      pos_scale = std::sqrt(0.5 * static_cast<double>(n_examples) /
                            static_cast<double>(n_pos));
      neg_scale = std::sqrt(0.5 * static_cast<double>(n_examples) /
                            static_cast<double>(n_neg));
    }
    Matrix design(n_examples, n_learners);
    std::vector<double> target(n_examples);
    for (size_t x = 0; x < n_examples; ++x) {
      bool positive = static_cast<size_t>(true_labels[x]) == c;
      double scale = positive ? pos_scale : neg_scale;
      for (size_t l = 0; l < n_learners; ++l) {
        design.at(x, l) = scale * cv_predictions[l][x].scores[c];
      }
      target[x] = positive ? scale : 0.0;
    }
    auto solved = LeastSquares(design, target, ls_options);
    if (solved.ok()) {
      weights_[c] = std::move(solved).value();
    } else {
      // Degenerate label (e.g. never appears, collinear columns even after
      // ridge): fall back to equal weights rather than failing training.
      weights_[c].assign(n_learners, 1.0 / static_cast<double>(n_learners));
      MetricsRegistry::Global().GetCounter("meta.fallback_labels")->Increment();
    }
    if (options.normalize_per_label) {
      double total = 0.0;
      for (double w : weights_[c]) total += w;
      if (total > 0.0) {
        for (double& w : weights_[c]) w /= total;
      } else {
        weights_[c].assign(n_learners, 1.0 / static_cast<double>(n_learners));
      }
      double s = options.uniform_shrinkage;
      if (s > 0.0) {
        double uniform = 1.0 / static_cast<double>(n_learners);
        for (double& w : weights_[c]) w = (1.0 - s) * w + s * uniform;
      }
    }
  }
  learner_count_ = n_learners;
  trained_ = true;
  MetricsRegistry::Global().GetCounter("meta.trainings")->Increment();
  return Status::OK();
}

StatusOr<Prediction> MetaLearner::Combine(
    const std::vector<Prediction>& learner_predictions) const {
  if (!trained_) {
    return Status::FailedPrecondition("MetaLearner: not trained");
  }
  if (learner_predictions.size() != learner_count_) {
    return Status::InvalidArgument("MetaLearner: learner count mismatch");
  }
  const size_t n_labels = weights_.size();
  Prediction out(n_labels);
  for (size_t c = 0; c < n_labels; ++c) {
    double score = 0.0;
    for (size_t l = 0; l < learner_count_; ++l) {
      if (learner_predictions[l].size() != n_labels) {
        return Status::InvalidArgument("MetaLearner: label-count mismatch");
      }
      score += weights_[c][l] * learner_predictions[l].scores[c];
    }
    out.scores[c] = score;
  }
  out.Normalize();
  MetricsRegistry::Global().GetCounter("meta.combines")->Increment();
  return out;
}

std::string MetaLearner::WeightsToString(
    const LabelSpace& labels,
    const std::vector<std::string>& learner_names) const {
  std::string out;
  for (size_t c = 0; c < weights_.size(); ++c) {
    out += labels.NameOf(static_cast<int>(c));
    out += ":";
    for (size_t l = 0; l < learner_count_; ++l) {
      const std::string& name =
          l < learner_names.size() ? learner_names[l] : "learner";
      out += StrFormat(" %s=%.3f", name.c_str(), weights_[c][l]);
    }
    out += "\n";
  }
  return out;
}

std::string MetaLearner::Serialize() const {
  std::string out =
      StrFormat("meta 1 %zu %zu\n", weights_.size(), learner_count_);
  for (const std::vector<double>& row : weights_) {
    out += "w";
    for (double w : row) out += StrFormat(" %.17g", w);
    out += "\n";
  }
  return out;
}

StatusOr<MetaLearner> MetaLearner::Deserialize(std::string_view text) {
  LineReader reader(text);
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       reader.Expect("meta", 4));
  if (header[1] != "1") return Status::ParseError("meta: unknown version");
  MetaLearner out;
  LSD_ASSIGN_OR_RETURN(size_t n_labels, FieldToSize(header[2]));
  LSD_ASSIGN_OR_RETURN(out.learner_count_, FieldToSize(header[3]));
  for (size_t c = 0; c < n_labels; ++c) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> row,
                         reader.Expect("w", 1 + out.learner_count_));
    std::vector<double> weights;
    for (size_t l = 0; l < out.learner_count_; ++l) {
      LSD_ASSIGN_OR_RETURN(double w, FieldToDouble(row[1 + l]));
      weights.push_back(w);
    }
    out.weights_.push_back(std::move(weights));
  }
  LSD_RETURN_IF_ERROR(ExpectAtEnd(reader, "meta"));
  out.trained_ = true;
  return out;
}

}  // namespace lsd
