#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/serial.h"
#include "common/strings.h"

namespace lsd {
namespace {

/// Stand-in for log(0): small enough that an empty class can never win,
/// large enough to avoid NaNs in the softmax.
constexpr double kLogZero = -1e30;

}  // namespace

Status NaiveBayesClassifier::Train(
    const std::vector<std::vector<std::string>>& documents,
    const std::vector<int>& labels, size_t n_labels) {
  if (documents.size() != labels.size()) {
    return Status::InvalidArgument("NaiveBayes: documents/labels mismatch");
  }
  if (documents.empty()) {
    return Status::InvalidArgument("NaiveBayes: empty training set");
  }
  if (n_labels == 0) {
    return Status::InvalidArgument("NaiveBayes: no labels");
  }
  n_labels_ = n_labels;
  token_index_.clear();
  token_counts_.assign(n_labels, {});
  label_token_totals_.assign(n_labels, 0.0);
  std::vector<double> label_doc_counts(n_labels, 0.0);

  for (size_t d = 0; d < documents.size(); ++d) {
    int label = labels[d];
    if (label < 0 || static_cast<size_t>(label) >= n_labels) {
      return Status::InvalidArgument("NaiveBayes: label out of range");
    }
    label_doc_counts[static_cast<size_t>(label)] += 1.0;
    for (const std::string& token : documents[d]) {
      auto [it, inserted] =
          token_index_.emplace(token, static_cast<int>(token_index_.size()));
      size_t id = static_cast<size_t>(it->second);
      auto& counts = token_counts_[static_cast<size_t>(label)];
      if (counts.size() <= id) counts.resize(id + 1, 0.0);
      counts[id] += 1.0;
      label_token_totals_[static_cast<size_t>(label)] += 1.0;
    }
  }

  log_priors_.assign(n_labels, 0.0);
  double total_docs = static_cast<double>(documents.size());
  for (size_t c = 0; c < n_labels; ++c) {
    // Unsmoothed (MLE) priors: a class with no training documents gets
    // zero posterior. Smoothing priors instead would make empty classes
    // attract out-of-vocabulary documents (their tiny token totals inflate
    // unseen-token probabilities).
    log_priors_[c] = label_doc_counts[c] > 0.0
                         ? std::log(label_doc_counts[c] / total_docs)
                         : kLogZero;
  }
  trained_ = true;
  return Status::OK();
}

double NaiveBayesClassifier::TokenLogProb(const std::string& token,
                                          int label) const {
  size_t c = static_cast<size_t>(label);
  double vocab = static_cast<double>(token_index_.size());
  double denom = label_token_totals_[c] + alpha_ * (vocab + 1.0);
  auto it = token_index_.find(token);
  double count = 0.0;
  if (it != token_index_.end()) {
    size_t id = static_cast<size_t>(it->second);
    const auto& counts = token_counts_[c];
    if (id < counts.size()) count = counts[id];
  }
  return std::log((count + alpha_) / denom);
}

Prediction NaiveBayesClassifier::Predict(
    const std::vector<std::string>& tokens) const {
  Prediction out(n_labels_);
  if (!trained_ || n_labels_ == 0) return out;
  std::vector<double> log_scores(n_labels_);
  for (size_t c = 0; c < n_labels_; ++c) {
    double score = log_priors_[c];
    for (const std::string& token : tokens) {
      score += TokenLogProb(token, static_cast<int>(c));
    }
    log_scores[c] = score;
  }
  // Softmax with max subtraction for numerical stability.
  double max_score = *std::max_element(log_scores.begin(), log_scores.end());
  double total = 0.0;
  for (size_t c = 0; c < n_labels_; ++c) {
    out.scores[c] = std::exp(log_scores[c] - max_score);
    total += out.scores[c];
  }
  for (double& s : out.scores) s /= total;
  return out;
}

void NaiveBayesClassifier::PredictBatch(
    const std::vector<std::vector<std::string>>& documents,
    std::vector<Prediction>* out) const {
  out->clear();
  out->reserve(documents.size());
  if (!trained_ || n_labels_ == 0) {
    for (size_t d = 0; d < documents.size(); ++d) {
      out->push_back(Prediction(n_labels_));
    }
    return;
  }
  const size_t vocab = token_index_.size();
  const double vocab_d = static_cast<double>(vocab);
  // memo[(id + 1) * n_labels_ + c] caches TokenLogProb for token id `id`
  // and class c; slot 0 is the shared unseen-token estimate. Each value is
  // computed with TokenLogProb's exact expression on first touch, so
  // re-adding it later is bit-identical to recomputing it.
  std::vector<double> memo((vocab + 1) * n_labels_);
  std::vector<char> ready(vocab + 1, 0);
  std::vector<int> ids;
  std::vector<double> log_scores(n_labels_);
  for (const std::vector<std::string>& tokens : documents) {
    ids.clear();
    ids.reserve(tokens.size());
    for (const std::string& token : tokens) {
      auto it = token_index_.find(token);
      int id = it == token_index_.end() ? -1 : it->second;
      size_t slot = static_cast<size_t>(id + 1);
      if (!ready[slot]) {
        for (size_t c = 0; c < n_labels_; ++c) {
          double denom = label_token_totals_[c] + alpha_ * (vocab_d + 1.0);
          double count = 0.0;
          if (id >= 0) {
            const auto& counts = token_counts_[c];
            if (static_cast<size_t>(id) < counts.size()) {
              count = counts[static_cast<size_t>(id)];
            }
          }
          memo[slot * n_labels_ + c] = std::log((count + alpha_) / denom);
        }
        ready[slot] = 1;
      }
      ids.push_back(id);
    }
    // Same accumulation order as Predict: classes outer, tokens inner, in
    // document order.
    for (size_t c = 0; c < n_labels_; ++c) {
      double score = log_priors_[c];
      for (int id : ids) {
        score += memo[static_cast<size_t>(id + 1) * n_labels_ + c];
      }
      log_scores[c] = score;
    }
    Prediction pred(n_labels_);
    double max_score = *std::max_element(log_scores.begin(), log_scores.end());
    double total = 0.0;
    for (size_t c = 0; c < n_labels_; ++c) {
      pred.scores[c] = std::exp(log_scores[c] - max_score);
      total += pred.scores[c];
    }
    for (double& s : pred.scores) s /= total;
    out->push_back(std::move(pred));
  }
}

std::string NaiveBayesClassifier::Serialize() const {
  // Format version 2: token fields are EscapeToken-encoded so vocabulary
  // entries containing whitespace (possible via lenient-mode XML names)
  // survive the line-oriented format. Version-1 files still load.
  std::string out = StrFormat("nb 2 %.17g %zu %zu\n", alpha_, n_labels_,
                              token_index_.size());
  out += "priors";
  for (double p : log_priors_) out += StrFormat(" %.17g", p);
  out += "\ntotals";
  for (double t : label_token_totals_) out += StrFormat(" %.17g", t);
  out += "\n";
  // Vocabulary in id order.
  std::vector<const std::string*> tokens(token_index_.size());
  for (const auto& [token, id] : token_index_) {
    tokens[static_cast<size_t>(id)] = &token;
  }
  for (const std::string* token : tokens) {
    out += "token " + EscapeToken(*token) + "\n";
  }
  // Sparse per-label counts.
  for (size_t c = 0; c < n_labels_; ++c) {
    const auto& counts = token_counts_[c];
    size_t nnz = 0;
    for (double count : counts) {
      if (count != 0.0) ++nnz;
    }
    out += StrFormat("counts %zu %zu", c, nnz);
    for (size_t id = 0; id < counts.size(); ++id) {
      if (counts[id] != 0.0) out += StrFormat(" %zu %.17g", id, counts[id]);
    }
    out += "\n";
  }
  return out;
}

StatusOr<NaiveBayesClassifier> NaiveBayesClassifier::Deserialize(
    std::string_view text) {
  LineReader reader(text);
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       reader.Expect("nb", 5));
  // Version 1 wrote tokens verbatim (legal only for whitespace-free
  // vocabularies); version 2 escapes them.
  bool escaped_tokens = header[1] == "2";
  if (header[1] != "1" && header[1] != "2") {
    return Status::ParseError("nb: unknown version");
  }
  NaiveBayesClassifier out;
  LSD_ASSIGN_OR_RETURN(out.alpha_, FieldToDouble(header[2]));
  LSD_ASSIGN_OR_RETURN(out.n_labels_, FieldToSize(header[3]));
  LSD_ASSIGN_OR_RETURN(size_t vocab, FieldToSize(header[4]));

  LSD_ASSIGN_OR_RETURN(std::vector<std::string> priors,
                       reader.Expect("priors", 1 + out.n_labels_));
  for (size_t c = 0; c < out.n_labels_; ++c) {
    LSD_ASSIGN_OR_RETURN(double p, FieldToDouble(priors[1 + c]));
    out.log_priors_.push_back(p);
  }
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> totals,
                       reader.Expect("totals", 1 + out.n_labels_));
  for (size_t c = 0; c < out.n_labels_; ++c) {
    LSD_ASSIGN_OR_RETURN(double t, FieldToDouble(totals[1 + c]));
    out.label_token_totals_.push_back(t);
  }
  for (size_t id = 0; id < vocab; ++id) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         reader.Expect("token", 2));
    std::string token = fields[1];
    if (escaped_tokens) {
      LSD_ASSIGN_OR_RETURN(token, UnescapeToken(token));
    }
    // A duplicate would leave every later count id pointing at the wrong
    // token (emplace keeps the first id) — corrupt input, not a model.
    bool inserted =
        out.token_index_.emplace(std::move(token), static_cast<int>(id)).second;
    if (!inserted) {
      return Status::ParseError("nb: duplicate vocabulary token: " +
                                fields[1]);
    }
  }
  out.token_counts_.assign(out.n_labels_, {});
  for (size_t c = 0; c < out.n_labels_; ++c) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> counts,
                         reader.Expect("counts", 3));
    LSD_ASSIGN_OR_RETURN(size_t label, FieldToSize(counts[1]));
    LSD_ASSIGN_OR_RETURN(size_t nnz, FieldToSize(counts[2]));
    if (label >= out.n_labels_ || counts.size() != 3 + 2 * nnz) {
      return Status::ParseError("nb: malformed counts line");
    }
    auto& bucket = out.token_counts_[label];
    bucket.assign(vocab, 0.0);
    for (size_t i = 0; i < nnz; ++i) {
      LSD_ASSIGN_OR_RETURN(size_t id, FieldToSize(counts[3 + 2 * i]));
      LSD_ASSIGN_OR_RETURN(double count, FieldToDouble(counts[4 + 2 * i]));
      if (id >= vocab) return Status::ParseError("nb: token id out of range");
      bucket[id] = count;
    }
  }
  LSD_RETURN_IF_ERROR(ExpectAtEnd(reader, "nb"));
  out.trained_ = true;
  return out;
}

}  // namespace lsd
