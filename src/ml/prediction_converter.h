#ifndef LSD_ML_PREDICTION_CONVERTER_H_
#define LSD_ML_PREDICTION_CONVERTER_H_

#include <vector>

#include "common/status.h"
#include "ml/prediction.h"

namespace lsd {

/// How the prediction converter aggregates instance-level predictions
/// into one element-level prediction.
enum class ConverterPolicy {
  /// Arithmetic mean of the instance score vectors (the paper's current
  /// converter, Section 3.2).
  kAverage,
  /// Element-wise maximum, normalized — more aggressive; provided as an
  /// ablation knob.
  kMax,
  /// Product of scores (log-sum), normalized — rewards consistent
  /// instance-level agreement.
  kProduct,
};

/// The prediction converter of Section 3.2 step 2: combines the
/// meta-learner's predictions for every data instance in a source-schema
/// element's column into a single prediction for the element.
class PredictionConverter {
 public:
  explicit PredictionConverter(ConverterPolicy policy = ConverterPolicy::kAverage)
      : policy_(policy) {}

  /// Combines instance predictions. Returns InvalidArgument when
  /// `instance_predictions` is empty or sizes disagree.
  StatusOr<Prediction> Convert(
      const std::vector<Prediction>& instance_predictions) const;

  ConverterPolicy policy() const { return policy_; }

 private:
  ConverterPolicy policy_;
};

}  // namespace lsd

#endif  // LSD_ML_PREDICTION_CONVERTER_H_
