#ifndef LSD_LEARNERS_XML_LEARNER_H_
#define LSD_LEARNERS_XML_LEARNER_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/learner.h"
#include "ml/naive_bayes.h"
#include "xml/xml.h"

namespace lsd {

/// Supplies mediated-schema labels for XML sub-elements. The XML learner
/// (Section 5) replaces each non-root, non-leaf node of an instance's tree
/// with its label before tokenizing; during training the labels come from
/// the user's gold mapping, during matching from LSD's own first-pass
/// predictions. The LSD system implements this interface and keeps it
/// current across phases.
class NodeLabeler {
 public:
  virtual ~NodeLabeler() = default;

  /// Returns the label for the element `tag_name`, or an empty string when
  /// unknown (the learner then falls back to the tag name itself).
  virtual std::string LabelOf(const std::string& tag_name) const = 0;
};

/// The XML learner of Section 5 (pseudo-code in Table 2): a Naive Bayes
/// classifier over a bag of *text*, *node*, and *edge* tokens. Text tokens
/// are the subtree's words; node tokens are the labels of non-root
/// element nodes; edge tokens join a parent label to a child label or to
/// a direct text word (e.g. d→AGENT-NAME, WATERFRONT→"yes"). Structure
/// tokens let it separate classes that share vocabulary but differ in
/// shape — exactly where flat Naive Bayes fails.
class XmlLearner : public BaseLearner {
 public:
  /// `labeler` may be null: the learner then uses raw tag names as node
  /// labels, which still captures structure but does not generalize across
  /// sources. Not owned; must outlive the learner.
  explicit XmlLearner(const NodeLabeler* labeler = nullptr, double alpha = 0.1)
      : labeler_(labeler), alpha_(alpha), classifier_(alpha) {}

  std::string name() const override { return "xml-learner"; }

  Status Train(const std::vector<TrainingExample>& examples,
               const LabelSpace& labels) override;

  Prediction Predict(const Instance& instance) const override;

  std::unique_ptr<BaseLearner> CloneUntrained() const override {
    return std::make_unique<XmlLearner>(labeler_, alpha_);
  }

  StatusOr<std::string> SerializeModel() const override;
  Status LoadModel(std::string_view text) override;

  /// Builds the text/node/edge token bag for an element subtree; exposed
  /// for tests. `labeler` may be null.
  static std::vector<std::string> StructureTokens(const XmlNode& node,
                                                  const NodeLabeler* labeler);

 private:
  std::vector<std::string> TokensFor(const Instance& instance) const;

  const NodeLabeler* labeler_;
  double alpha_;
  NaiveBayesClassifier classifier_;
  size_t n_labels_ = 0;
};

}  // namespace lsd

#endif  // LSD_LEARNERS_XML_LEARNER_H_
