#ifndef LSD_LEARNERS_NAME_MATCHER_H_
#define LSD_LEARNERS_NAME_MATCHER_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/learner.h"
#include "ml/whirl.h"

namespace lsd {

/// The Name Matcher of Section 3.3: classifies an XML element from its tag
/// name, expanded with synonyms and with all tag names on the path from
/// the root. Uses the Whirl TF/IDF nearest-neighbour model, so "listed-price"
/// lands near a stored "price" even without an exact match. Weak on
/// vacuous ("item") or unshared names — by design; the meta-learner learns
/// when to discount it.
class NameMatcher : public BaseLearner {
 public:
  explicit NameMatcher(WhirlOptions options = WhirlOptions())
      : options_(options), whirl_(options) {}

  std::string name() const override { return "name-matcher"; }

  Status Train(const std::vector<TrainingExample>& examples,
               const LabelSpace& labels) override;

  Prediction Predict(const Instance& instance) const override;

  /// Content-based (hash of the serialized model), NOT the process-unique
  /// model_generation_ stamp: identically-trained replicas must share one
  /// fingerprint so a cross-replica cache can serve all of them. The
  /// default PredictBatch (a Predict loop) is already batch-efficient here
  /// thanks to Predict's per-column last-answer memo.
  uint64_t CacheFingerprint() const override {
    if (fingerprint_ == 0 && whirl_.trained()) {
      fingerprint_ = FingerprintModelBytes(name(), whirl_.Serialize());
    }
    return fingerprint_;
  }

  std::unique_ptr<BaseLearner> CloneUntrained() const override {
    return std::make_unique<NameMatcher>(options_);
  }

  StatusOr<std::string> SerializeModel() const override;
  Status LoadModel(std::string_view text) override;

  /// The token bag the matcher derives from an instance's name features;
  /// exposed for tests.
  static std::vector<std::string> NameTokens(const Instance& instance);

 private:
  WhirlOptions options_;
  WhirlClassifier whirl_;
  size_t n_labels_ = 0;
  /// Process-unique stamp of the current trained model (bumped by Train
  /// and LoadModel); lets Predict's memo detect retraining even when a
  /// matcher is rebuilt at a recycled address.
  uint64_t model_generation_ = 0;
  mutable uint64_t fingerprint_ = 0;
};

}  // namespace lsd

#endif  // LSD_LEARNERS_NAME_MATCHER_H_
