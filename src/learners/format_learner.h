#ifndef LSD_LEARNERS_FORMAT_LEARNER_H_
#define LSD_LEARNERS_FORMAT_LEARNER_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/learner.h"
#include "ml/naive_bayes.h"

namespace lsd {

/// The format learner suggested in the paper's Section 7 as future work:
/// it classifies an element by the *shape* of its values rather than
/// their vocabulary, which is exactly what short alpha-numeric fields
/// like course codes ("CSE142"), zip codes, and phone numbers need.
/// Values are abstracted into character-class signatures — letters → 'A',
/// digits → '9', other characters kept verbatim, runs collapsed with their
/// length bucketed — and a Naive Bayes model is trained over signature
/// tokens. "CSE142" → "A3 9 3" signature tokens; "(206) 523 4719" →
/// "(9)3 9 3 9 4"-style tokens.
class FormatLearner : public BaseLearner {
 public:
  explicit FormatLearner(double alpha = 0.1)
      : alpha_(alpha), classifier_(alpha) {}

  std::string name() const override { return "format-learner"; }

  Status Train(const std::vector<TrainingExample>& examples,
               const LabelSpace& labels) override;

  Prediction Predict(const Instance& instance) const override;

  void PredictBatch(const std::vector<const Instance*>& batch,
                    std::vector<Prediction>* out) const override;

  /// Lazily computed from the serialized model bytes, so identically
  /// trained instances (e.g. service replicas) share one fingerprint.
  uint64_t CacheFingerprint() const override {
    if (fingerprint_ == 0 && classifier_.trained()) {
      fingerprint_ = FingerprintModelBytes(name(), classifier_.Serialize());
    }
    return fingerprint_;
  }

  std::unique_ptr<BaseLearner> CloneUntrained() const override {
    return std::make_unique<FormatLearner>(alpha_);
  }

  StatusOr<std::string> SerializeModel() const override;
  Status LoadModel(std::string_view text) override;

  /// The format-feature token bag derived from a content string; exposed
  /// for tests. Includes the whole-value signature, per-word signatures,
  /// and coarse length/type indicator tokens.
  static std::vector<std::string> FormatTokens(const std::string& content);

 private:
  double alpha_;
  NaiveBayesClassifier classifier_;
  size_t n_labels_ = 0;
  mutable uint64_t fingerprint_ = 0;
};

}  // namespace lsd

#endif  // LSD_LEARNERS_FORMAT_LEARNER_H_
