#include "learners/format_learner.h"

#include <cctype>

#include "common/strings.h"

namespace lsd {
namespace {

// Buckets a run length: exact up to 4, then "5+".
std::string LengthBucket(size_t n) {
  if (n <= 4) return std::to_string(n);
  return "5+";
}

// Character-class signature of one token: letter runs → A<len>,
// digit runs → 9<len>, other chars verbatim.
std::string Signature(std::string_view word) {
  std::string out;
  size_t i = 0;
  while (i < word.size()) {
    unsigned char c = static_cast<unsigned char>(word[i]);
    if (std::isalpha(c)) {
      size_t start = i;
      while (i < word.size() &&
             std::isalpha(static_cast<unsigned char>(word[i]))) {
        ++i;
      }
      out += "A" + LengthBucket(i - start);
    } else if (std::isdigit(c)) {
      size_t start = i;
      while (i < word.size() &&
             std::isdigit(static_cast<unsigned char>(word[i]))) {
        ++i;
      }
      out += "9" + LengthBucket(i - start);
    } else {
      out += word[i];
      ++i;
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> FormatLearner::FormatTokens(
    const std::string& content) {
  std::vector<std::string> out;
  std::vector<std::string> words = SplitAny(content, " \t\n\r");
  size_t letters = 0, digits = 0, symbols = 0;
  for (const std::string& word : words) {
    out.push_back("sig:" + Signature(word));
    for (char ch : word) {
      unsigned char c = static_cast<unsigned char>(ch);
      if (std::isalpha(c)) {
        ++letters;
      } else if (std::isdigit(c)) {
        ++digits;
      } else {
        ++symbols;
      }
    }
  }
  // Whole-value indicators.
  out.push_back("words:" + LengthBucket(words.size()));
  size_t total = letters + digits + symbols;
  if (total > 0) {
    if (digits == 0) {
      out.push_back("type:alpha");
    } else if (letters == 0) {
      out.push_back("type:numeric");
    } else {
      out.push_back("type:mixed");
    }
    if (digits * 2 > total) out.push_back("type:digit-heavy");
  } else {
    out.push_back("type:empty");
  }
  return out;
}

Status FormatLearner::Train(const std::vector<TrainingExample>& examples,
                            const LabelSpace& labels) {
  n_labels_ = labels.size();
  std::vector<std::vector<std::string>> documents;
  std::vector<int> train_labels;
  documents.reserve(examples.size());
  train_labels.reserve(examples.size());
  for (const TrainingExample& example : examples) {
    documents.push_back(FormatTokens(example.instance.content));
    train_labels.push_back(example.label);
  }
  classifier_ = NaiveBayesClassifier(alpha_);
  fingerprint_ = 0;
  return classifier_.Train(documents, train_labels, n_labels_);
}

Prediction FormatLearner::Predict(const Instance& instance) const {
  if (!classifier_.trained()) return Prediction::Uniform(n_labels_);
  return classifier_.Predict(FormatTokens(instance.content));
}

void FormatLearner::PredictBatch(const std::vector<const Instance*>& batch,
                                 std::vector<Prediction>* out) const {
  if (!classifier_.trained()) {
    out->assign(batch.size(), Prediction::Uniform(n_labels_));
    return;
  }
  std::vector<std::vector<std::string>> documents;
  documents.reserve(batch.size());
  for (const Instance* instance : batch) {
    documents.push_back(FormatTokens(instance->content));
  }
  classifier_.PredictBatch(documents, out);
}

StatusOr<std::string> FormatLearner::SerializeModel() const {
  if (!classifier_.trained()) {
    return Status::FailedPrecondition("format-learner: not trained");
  }
  return classifier_.Serialize();
}

Status FormatLearner::LoadModel(std::string_view text) {
  LSD_ASSIGN_OR_RETURN(classifier_, NaiveBayesClassifier::Deserialize(text));
  n_labels_ = classifier_.label_count();
  fingerprint_ = 0;
  return Status::OK();
}


}  // namespace lsd
