#ifndef LSD_LEARNERS_COUNTY_RECOGNIZER_H_
#define LSD_LEARNERS_COUNTY_RECOGNIZER_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "ml/learner.h"

namespace lsd {

/// Returns the built-in database of US county names (lower-case). The
/// paper extracted this database from the Web; here it ships with the
/// library (see DESIGN.md substitutions).
const std::vector<std::string>& UsCountyNames();

/// The County-Name Recognizer of Section 3.3: a narrow-expertise module
/// that checks element content against a county-name database. It predicts
/// its target label with confidence proportional to the fraction of
/// content words recognized as county names, and spreads remaining mass
/// over other labels. Demonstrates how domain recognizers plug into the
/// multi-strategy architecture as ordinary base learners.
class CountyRecognizer : public BaseLearner {
 public:
  /// `target_label` is the mediated-schema tag the recognizer vouches for,
  /// e.g. "COUNTY". `dictionary` defaults to `UsCountyNames()`.
  explicit CountyRecognizer(std::string target_label,
                            const std::vector<std::string>* dictionary = nullptr);

  std::string name() const override { return "county-recognizer"; }

  Status Train(const std::vector<TrainingExample>& examples,
               const LabelSpace& labels) override;

  Prediction Predict(const Instance& instance) const override;

  /// Covers the label binding *and* the dictionary contents — the
  /// serialized model alone omits the (normally built-in) dictionary, but
  /// a custom dictionary changes predictions and must change the key.
  uint64_t CacheFingerprint() const override;

  std::unique_ptr<BaseLearner> CloneUntrained() const override;

  StatusOr<std::string> SerializeModel() const override;
  Status LoadModel(std::string_view text) override;

  /// Fraction of the content's word tokens that are county names, in
  /// [0, 1]; exposed for tests.
  double RecognitionScore(const std::string& content) const;

 private:
  std::string target_label_;
  std::unordered_set<std::string> dictionary_;
  size_t n_labels_ = 0;
  int target_index_ = -1;
  mutable uint64_t fingerprint_ = 0;
};

}  // namespace lsd

#endif  // LSD_LEARNERS_COUNTY_RECOGNIZER_H_
