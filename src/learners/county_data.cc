#include "learners/county_recognizer.h"

namespace lsd {

// A representative sample of real US county names (lower-case, without
// the word "county"). The paper's recognizer consulted a Web-extracted
// database; this built-in list provides the same lookup semantics.
const std::vector<std::string>& UsCountyNames() {
  static const std::vector<std::string>* const kCounties =
      new std::vector<std::string>{
          "king",        "pierce",      "snohomish",  "spokane",
          "clark",       "thurston",    "kitsap",     "yakima",
          "whatcom",     "benton",      "skagit",     "cowlitz",
          "island",      "chelan",      "douglas",    "grant",
          "miami-dade",  "broward",     "palm beach", "hillsborough",
          "orange",      "pinellas",    "duval",      "polk",
          "brevard",     "volusia",     "pasco",      "seminole",
          "sarasota",    "marion",      "lake",       "collier",
          "los angeles", "san diego",   "riverside",  "san bernardino",
          "santa clara", "alameda",     "sacramento", "contra costa",
          "fresno",      "ventura",     "kern",       "san francisco",
          "san mateo",   "stanislaus",  "sonoma",     "tulare",
          "cook",        "dupage",      "will",       "kane",
          "mclean",      "peoria",      "sangamon",   "champaign",
          "harris",      "dallas",      "tarrant",    "bexar",
          "travis",      "collin",      "denton",     "el paso",
          "hidalgo",     "fort bend",   "montgomery", "williamson",
          "maricopa",    "pima",        "pinal",      "yavapai",
          "suffolk",     "nassau",      "westchester", "erie",
          "monroe",      "onondaga",    "rockland",   "albany",
          "middlesex",   "worcester",   "essex",      "norfolk",
          "plymouth",    "bristol",     "hampden",    "barnstable",
          "wayne",       "oakland",     "macomb",     "kent",
          "genesee",     "washtenaw",   "ingham",     "ottawa",
          "cuyahoga",    "franklin",    "hamilton",   "summit",
          "lucas",       "stark",       "butler",     "lorain",
          "philadelphia", "allegheny",  "bucks",      "delaware",
          "chester",     "lancaster",   "york",       "berks",
          "hennepin",    "ramsey",      "dakota",     "anoka",
          "fulton",      "gwinnett",    "cobb",       "dekalb",
          "chatham",     "clayton",     "cherokee",   "forsyth",
          "mecklenburg", "wake",        "guilford",   "durham",
          "cumberland",  "buncombe",    "union",      "gaston",
          "jefferson",   "shelby",      "davidson",   "knox",
          "arapahoe",    "denver",      "boulder",    "larimer",
          "adams",       "weld",        "pueblo",     "mesa",
          "salt lake",   "utah",        "davis",      "weber",
          "multnomah",   "washington",  "clackamas",  "lane",
          "marion",      "jackson",     "deschutes",  "linn",
          "fairfax",     "prince william", "loudoun", "henrico",
          "chesterfield", "virginia beach", "arlington", "richmond",
          "baltimore",   "prince george", "anne arundel", "howard",
          "st. louis",   "greene",      "clay",       "boone",
          "milwaukee",   "dane",        "waukesha",   "brown",
          "racine",      "outagamie",   "winnebago",  "kenosha",
      };
  return *kCounties;
}

}  // namespace lsd
