#include "learners/county_recognizer.h"

#include <algorithm>

#include "common/serial.h"
#include "common/strings.h"
#include "text/tokenizer.h"

namespace lsd {

CountyRecognizer::CountyRecognizer(std::string target_label,
                                   const std::vector<std::string>* dictionary)
    : target_label_(std::move(target_label)) {
  const std::vector<std::string>& names =
      dictionary != nullptr ? *dictionary : UsCountyNames();
  for (const std::string& name : names) {
    dictionary_.insert(ToLower(name));
    // Also index individual words of multi-word county names so "palm" and
    // "beach" each count.
    for (const std::string& word : SplitAny(name, " -.")) {
      dictionary_.insert(ToLower(word));
    }
  }
}

Status CountyRecognizer::Train(const std::vector<TrainingExample>& examples,
                               const LabelSpace& labels) {
  (void)examples;  // the dictionary is fixed; training only binds the label
  n_labels_ = labels.size();
  target_index_ = labels.IndexOf(target_label_);
  fingerprint_ = 0;
  return Status::OK();
}

uint64_t CountyRecognizer::CacheFingerprint() const {
  if (fingerprint_ == 0 && n_labels_ > 0) {
    StatusOr<std::string> model = SerializeModel();
    if (!model.ok()) return 0;
    // The dictionary lives outside the serialized model; fold it in via a
    // sorted walk so the hash is independent of unordered_set layout.
    std::vector<std::string_view> entries(dictionary_.begin(),
                                          dictionary_.end());
    std::sort(entries.begin(), entries.end());
    uint64_t h = CacheHashBytes(kCacheHashSeed, *model);
    for (std::string_view entry : entries) {
      h = CacheHashBytes(h, entry);
      h = CacheHashBytes(h, "\x1f");
    }
    fingerprint_ = FingerprintModelBytes(name(), StrFormat("%llu",
        static_cast<unsigned long long>(h)));
  }
  return fingerprint_;
}

double CountyRecognizer::RecognitionScore(const std::string& content) const {
  TokenizerOptions options;
  options.stem = false;
  options.keep_symbols = false;
  options.keep_numbers = false;
  std::vector<std::string> words = Tokenize(content, options);
  if (words.empty()) return 0.0;
  size_t hits = 0;
  for (const std::string& word : words) {
    if (dictionary_.count(word) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(words.size());
}

Prediction CountyRecognizer::Predict(const Instance& instance) const {
  Prediction out = Prediction::Uniform(n_labels_);
  if (target_index_ < 0 || n_labels_ == 0) return out;
  double score = RecognitionScore(instance.content);
  // Blend: a full match puts 0.9 on the target label; a non-match spreads
  // the target's uniform share over the other labels.
  double target_mass = 0.9 * score;
  double rest = (1.0 - target_mass) / static_cast<double>(n_labels_ - 1);
  for (size_t c = 0; c < n_labels_; ++c) {
    out.scores[c] =
        static_cast<int>(c) == target_index_ ? target_mass : rest;
  }
  out.Normalize();
  return out;
}

std::unique_ptr<BaseLearner> CountyRecognizer::CloneUntrained() const {
  auto clone = std::make_unique<CountyRecognizer>(target_label_);
  clone->dictionary_ = dictionary_;
  return clone;
}

StatusOr<std::string> CountyRecognizer::SerializeModel() const {
  // The dictionary is built-in; only the label binding is state.
  return StrFormat("county 1 %s %zu %d\n", target_label_.c_str(), n_labels_,
                   target_index_);
}

Status CountyRecognizer::LoadModel(std::string_view text) {
  LineReader reader(text);
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                       reader.Expect("county", 5));
  if (fields[1] != "1") return Status::ParseError("county: unknown version");
  target_label_ = fields[2];
  LSD_ASSIGN_OR_RETURN(n_labels_, FieldToSize(fields[3]));
  LSD_ASSIGN_OR_RETURN(target_index_, FieldToInt(fields[4]));
  fingerprint_ = 0;
  return ExpectAtEnd(reader, "county");
}


}  // namespace lsd
