#include "learners/naive_bayes_learner.h"

#include "text/tokenizer.h"

namespace lsd {

Status NaiveBayesLearner::Train(const std::vector<TrainingExample>& examples,
                                const LabelSpace& labels) {
  n_labels_ = labels.size();
  std::vector<std::vector<std::string>> documents;
  std::vector<int> train_labels;
  documents.reserve(examples.size());
  train_labels.reserve(examples.size());
  for (const TrainingExample& example : examples) {
    documents.push_back(Tokenize(example.instance.content));
    train_labels.push_back(example.label);
  }
  classifier_ = NaiveBayesClassifier(alpha_);
  fingerprint_ = 0;
  return classifier_.Train(documents, train_labels, n_labels_);
}

Prediction NaiveBayesLearner::Predict(const Instance& instance) const {
  if (!classifier_.trained()) return Prediction::Uniform(n_labels_);
  return classifier_.Predict(Tokenize(instance.content));
}

void NaiveBayesLearner::PredictBatch(const std::vector<const Instance*>& batch,
                                     std::vector<Prediction>* out) const {
  if (!classifier_.trained()) {
    out->assign(batch.size(), Prediction::Uniform(n_labels_));
    return;
  }
  std::vector<std::vector<std::string>> documents;
  documents.reserve(batch.size());
  for (const Instance* instance : batch) {
    documents.push_back(Tokenize(instance->content));
  }
  classifier_.PredictBatch(documents, out);
}

StatusOr<std::string> NaiveBayesLearner::SerializeModel() const {
  if (!classifier_.trained()) {
    return Status::FailedPrecondition("naive-bayes: not trained");
  }
  return classifier_.Serialize();
}

Status NaiveBayesLearner::LoadModel(std::string_view text) {
  LSD_ASSIGN_OR_RETURN(classifier_, NaiveBayesClassifier::Deserialize(text));
  n_labels_ = classifier_.label_count();
  fingerprint_ = 0;
  return Status::OK();
}


}  // namespace lsd
