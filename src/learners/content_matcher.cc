#include "learners/content_matcher.h"

#include "text/tokenizer.h"

namespace lsd {

Status ContentMatcher::Train(const std::vector<TrainingExample>& examples,
                             const LabelSpace& labels) {
  n_labels_ = labels.size();
  std::vector<std::vector<std::string>> documents;
  std::vector<int> train_labels;
  documents.reserve(examples.size());
  train_labels.reserve(examples.size());
  for (const TrainingExample& example : examples) {
    documents.push_back(Tokenize(example.instance.content));
    train_labels.push_back(example.label);
  }
  whirl_ = WhirlClassifier(options_);
  fingerprint_ = 0;
  return whirl_.Train(documents, train_labels, n_labels_);
}

Prediction ContentMatcher::Predict(const Instance& instance) const {
  if (!whirl_.trained()) return Prediction::Uniform(n_labels_);
  return whirl_.Predict(Tokenize(instance.content));
}

void ContentMatcher::PredictBatch(const std::vector<const Instance*>& batch,
                                  std::vector<Prediction>* out) const {
  if (!whirl_.trained()) {
    out->assign(batch.size(), Prediction::Uniform(n_labels_));
    return;
  }
  std::vector<std::vector<std::string>> documents;
  documents.reserve(batch.size());
  for (const Instance* instance : batch) {
    documents.push_back(Tokenize(instance->content));
  }
  whirl_.PredictBatch(documents, out);
}

StatusOr<std::string> ContentMatcher::SerializeModel() const {
  if (!whirl_.trained()) {
    return Status::FailedPrecondition("content-matcher: not trained");
  }
  return whirl_.Serialize();
}

Status ContentMatcher::LoadModel(std::string_view text) {
  LSD_ASSIGN_OR_RETURN(whirl_, WhirlClassifier::Deserialize(text));
  n_labels_ = whirl_.label_count();
  fingerprint_ = 0;
  return Status::OK();
}


}  // namespace lsd
