#ifndef LSD_LEARNERS_NAIVE_BAYES_LEARNER_H_
#define LSD_LEARNERS_NAIVE_BAYES_LEARNER_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/learner.h"
#include "ml/naive_bayes.h"

namespace lsd {

/// The Naive Bayes learner of Section 3.3: treats an element's data
/// content as a bag of parsed and stemmed tokens and classifies with
/// multinomial Naive Bayes. Strong when token frequencies are indicative
/// ("beautiful", "great" in house descriptions); weak on short numeric
/// fields.
class NaiveBayesLearner : public BaseLearner {
 public:
  explicit NaiveBayesLearner(double alpha = 0.1)
      : alpha_(alpha), classifier_(alpha) {}

  std::string name() const override { return "naive-bayes"; }

  Status Train(const std::vector<TrainingExample>& examples,
               const LabelSpace& labels) override;

  Prediction Predict(const Instance& instance) const override;

  void PredictBatch(const std::vector<const Instance*>& batch,
                    std::vector<Prediction>* out) const override;

  /// Lazily computed from the serialized model bytes, so identically
  /// trained instances (e.g. service replicas) share one fingerprint.
  uint64_t CacheFingerprint() const override {
    if (fingerprint_ == 0 && classifier_.trained()) {
      fingerprint_ = FingerprintModelBytes(name(), classifier_.Serialize());
    }
    return fingerprint_;
  }

  std::unique_ptr<BaseLearner> CloneUntrained() const override {
    return std::make_unique<NaiveBayesLearner>(alpha_);
  }

  StatusOr<std::string> SerializeModel() const override;
  Status LoadModel(std::string_view text) override;

 private:
  double alpha_;
  NaiveBayesClassifier classifier_;
  size_t n_labels_ = 0;
  mutable uint64_t fingerprint_ = 0;
};

}  // namespace lsd

#endif  // LSD_LEARNERS_NAIVE_BAYES_LEARNER_H_
