#include "learners/xml_learner.h"

#include "text/tokenizer.h"

namespace lsd {
namespace {

// The generic root label of Table 2 step 1(b).
constexpr const char* kGenericRoot = "d";

std::string LabelForNode(const XmlNode& node, const NodeLabeler* labeler) {
  if (labeler != nullptr) {
    std::string label = labeler->LabelOf(node.name);
    if (!label.empty()) return label;
  }
  return node.name;
}

// Emits tokens for `node`, whose enclosing element carries `parent_label`.
void EmitTokens(const XmlNode& node, const std::string& parent_label,
                const NodeLabeler* labeler, std::vector<std::string>* out) {
  std::string label = LabelForNode(node, labeler);
  // Node token for this (non-root) element.
  out->push_back("n:" + label);
  // Edge token parent → this element.
  out->push_back("e:" + parent_label + ">" + label);
  // Text tokens and label → word edge tokens for direct text.
  for (const std::string& word : Tokenize(node.text)) {
    out->push_back("w:" + word);
    out->push_back("e:" + label + ">" + word);
  }
  for (const XmlNode& child : node.children) {
    EmitTokens(child, label, labeler, out);
  }
}

}  // namespace

std::vector<std::string> XmlLearner::StructureTokens(const XmlNode& node,
                                                     const NodeLabeler* labeler) {
  std::vector<std::string> out;
  // The instance's own root is replaced by the generic root d; its direct
  // text contributes text tokens and d→word edges.
  for (const std::string& word : Tokenize(node.text)) {
    out.push_back("w:" + word);
    out.push_back(std::string("e:") + kGenericRoot + ">" + word);
  }
  for (const XmlNode& child : node.children) {
    EmitTokens(child, kGenericRoot, labeler, &out);
  }
  return out;
}

std::vector<std::string> XmlLearner::TokensFor(const Instance& instance) const {
  if (instance.node != nullptr) {
    return StructureTokens(*instance.node, labeler_);
  }
  // Fallback when no tree is available: text tokens only (reduces to the
  // Naive Bayes learner's view).
  std::vector<std::string> out;
  for (const std::string& word : Tokenize(instance.content)) {
    out.push_back("w:" + word);
  }
  return out;
}

Status XmlLearner::Train(const std::vector<TrainingExample>& examples,
                         const LabelSpace& labels) {
  n_labels_ = labels.size();
  std::vector<std::vector<std::string>> documents;
  std::vector<int> train_labels;
  documents.reserve(examples.size());
  train_labels.reserve(examples.size());
  for (const TrainingExample& example : examples) {
    documents.push_back(TokensFor(example.instance));
    train_labels.push_back(example.label);
  }
  classifier_ = NaiveBayesClassifier(alpha_);
  return classifier_.Train(documents, train_labels, n_labels_);
}

Prediction XmlLearner::Predict(const Instance& instance) const {
  if (!classifier_.trained()) return Prediction::Uniform(n_labels_);
  return classifier_.Predict(TokensFor(instance));
}

StatusOr<std::string> XmlLearner::SerializeModel() const {
  if (!classifier_.trained()) {
    return Status::FailedPrecondition("xml-learner: not trained");
  }
  return classifier_.Serialize();
}

Status XmlLearner::LoadModel(std::string_view text) {
  LSD_ASSIGN_OR_RETURN(classifier_, NaiveBayesClassifier::Deserialize(text));
  n_labels_ = classifier_.label_count();
  return Status::OK();
}


}  // namespace lsd
