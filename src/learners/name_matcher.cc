#include "learners/name_matcher.h"

#include "text/tokenizer.h"

namespace lsd {

std::vector<std::string> NameMatcher::NameTokens(const Instance& instance) {
  // The element's own name is the strongest signal; path context and
  // synonyms are appended so TF/IDF weighting can still use them.
  std::vector<std::string> tokens = TokenizeName(instance.tag_name);
  // Repeat own-name tokens to up-weight them against path context.
  std::vector<std::string> own = tokens;
  tokens.insert(tokens.end(), own.begin(), own.end());
  std::vector<std::string> path = TokenizeName(instance.name_path);
  tokens.insert(tokens.end(), path.begin(), path.end());
  std::vector<std::string> synonyms = TokenizeName(instance.name_synonyms);
  tokens.insert(tokens.end(), synonyms.begin(), synonyms.end());
  return tokens;
}

Status NameMatcher::Train(const std::vector<TrainingExample>& examples,
                          const LabelSpace& labels) {
  n_labels_ = labels.size();
  std::vector<std::vector<std::string>> documents;
  std::vector<int> train_labels;
  documents.reserve(examples.size());
  train_labels.reserve(examples.size());
  for (const TrainingExample& example : examples) {
    documents.push_back(NameTokens(example.instance));
    train_labels.push_back(example.label);
  }
  whirl_ = WhirlClassifier(options_);
  return whirl_.Train(documents, train_labels, n_labels_);
}

Prediction NameMatcher::Predict(const Instance& instance) const {
  if (!whirl_.trained()) return Prediction::Uniform(n_labels_);
  return whirl_.Predict(NameTokens(instance));
}

StatusOr<std::string> NameMatcher::SerializeModel() const {
  if (!whirl_.trained()) {
    return Status::FailedPrecondition("name-matcher: not trained");
  }
  return whirl_.Serialize();
}

Status NameMatcher::LoadModel(std::string_view text) {
  LSD_ASSIGN_OR_RETURN(whirl_, WhirlClassifier::Deserialize(text));
  n_labels_ = whirl_.label_count();
  return Status::OK();
}


}  // namespace lsd
