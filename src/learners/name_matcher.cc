#include "learners/name_matcher.h"

#include <atomic>

#include "text/tokenizer.h"

namespace lsd {

namespace {

/// Monotone stamp handed to each (re)trained model; never reused, so a
/// memoized prediction can only match the model that produced it.
uint64_t NextModelGeneration() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

std::vector<std::string> NameMatcher::NameTokens(const Instance& instance) {
  // The element's own name is the strongest signal; path context and
  // synonyms are appended so TF/IDF weighting can still use them.
  std::vector<std::string> tokens = TokenizeName(instance.tag_name);
  // Repeat own-name tokens to up-weight them against path context.
  std::vector<std::string> own = tokens;
  tokens.insert(tokens.end(), own.begin(), own.end());
  std::vector<std::string> path = TokenizeName(instance.name_path);
  tokens.insert(tokens.end(), path.begin(), path.end());
  std::vector<std::string> synonyms = TokenizeName(instance.name_synonyms);
  tokens.insert(tokens.end(), synonyms.begin(), synonyms.end());
  return tokens;
}

Status NameMatcher::Train(const std::vector<TrainingExample>& examples,
                          const LabelSpace& labels) {
  n_labels_ = labels.size();
  std::vector<std::vector<std::string>> documents;
  std::vector<int> train_labels;
  documents.reserve(examples.size());
  train_labels.reserve(examples.size());
  for (const TrainingExample& example : examples) {
    documents.push_back(NameTokens(example.instance));
    train_labels.push_back(example.label);
  }
  whirl_ = WhirlClassifier(options_);
  model_generation_ = NextModelGeneration();
  fingerprint_ = 0;
  return whirl_.Train(documents, train_labels, n_labels_);
}

Prediction NameMatcher::Predict(const Instance& instance) const {
  if (!whirl_.trained()) return Prediction::Uniform(n_labels_);
  // Name features are column-level: every instance of a column carries the
  // same (tag name, path, synonyms), and the runtime predicts a column's
  // instances consecutively on one thread. A last-answer memo therefore
  // collapses the per-instance cost to one Whirl query per column. Keyed
  // on the model too, so a retrained/reloaded matcher never serves stale
  // answers; thread_local keeps it safe under the parallel runtime.
  thread_local uint64_t cached_generation = 0;
  thread_local std::string cached_key;
  thread_local Prediction cached_prediction;
  std::string key = instance.tag_name + '\x1f' + instance.name_path + '\x1f' +
                    instance.name_synonyms;
  if (cached_generation == model_generation_ && cached_key == key) {
    return cached_prediction;
  }
  cached_prediction = whirl_.Predict(NameTokens(instance));
  cached_generation = model_generation_;
  cached_key = std::move(key);
  return cached_prediction;
}

StatusOr<std::string> NameMatcher::SerializeModel() const {
  if (!whirl_.trained()) {
    return Status::FailedPrecondition("name-matcher: not trained");
  }
  return whirl_.Serialize();
}

Status NameMatcher::LoadModel(std::string_view text) {
  LSD_ASSIGN_OR_RETURN(whirl_, WhirlClassifier::Deserialize(text));
  n_labels_ = whirl_.label_count();
  model_generation_ = NextModelGeneration();
  fingerprint_ = 0;
  return Status::OK();
}


}  // namespace lsd
