#ifndef LSD_LEARNERS_CONTENT_MATCHER_H_
#define LSD_LEARNERS_CONTENT_MATCHER_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/learner.h"
#include "ml/whirl.h"

namespace lsd {

/// The Content Matcher of Section 3.3: Whirl nearest-neighbour
/// classification over the element's data content instead of its name.
/// Strong on long textual elements (descriptions) and elements with
/// distinctive value vocabularies (colors); weak on short numeric fields.
class ContentMatcher : public BaseLearner {
 public:
  explicit ContentMatcher(WhirlOptions options = WhirlOptions())
      : options_(options), whirl_(options) {}

  std::string name() const override { return "content-matcher"; }

  Status Train(const std::vector<TrainingExample>& examples,
               const LabelSpace& labels) override;

  Prediction Predict(const Instance& instance) const override;

  void PredictBatch(const std::vector<const Instance*>& batch,
                    std::vector<Prediction>* out) const override;

  /// Lazily computed from the serialized model bytes, so identically
  /// trained instances (e.g. service replicas) share one fingerprint.
  uint64_t CacheFingerprint() const override {
    if (fingerprint_ == 0 && whirl_.trained()) {
      fingerprint_ = FingerprintModelBytes(name(), whirl_.Serialize());
    }
    return fingerprint_;
  }

  std::unique_ptr<BaseLearner> CloneUntrained() const override {
    return std::make_unique<ContentMatcher>(options_);
  }

  StatusOr<std::string> SerializeModel() const override;
  Status LoadModel(std::string_view text) override;

 private:
  WhirlOptions options_;
  WhirlClassifier whirl_;
  size_t n_labels_ = 0;
  mutable uint64_t fingerprint_ = 0;
};

}  // namespace lsd

#endif  // LSD_LEARNERS_CONTENT_MATCHER_H_
