#include "net/wire.h"

#include <cstring>

#include "common/artifact_io.h"
#include "common/logging.h"
#include "common/serial.h"
#include "common/strings.h"

namespace lsd {
namespace net {
namespace {

constexpr char kRequestKind[] = "net-request";
constexpr char kResponseKind[] = "net-response";

void AppendU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

uint32_t ReadU32(const char* bytes) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(bytes[i]);
  }
  return value;
}

/// Validates the 16-byte header prefix of `bytes` (which must hold at
/// least kFrameHeaderBytes). Classification order is part of the protocol
/// contract — see wire.h.
Status CheckHeader(const char* bytes, size_t max_payload, FrameType* type,
                   uint32_t* payload_len, uint32_t* payload_crc) {
  if (std::memcmp(bytes, kWireMagic, sizeof(kWireMagic)) != 0) {
    return Status::ParseError("not an LSD wire frame (bad magic)");
  }
  uint8_t version = static_cast<uint8_t>(bytes[4]);
  if (version != kWireVersion) {
    return Status::FailedPrecondition(
        StrFormat("unsupported wire version %u (this build speaks %u)",
                  version, kWireVersion));
  }
  uint8_t raw_type = static_cast<uint8_t>(bytes[5]);
  if (raw_type != static_cast<uint8_t>(FrameType::kRequest) &&
      raw_type != static_cast<uint8_t>(FrameType::kResponse)) {
    return Status::ParseError(StrFormat("unknown frame type %u", raw_type));
  }
  if (bytes[6] != 0 || bytes[7] != 0) {
    return Status::ParseError("nonzero reserved bytes in frame header");
  }
  *type = static_cast<FrameType>(raw_type);
  *payload_len = ReadU32(bytes + 8);
  *payload_crc = ReadU32(bytes + 12);
  if (*payload_len > max_payload) {
    return Status::OutOfRange(
        StrFormat("frame payload of %u bytes exceeds the %zu-byte limit",
                  *payload_len, max_payload));
  }
  return Status::OK();
}

/// Fetches the payload of the first section named `name`, or kParseError.
StatusOr<std::string> RequireSection(const Artifact& artifact,
                                     std::string_view name) {
  const ArtifactSection* section = artifact.Find(name);
  if (section == nullptr) {
    return Status::ParseError(artifact.kind + " payload lacks section '" +
                              std::string(name) + "'");
  }
  return section->payload;
}

StatusOr<uint64_t> SectionToU64(const Artifact& artifact,
                                std::string_view name) {
  LSD_ASSIGN_OR_RETURN(std::string field, RequireSection(artifact, name));
  LSD_ASSIGN_OR_RETURN(size_t value, FieldToSize(field));
  return static_cast<uint64_t>(value);
}

StatusOr<bool> SectionToBool(const Artifact& artifact, std::string_view name) {
  LSD_ASSIGN_OR_RETURN(std::string field, RequireSection(artifact, name));
  if (field == "0") return false;
  if (field == "1") return true;
  return Status::ParseError("bad boolean field '" + field + "' in section '" +
                            std::string(name) + "'");
}

/// Clamps a status message to kMaxStatusMessageBytes (marker included).
/// Decode-error messages quote client-controlled bytes, so without the
/// clamp a hostile multi-megabyte section would be echoed into the error
/// response and could push its payload past kMaxFramePayloadBytes.
std::string ClampStatusMessage(std::string_view message) {
  if (message.size() <= kMaxStatusMessageBytes) return std::string(message);
  constexpr char kMarker[] = " ...[truncated]";
  constexpr size_t kKeep = kMaxStatusMessageBytes - (sizeof(kMarker) - 1);
  std::string clamped(message.substr(0, kKeep));
  clamped.append(kMarker);
  return clamped;
}

StatusOr<WireOutcome> ParseOutcome(const std::string& name) {
  for (WireOutcome outcome :
       {WireOutcome::kOk, WireOutcome::kDegraded, WireOutcome::kFailed,
        WireOutcome::kShed}) {
    if (name == WireOutcomeName(outcome)) return outcome;
  }
  return Status::ParseError("unknown wire outcome: " + name);
}

StatusOr<StatusCode> ParseStatusCode(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kParseError,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded, StatusCode::kDataLoss,
        StatusCode::kUnavailable}) {
    if (name == StatusCodeToString(code)) return code;
  }
  return Status::ParseError("unknown status code: " + name);
}

}  // namespace

const char* WireOutcomeName(WireOutcome outcome) {
  switch (outcome) {
    case WireOutcome::kOk:
      return "ok";
    case WireOutcome::kDegraded:
      return "degraded";
    case WireOutcome::kFailed:
      return "failed";
    case WireOutcome::kShed:
      return "shed";
  }
  return "unknown";
}

Status WireResponse::ToStatus() const {
  if (status_code == StatusCode::kOk) return Status::OK();
  return Status(status_code, status_message);
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  LSD_CHECK(payload.size() <= kMaxFramePayloadBytes);
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kWireMagic, sizeof(kWireMagic));
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  out.push_back(0);
  out.push_back(0);
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  AppendU32(&out, Crc32(payload));
  out.append(payload);
  return out;
}

std::string EncodeRequestPayload(const WireRequest& request) {
  Artifact artifact;
  artifact.kind = kRequestKind;
  artifact.sections.push_back({"id", request.id});
  artifact.sections.push_back(
      {"deadline-ms", StrFormat("%lld",
                                static_cast<long long>(request.deadline_ms))});
  artifact.sections.push_back({"dtd", request.dtd_text});
  artifact.sections.push_back({"xml", request.xml_text});
  return EncodeArtifact(artifact);
}

std::string EncodeResponsePayload(const WireResponse& response) {
  Artifact artifact;
  artifact.kind = kResponseKind;
  artifact.sections.push_back({"id", response.id});
  artifact.sections.push_back(
      {"outcome", WireOutcomeName(response.outcome)});
  artifact.sections.push_back(
      {"status-code", StatusCodeToString(response.status_code)});
  artifact.sections.push_back(
      {"status-message", ClampStatusMessage(response.status_message)});
  artifact.sections.push_back({"mapping", response.mapping});
  artifact.sections.push_back({"fingerprint", response.fingerprint});
  artifact.sections.push_back(
      {"attempts", StrFormat("%llu",
                             (unsigned long long)response.attempts)});
  artifact.sections.push_back(
      {"retries", StrFormat("%llu", (unsigned long long)response.retries)});
  artifact.sections.push_back(
      {"latency-micros",
       StrFormat("%llu", (unsigned long long)response.latency_micros)});
  artifact.sections.push_back(
      {"model-version",
       StrFormat("%llu", (unsigned long long)response.model_version)});
  artifact.sections.push_back(
      {"breaker-skipped", response.breaker_skipped ? "1" : "0"});
  artifact.sections.push_back(
      {"deadline-overrun", response.deadline_overrun ? "1" : "0"});
  return EncodeArtifact(artifact);
}

StatusOr<WireRequest> DecodeRequestPayload(std::string_view payload) {
  LSD_ASSIGN_OR_RETURN(Artifact artifact,
                       DecodeArtifact(payload, kRequestKind));
  WireRequest request;
  LSD_ASSIGN_OR_RETURN(request.id, RequireSection(artifact, "id"));
  LSD_ASSIGN_OR_RETURN(std::string deadline,
                       RequireSection(artifact, "deadline-ms"));
  LSD_ASSIGN_OR_RETURN(request.deadline_ms, FieldToInt64(deadline));
  LSD_ASSIGN_OR_RETURN(request.dtd_text, RequireSection(artifact, "dtd"));
  LSD_ASSIGN_OR_RETURN(request.xml_text, RequireSection(artifact, "xml"));
  return request;
}

StatusOr<WireResponse> DecodeResponsePayload(std::string_view payload) {
  LSD_ASSIGN_OR_RETURN(Artifact artifact,
                       DecodeArtifact(payload, kResponseKind));
  WireResponse response;
  LSD_ASSIGN_OR_RETURN(response.id, RequireSection(artifact, "id"));
  LSD_ASSIGN_OR_RETURN(std::string outcome,
                       RequireSection(artifact, "outcome"));
  LSD_ASSIGN_OR_RETURN(response.outcome, ParseOutcome(outcome));
  LSD_ASSIGN_OR_RETURN(std::string code,
                       RequireSection(artifact, "status-code"));
  LSD_ASSIGN_OR_RETURN(response.status_code, ParseStatusCode(code));
  LSD_ASSIGN_OR_RETURN(response.status_message,
                       RequireSection(artifact, "status-message"));
  LSD_ASSIGN_OR_RETURN(response.mapping, RequireSection(artifact, "mapping"));
  LSD_ASSIGN_OR_RETURN(response.fingerprint,
                       RequireSection(artifact, "fingerprint"));
  LSD_ASSIGN_OR_RETURN(response.attempts, SectionToU64(artifact, "attempts"));
  LSD_ASSIGN_OR_RETURN(response.retries, SectionToU64(artifact, "retries"));
  LSD_ASSIGN_OR_RETURN(response.latency_micros,
                       SectionToU64(artifact, "latency-micros"));
  LSD_ASSIGN_OR_RETURN(response.model_version,
                       SectionToU64(artifact, "model-version"));
  LSD_ASSIGN_OR_RETURN(response.breaker_skipped,
                       SectionToBool(artifact, "breaker-skipped"));
  LSD_ASSIGN_OR_RETURN(response.deadline_overrun,
                       SectionToBool(artifact, "deadline-overrun"));
  return response;
}

std::string EncodeRequestFrame(const WireRequest& request) {
  return EncodeFrame(FrameType::kRequest, EncodeRequestPayload(request));
}

std::string EncodeResponseFrame(const WireResponse& response) {
  return EncodeFrame(FrameType::kResponse, EncodeResponsePayload(response));
}

std::string EncodeBoundedResponseFrame(const WireResponse& response) {
  std::string payload = EncodeResponsePayload(response);
  if (payload.size() <= kMaxFramePayloadBytes) {
    return EncodeFrame(FrameType::kResponse, payload);
  }
  WireResponse fallback;
  fallback.id = response.id;
  fallback.outcome = WireOutcome::kFailed;
  fallback.status_code = StatusCode::kOutOfRange;
  fallback.status_message =
      StrFormat("response payload of %zu bytes exceeds the %zu-byte frame "
                "limit; mapping withheld",
                payload.size(), kMaxFramePayloadBytes);
  fallback.attempts = response.attempts;
  fallback.retries = response.retries;
  fallback.latency_micros = response.latency_micros;
  fallback.model_version = response.model_version;
  fallback.breaker_skipped = response.breaker_skipped;
  fallback.deadline_overrun = response.deadline_overrun;
  return EncodeFrame(FrameType::kResponse, EncodeResponsePayload(fallback));
}

StatusOr<DecodedFrame> DecodeFrame(std::string_view bytes,
                                   size_t max_payload) {
  if (bytes.size() < kFrameHeaderBytes) {
    return Status::OutOfRange(
        StrFormat("frame truncated: %zu bytes is shorter than the %zu-byte "
                  "header",
                  bytes.size(), kFrameHeaderBytes));
  }
  DecodedFrame frame;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
  LSD_RETURN_IF_ERROR(CheckHeader(bytes.data(), max_payload, &frame.type,
                                  &payload_len, &payload_crc));
  size_t total = kFrameHeaderBytes + payload_len;
  if (bytes.size() < total) {
    return Status::OutOfRange(
        StrFormat("frame truncated: header promises %u payload bytes, %zu "
                  "remain",
                  payload_len, bytes.size() - kFrameHeaderBytes));
  }
  if (bytes.size() > total) {
    return Status::ParseError(
        StrFormat("%zu trailing bytes after a complete frame",
                  bytes.size() - total));
  }
  std::string_view payload = bytes.substr(kFrameHeaderBytes, payload_len);
  if (Crc32(payload) != payload_crc) {
    return Status::DataLoss("frame payload fails its CRC32 check");
  }
  frame.payload.assign(payload);
  return frame;
}

void FrameDecoder::Feed(std::string_view bytes) {
  // Compact lazily: drop consumed bytes once they dominate the buffer so a
  // long-lived connection doesn't grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

StatusOr<bool> FrameDecoder::Next(DecodedFrame* frame) {
  if (!failed_.ok()) return failed_;
  size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return false;
  const char* head = buffer_.data() + consumed_;
  FrameType type = FrameType::kRequest;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
  Status header =
      CheckHeader(head, max_payload_, &type, &payload_len, &payload_crc);
  if (!header.ok()) {
    failed_ = header;
    return failed_;
  }
  if (available < kFrameHeaderBytes + payload_len) return false;
  std::string_view payload(head + kFrameHeaderBytes, payload_len);
  if (Crc32(payload) != payload_crc) {
    failed_ = Status::DataLoss("frame payload fails its CRC32 check");
    return failed_;
  }
  frame->type = type;
  frame->payload.assign(payload);
  consumed_ += kFrameHeaderBytes + payload_len;
  return true;
}

}  // namespace net
}  // namespace lsd
