#ifndef LSD_NET_SERVER_H_
#define LSD_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/status.h"
#include "net/wire.h"
#include "service/match_service.h"

namespace lsd {
namespace net {

struct NetServerOptions {
  /// Address to bind; the default keeps every test and the check.sh smoke
  /// on loopback.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via `port()`).
  uint16_t port = 0;
  /// Accept bound: a connection past this is accepted and immediately
  /// closed (counted in net.rejected_at_capacity, not in net.accepted,
  /// which counts only admitted connections) so the backlog cannot grow
  /// unbounded sockets.
  size_t max_connections = 64;
  /// Read-throttle threshold: when a connection has this many requests
  /// submitted but unanswered, the server stops reading from it (EPOLLIN
  /// off) until responses drain. Backpressure, not an error.
  size_t max_in_flight_per_connection = 8;
  /// Hard bound on a connection's queued unsent response bytes. A client
  /// that stops reading while responses accumulate past this is closed
  /// (net.write_overflow_closes) — the alternative is unbounded memory.
  size_t max_write_buffer_bytes = 8u << 20;
  /// Reading resumes (EPOLLIN back on) once the write buffer drains below
  /// this and in-flight is back under the cap.
  size_t resume_read_below_bytes = 1u << 20;
};

/// Epoll-based non-blocking TCP front end for a MatchService.
///
/// One I/O thread owns the listening socket, every connection's state
/// machine, and an eventfd the response router uses to hand completed
/// responses back from service worker threads. Frames arrive through
/// `FrameDecoder` (framing damage is connection-fatal; payload decode
/// errors get an error response frame), requests enter the service via
/// `SubmitAsync` so the I/O thread never blocks, and admission-control
/// sheds come back inline as immediate kUnavailable responses. See
/// DESIGN.md "Network transport & wire protocol".
///
/// Fault seams (deterministic, keyed "conn-<n>" in accept order):
/// kNetAccept closes a connection at accept, kNetRead closes it instead
/// of reading, kNetWrite closes it instead of writing.
class NetServer {
 public:
  /// Binds, listens, and starts the I/O thread. Fails with kUnavailable
  /// if the socket cannot be bound.
  static StatusOr<std::unique_ptr<NetServer>> Create(MatchService* service,
                                                     NetServerOptions options);

  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (the real one when options.port was 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, closes every connection, and joins the I/O thread.
  /// Safe to call more than once. Responses still in flight inside the
  /// service resolve against a dead router and are dropped.
  void Stop();

 private:
  struct Connection;
  struct Router;

  NetServer() = default;

  void IoLoop();
  void HandleAccept();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  void DrainRouter();
  void OnRequestFrame(Connection* conn, const std::string& payload);
  void QueueResponse(Connection* conn, const WireResponse& response);
  void QueueFrame(Connection* conn, std::string frame);
  void UpdateInterest(Connection* conn);
  void CloseConnection(Connection* conn, const char* reason);

  MatchService* service_ = nullptr;
  NetServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  std::shared_ptr<Router> router_;
  std::thread io_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  // I/O-thread-only state: every access happens on io_thread_.
  uint64_t next_conn_id_ = 0;
  /// Keyed by connection id, which is also the epoll registration token
  /// (epoll_event.data.u64). Ids are never reused, so a stale event left
  /// in an epoll_wait batch by a connection closed earlier in that batch
  /// cannot be misdelivered — even when the kernel has already recycled
  /// the fd number for a connection accepted later in the same batch.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
};

}  // namespace net
}  // namespace lsd

#endif  // LSD_NET_SERVER_H_
