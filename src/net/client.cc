#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/deadline.h"
#include "common/strings.h"

namespace lsd {
namespace net {
namespace {

/// Transport failures are all kUnavailable: that is the class the retry
/// policy fires on, and it matches what the service itself uses for
/// transient trouble.
Status Transport(const std::string& what) {
  return Status::Unavailable(what);
}

/// Polls `fd` for `events` within the deadline. kUnavailable on timeout.
Status PollFor(int fd, short events, const Deadline& deadline,
               const char* what) {
  while (true) {
    int64_t remaining = deadline.remaining_millis();
    if (remaining <= 0) return Transport(StrFormat("%s timed out", what));
    if (remaining > 1000000) remaining = 1000000;
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int n = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Transport(StrFormat("%s: poll: %s", what, strerror(errno)));
    }
    if (n == 0) continue;  // Re-check the deadline.
    return Status::OK();
  }
}

}  // namespace

NetClient::NetClient(NetClientOptions options)
    : options_(std::move(options)),
      backoff_(options_.backoff, options_.backoff_seed) {}

NetClient::~NetClient() { Disconnect(); }

void NetClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // A fresh connection is a fresh byte stream: drop any sticky decode
  // error and any half-frame from the dead one.
  decoder_ = FrameDecoder();
}

Status NetClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Transport(StrFormat("socket(): %s", strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    // A bad address is a configuration error, not a transient: no retry.
    return Status::InvalidArgument("bad host address: " + options_.host);
  }
  Deadline deadline = Deadline::AfterMillis(options_.connect_timeout_ms);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      Status status =
          Transport(StrFormat("connect(%s:%u): %s", options_.host.c_str(),
                              static_cast<unsigned>(options_.port),
                              strerror(errno)));
      ::close(fd);
      return status;
    }
    Status ready = PollFor(fd, POLLOUT, deadline, "connect");
    if (!ready.ok()) {
      ::close(fd);
      return ready;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      Status status = Transport(
          StrFormat("connect(%s:%u): %s", options_.host.c_str(),
                    static_cast<unsigned>(options_.port),
                    strerror(err != 0 ? err : errno)));
      ::close(fd);
      return status;
    }
  }
  int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  fd_ = fd;
  decoder_ = FrameDecoder();
  return Status::OK();
}

Status NetClient::SendAll(const std::string& bytes, const Deadline& deadline) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        LSD_RETURN_IF_ERROR(PollFor(fd_, POLLOUT, deadline, "send"));
        continue;
      }
      return Transport(StrFormat("send(): %s", strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<WireResponse> NetClient::ReadResponse(const Deadline& deadline) {
  char buf[64 * 1024];
  while (true) {
    DecodedFrame frame;
    LSD_ASSIGN_OR_RETURN(bool got, decoder_.Next(&frame));
    if (got) {
      if (frame.type != FrameType::kResponse) {
        return Status::ParseError("server sent a non-response frame");
      }
      return DecodeResponsePayload(frame.payload);
    }
    LSD_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline, "receive"));
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      // The ambiguous outcome: the server closed with our request possibly
      // executed. Matching is idempotent, so the retry policy may resend.
      return Transport("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Transport(StrFormat("recv(): %s", strerror(errno)));
    }
    decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Status NetClient::CallOnce(const WireRequest& request,
                           WireResponse* response) {
  std::string payload = EncodeRequestPayload(request);
  if (payload.size() > kMaxFramePayloadBytes) {
    // The server would reject this length prefix from the header alone;
    // fail locally with the same class (non-retryable) instead of
    // LSD_CHECK-aborting inside EncodeFrame.
    return Status::OutOfRange(
        StrFormat("request payload of %zu bytes exceeds the %zu-byte frame "
                  "limit",
                  payload.size(), kMaxFramePayloadBytes));
  }
  Status status = EnsureConnected();
  if (status.ok()) {
    Deadline io = Deadline::AfterMillis(options_.io_timeout_ms);
    status = SendAll(EncodeFrame(FrameType::kRequest, payload), io);
    if (status.ok()) {
      StatusOr<WireResponse> result = ReadResponse(io);
      if (result.ok()) {
        *response = std::move(*result);
        return Status::OK();
      }
      status = result.status();
    }
  }
  // Any per-attempt failure poisons the connection state (bytes may be
  // half-sent or half-read); reconnect before the next attempt.
  Disconnect();
  return status;
}

StatusOr<WireResponse> NetClient::Call(const WireRequest& request) {
  WireResponse response;
  Status status = RetryWithBackoff(
      backoff_, request.id, Deadline::Infinite(),
      /*retryable=*/
      [](const Status& s) { return s.code() == StatusCode::kUnavailable; },
      /*sleep_millis=*/
      [](int64_t ms) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      },
      [&] { return CallOnce(request, &response); });
  if (!status.ok()) return status;
  return response;
}

}  // namespace net
}  // namespace lsd
