#ifndef LSD_NET_WIRE_H_
#define LSD_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace lsd {
namespace net {

/// The LSD wire protocol: length-prefixed, CRC32-framed, versioned frames
/// carrying match requests and responses between the client library and
/// the epoll server (see DESIGN.md "Network transport & wire protocol").
///
/// Frame layout (16-byte header, little-endian integers):
///
///     offset  size  field
///          0     4  magic "LSDN"
///          4     1  wire version (kWireVersion)
///          5     1  frame type (FrameType)
///          6     2  reserved, must be zero
///          8     4  payload length in bytes (uint32)
///         12     4  CRC32 of the payload (uint32, IEEE 802.3)
///         16     n  payload
///
/// The payload is itself an encoded artifact (common/artifact_io.h) of
/// kind "net-request" / "net-response", so structural damage inside a
/// frame is classified by the same validated-framing discipline the
/// persistence layer uses. Decode failures map onto the existing error
/// taxonomy — the same classes the artifact loader uses:
///
///     not this protocol (bad magic / reserved)   -> kParseError
///     version skew (unknown wire version)        -> kFailedPrecondition
///     oversized length prefix                    -> kOutOfRange
///     truncation (frame ends early, one-shot)    -> kOutOfRange
///     checksum mismatch (bit flip)               -> kDataLoss
///     structurally valid but wrong content       -> kParseError /
///                                                   kInvalidArgument
///
/// Framing errors are connection-fatal: after a bad magic byte or CRC
/// mismatch the stream offset can no longer be trusted, so the server
/// closes the connection instead of guessing where the next frame starts.
/// A *payload* that frames correctly but decodes badly is not fatal — the
/// stream is still in sync, so the server answers with an error response.

inline constexpr char kWireMagic[4] = {'L', 'S', 'D', 'N'};
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
/// Ceiling on a frame payload; a length prefix above this is rejected with
/// kOutOfRange before any buffering happens, so a hostile or corrupt
/// 4-byte prefix cannot make the peer allocate gigabytes.
inline constexpr size_t kMaxFramePayloadBytes = 16u << 20;
/// Ceiling on the status-message section of an encoded response. Decode
/// errors quote the offending bytes ("bad integer field: ..."), which are
/// client-controlled; EncodeResponsePayload clamps the section to this
/// many bytes so an error response stays small no matter how large the
/// request that provoked it was — an unclamped echo could push the error
/// response itself past kMaxFramePayloadBytes.
inline constexpr size_t kMaxStatusMessageBytes = 4096;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

/// Request-side terminal outcome, mirroring service RequestOutcome without
/// making the wire codec depend on the service layer (the client library
/// links only lsd_net + lsd_common).
enum class WireOutcome : uint8_t {
  kOk = 0,
  kDegraded = 1,
  kFailed = 2,
  kShed = 3,
};
const char* WireOutcomeName(WireOutcome outcome);

/// One match request as it crosses the wire. Mirrors ServiceRequest: the
/// deadline is *relative* (milliseconds of budget, spent from the moment
/// the server submits it; negative = server default), so client and server
/// clocks never need to agree.
struct WireRequest {
  std::string id;
  int64_t deadline_ms = -1;
  std::string dtd_text;
  std::string xml_text;
};

/// One match response. `status_code`/`status_message` carry the service
/// Status for failed/shed outcomes; `mapping` and `fingerprint` are the
/// exact bytes the service produced, which is what lets the loopback
/// tests byte-compare network responses against file-replay runs.
struct WireResponse {
  std::string id;
  WireOutcome outcome = WireOutcome::kFailed;
  StatusCode status_code = StatusCode::kOk;
  std::string status_message;
  std::string mapping;
  std::string fingerprint;
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t latency_micros = 0;
  uint64_t model_version = 0;
  bool breaker_skipped = false;
  bool deadline_overrun = false;

  /// The response's Status object (OK for ok/degraded outcomes).
  Status ToStatus() const;
};

/// Encodes a frame around an already-encoded payload.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Payload codecs (artifact-framed, see file comment).
std::string EncodeRequestPayload(const WireRequest& request);
std::string EncodeResponsePayload(const WireResponse& response);
StatusOr<WireRequest> DecodeRequestPayload(std::string_view payload);
StatusOr<WireResponse> DecodeResponsePayload(std::string_view payload);

/// EncodeFrame over the encoded payload.
std::string EncodeRequestFrame(const WireRequest& request);
std::string EncodeResponseFrame(const WireResponse& response);

/// EncodeResponseFrame that can never abort on size: when the encoded
/// payload would exceed kMaxFramePayloadBytes (an enormous mapping), the
/// response is replaced by a kFailed/kOutOfRange error frame carrying the
/// same id and scalar fields, so a server answers instead of LSD_CHECKing
/// the whole process down. The server uses this for every response.
std::string EncodeBoundedResponseFrame(const WireResponse& response);

/// A decoded frame: its type plus the raw (CRC-verified) payload bytes.
struct DecodedFrame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// One-shot decode: `bytes` must hold exactly one complete frame.
/// Truncation anywhere — header or payload — is kOutOfRange; trailing
/// bytes after the frame are kParseError. Used by tests and anywhere a
/// frame arrives pre-delimited.
StatusOr<DecodedFrame> DecodeFrame(std::string_view bytes,
                                   size_t max_payload = kMaxFramePayloadBytes);

/// Incremental frame decoder for a byte stream: feed socket reads in, pull
/// complete frames out. Validation order pins the taxonomy: magic first
/// (kParseError), then version (kFailedPrecondition), then the reserved
/// bytes (kParseError), then the length prefix against `max_payload`
/// (kOutOfRange, before buffering the payload), then the payload CRC
/// (kDataLoss). Any error is sticky: the stream offset is untrustworthy,
/// so every later call returns the same error.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kMaxFramePayloadBytes)
      : max_payload_(max_payload) {}

  /// Appends bytes read from the transport.
  void Feed(std::string_view bytes);

  /// Extracts the next complete frame. Returns true and fills `*frame`
  /// when one is available, false when more bytes are needed, or the
  /// classifying error on damage (sticky).
  StatusOr<bool> Next(DecodedFrame* frame);

  /// Bytes buffered but not yet consumed by a complete frame.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  size_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;
  Status failed_ = Status::OK();
};

}  // namespace net
}  // namespace lsd

#endif  // LSD_NET_WIRE_H_
