#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"

namespace lsd {
namespace net {
namespace {

struct NetMetrics {
  Counter* accepted;
  Counter* rejected_at_capacity;
  Counter* requests;
  Counter* responses;
  Counter* payload_errors;
  Counter* frame_errors;
  Counter* responses_dropped;
  Counter* read_throttles;
  Counter* write_overflow_closes;
  Counter* connections_closed;
  Counter* bytes_read;
  Counter* bytes_written;
  Gauge* connections_peak;
  Gauge* write_buffer_peak;
  Histogram* request_micros;
};

/// Interns every net.* series at first use so a server that never sees a
/// given event still exports the zero — the metrics "net" profile
/// (scripts/metrics_schema.json) depends on the full set being present.
NetMetrics& GetNetMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static NetMetrics metrics{
      registry.GetCounter("net.accepted"),
      registry.GetCounter("net.rejected_at_capacity"),
      registry.GetCounter("net.requests"),
      registry.GetCounter("net.responses"),
      registry.GetCounter("net.payload_errors"),
      registry.GetCounter("net.frame_errors"),
      registry.GetCounter("net.responses_dropped"),
      registry.GetCounter("net.read_throttles"),
      registry.GetCounter("net.write_overflow_closes"),
      registry.GetCounter("net.connections_closed"),
      registry.GetCounter("net.bytes_read"),
      registry.GetCounter("net.bytes_written"),
      registry.GetGauge("net.connections_peak"),
      registry.GetGauge("net.write_buffer_peak"),
      registry.GetHistogram("net.request_micros")};
  return metrics;
}

WireOutcome ToWireOutcome(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk:
      return WireOutcome::kOk;
    case RequestOutcome::kDegraded:
      return WireOutcome::kDegraded;
    case RequestOutcome::kFailed:
      return WireOutcome::kFailed;
    case RequestOutcome::kShed:
      return WireOutcome::kShed;
  }
  return WireOutcome::kFailed;
}

WireResponse ToWireResponse(const ServiceResponse& response) {
  WireResponse wire;
  wire.id = response.id;
  wire.outcome = ToWireOutcome(response.outcome);
  wire.status_code = response.status.code();
  wire.status_message = response.status.message();
  wire.mapping = response.mapping;
  wire.fingerprint = response.fingerprint;
  wire.attempts = response.attempts;
  wire.retries = response.retries;
  wire.latency_micros = response.latency_micros;
  wire.model_version = response.model_version;
  wire.breaker_skipped = response.breaker_skipped;
  wire.deadline_overrun = response.deadline_overrun;
  return wire;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

/// Epoll registration tokens (epoll_event.data.u64). Connections are
/// registered under their id; the listening socket and the router eventfd
/// use reserved values the monotonic id counter can never reach.
constexpr uint64_t kListenToken = ~0ull;
constexpr uint64_t kWakeToken = ~0ull - 1;

}  // namespace

/// Per-connection state machine. Owned by the I/O thread; nothing here is
/// touched from any other thread (responses cross over via the Router).
struct NetServer::Connection {
  int fd = -1;
  uint64_t id = 0;
  /// Fault-injection key, fixed at accept: "conn-<n>" in accept order —
  /// a pure function of arrival order, so seeded runs are reproducible.
  std::string key;
  FrameDecoder decoder;
  /// Unsent response bytes; out_off tracks the partially-written prefix.
  std::string outbuf;
  size_t out_off = 0;
  /// Requests submitted to the service whose responses have not yet been
  /// routed back. Drives read throttling.
  size_t in_flight = 0;
  bool read_paused = false;
  /// The epoll event mask currently installed, to elide no-op MOD calls.
  uint32_t installed_mask = 0;

  size_t pending_out() const { return outbuf.size() - out_off; }
};

/// Hand-off point between service worker threads (which complete requests)
/// and the I/O thread (which owns the sockets). Worker callbacks push
/// encoded response frames here and tickle the eventfd; the I/O thread
/// drains on wakeup. The router is held by shared_ptr from the server and
/// from every in-flight callback, so a callback firing after Stop() — or
/// after the whole server is destroyed — finds `alive == false` and drops
/// the response instead of touching freed state.
struct NetServer::Router {
  std::mutex mu;
  bool alive = true;
  int event_fd = -1;
  /// (connection id, encoded response frame, request service micros).
  std::vector<std::tuple<uint64_t, std::string, uint64_t>> ready;

  ~Router() { CloseFd(event_fd); }

  void Push(uint64_t conn_id, std::string frame, uint64_t micros) {
    std::lock_guard<std::mutex> lock(mu);
    if (!alive) return;
    ready.emplace_back(conn_id, std::move(frame), micros);
    Wake();
  }

  /// Must hold mu or be called before the I/O thread could close shop.
  void Wake() const {
    uint64_t one = 1;
    ssize_t n = ::write(event_fd, &one, sizeof(one));
    (void)n;  // The counter saturating still leaves the fd readable.
  }
};

StatusOr<std::unique_ptr<NetServer>> NetServer::Create(
    MatchService* service, NetServerOptions options) {
  LSD_CHECK(service != nullptr);
  GetNetMetrics();  // Intern the series before any traffic.

  int listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) {
    return Status::Unavailable(StrFormat("socket(): %s", strerror(errno)));
  }
  int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    CloseFd(listen_fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options.bind_address);
  }
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::Unavailable(
        StrFormat("bind(%s:%u): %s", options.bind_address.c_str(),
                  static_cast<unsigned>(options.port), strerror(errno)));
    CloseFd(listen_fd);
    return status;
  }
  if (::listen(listen_fd, 128) < 0) {
    Status status =
        Status::Unavailable(StrFormat("listen(): %s", strerror(errno)));
    CloseFd(listen_fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    Status status =
        Status::Unavailable(StrFormat("getsockname(): %s", strerror(errno)));
    CloseFd(listen_fd);
    return status;
  }

  int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    Status status =
        Status::Unavailable(StrFormat("epoll_create1(): %s", strerror(errno)));
    CloseFd(listen_fd);
    return status;
  }
  int event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (event_fd < 0) {
    Status status =
        Status::Unavailable(StrFormat("eventfd(): %s", strerror(errno)));
    CloseFd(epoll_fd);
    CloseFd(listen_fd);
    return status;
  }

  auto server = std::unique_ptr<NetServer>(new NetServer());
  server->service_ = service;
  server->options_ = std::move(options);
  server->port_ = ntohs(addr.sin_port);
  server->listen_fd_ = listen_fd;
  server->epoll_fd_ = epoll_fd;
  server->router_ = std::make_shared<Router>();
  server->router_->event_fd = event_fd;

  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenToken;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev) < 0) {
    return Status::Unavailable(
        StrFormat("epoll_ctl(listen): %s", strerror(errno)));
  }
  ev.data.u64 = kWakeToken;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, event_fd, &ev) < 0) {
    return Status::Unavailable(
        StrFormat("epoll_ctl(eventfd): %s", strerror(errno)));
  }

  server->io_thread_ = std::thread([raw = server.get()] { raw->IoLoop(); });
  return server;
}

NetServer::~NetServer() { Stop(); }

void NetServer::Stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  router_->Wake();
  if (io_thread_.joinable()) io_thread_.join();
  {
    // Late service callbacks now drop their responses instead of pushing
    // frames nothing will ever drain.
    std::lock_guard<std::mutex> lock(router_->mu);
    router_->alive = false;
    router_->ready.clear();
  }
  CloseFd(listen_fd_);
  CloseFd(epoll_fd_);
  listen_fd_ = -1;
  epoll_fd_ = -1;
}

void NetServer::IoLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd broken — only happens when tearing down.
    }
    for (int i = 0; i < n; ++i) {
      if (stopping_.load(std::memory_order_acquire)) break;
      uint64_t token = events[i].data.u64;
      if (token == kListenToken) {
        HandleAccept();
        continue;
      }
      if (token == kWakeToken) {
        DrainRouter();
        continue;
      }
      // Ids are never reused, so a stale event for a connection closed
      // earlier this batch misses here — it cannot hit a connection that
      // was accepted later in the batch onto the recycled fd number.
      auto it = conns_.find(token);
      if (it == conns_.end()) continue;
      Connection* conn = it->second.get();
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(conn, "hangup");
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        HandleWritable(conn);
        // The write path may have closed the connection.
        if (conns_.find(token) == conns_.end()) continue;
      }
      if (events[i].events & EPOLLIN) {
        HandleReadable(conn);
      }
    }
  }
  // Teardown on the I/O thread so connection state needs no locking.
  std::vector<Connection*> open;
  open.reserve(conns_.size());
  for (auto& entry : conns_) open.push_back(entry.second.get());
  for (Connection* conn : open) CloseConnection(conn, "server stop");
}

void NetServer::HandleAccept() {
  TraceSpan span("net-accept");
  NetMetrics& metrics = GetNetMetrics();
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: wait for epoll.
    }
    uint64_t id = next_conn_id_++;
    std::string key = StrFormat("conn-%llu", static_cast<unsigned long long>(id));
    if (conns_.size() >= options_.max_connections) {
      metrics.rejected_at_capacity->Increment();
      CloseFd(fd);
      continue;
    }
    if (FaultInjectionActive() &&
        !CheckFault(FaultSite::kNetAccept, key).ok()) {
      // Injected accept failure: the client sees an immediate close, the
      // same observable a crashed peer or exhausted fd table produces.
      CloseFd(fd);
      continue;
    }
    // Only admitted connections count: net.accepted minus
    // net.connections_closed is the live-connection figure, which
    // capacity rejects and injected accept failures must not skew.
    metrics.accepted->Increment();
    int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = id;
    conn->key = std::move(key);
    Connection* raw = conn.get();
    conns_[id] = std::move(conn);
    metrics.connections_peak->RecordMax(conns_.size());

    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      metrics.connections_closed->Increment();
      conns_.erase(id);
      CloseFd(fd);
      continue;
    }
    raw->installed_mask = EPOLLIN;
  }
}

void NetServer::HandleReadable(Connection* conn) {
  NetMetrics& metrics = GetNetMetrics();
  if (FaultInjectionActive() &&
      !CheckFault(FaultSite::kNetRead, conn->key).ok()) {
    // Injected mid-stream failure: the peer sees EOF with requests
    // possibly unanswered — exactly what a dropped TCP session looks like.
    CloseConnection(conn, "injected read fault");
    return;
  }
  char buf[64 * 1024];
  const uint64_t conn_id = conn->id;  // Survives conn freed by a close below.
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      CloseConnection(conn, "peer closed");
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn, "read error");
      return;
    }
    metrics.bytes_read->Increment(static_cast<uint64_t>(n));
    conn->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    // Drain every complete frame already in memory; read throttling only
    // stops *further* socket reads, so buffered work is bounded by one
    // recv buffer plus the decoder's partial frame.
    while (true) {
      DecodedFrame frame;
      StatusOr<bool> got = conn->decoder.Next(&frame);
      if (!got.ok()) {
        // Framing damage: the stream offset cannot be trusted, so there
        // is no safe way to keep parsing — close, per the wire contract.
        metrics.frame_errors->Increment();
        CloseConnection(conn, "framing error");
        return;
      }
      if (!*got) break;
      if (frame.type != FrameType::kRequest) {
        metrics.frame_errors->Increment();
        CloseConnection(conn, "unexpected frame type");
        return;
      }
      OnRequestFrame(conn, frame.payload);
      if (conns_.find(conn_id) == conns_.end()) return;  // Overflow close.
    }
    if (static_cast<size_t>(n) < sizeof(buf)) break;  // Drained the socket.
  }
  UpdateInterest(conn);
}

void NetServer::OnRequestFrame(Connection* conn, const std::string& payload) {
  NetMetrics& metrics = GetNetMetrics();
  TraceSpan span("net-request");
  StatusOr<WireRequest> request = DecodeRequestPayload(payload);
  if (!request.ok()) {
    // The frame was intact (CRC passed) but the payload does not decode:
    // the stream is still in sync, so answer instead of closing.
    metrics.payload_errors->Increment();
    WireResponse error;
    error.outcome = WireOutcome::kFailed;
    error.status_code = request.status().code();
    error.status_message = request.status().message();
    QueueResponse(conn, error);
    return;
  }
  ServiceRequest service_request;
  service_request.id = request->id;
  service_request.dtd_text = std::move(request->dtd_text);
  service_request.xml_text = std::move(request->xml_text);
  // Relative-deadline propagation: the client's budget enters the service
  // here, where Submit starts the clock — queue wait and the anytime-A*
  // path both spend the client's milliseconds, not a server default.
  service_request.deadline_ms = request->deadline_ms;

  ++conn->in_flight;
  metrics.requests->Increment();
  std::shared_ptr<Router> router = router_;
  uint64_t conn_id = conn->id;
  auto start = std::chrono::steady_clock::now();
  // Sheds fire this callback inline (still on the I/O thread) and become
  // an immediate kUnavailable response; executed requests fire it on a
  // service worker thread, which also pays for the frame encode so the
  // I/O thread only memcpys.
  service_->SubmitAsync(
      std::move(service_request),
      [router, conn_id, start](ServiceResponse response) {
        // Bounded encode: a response too large to frame (or one whose
        // status message echoes hostile request bytes) degrades to a
        // small error frame instead of LSD_CHECK-aborting the server.
        std::string frame =
            EncodeBoundedResponseFrame(ToWireResponse(response));
        uint64_t micros = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
        router->Push(conn_id, std::move(frame), micros);
      });
  UpdateInterest(conn);
}

void NetServer::DrainRouter() {
  TraceSpan span("net-respond");
  NetMetrics& metrics = GetNetMetrics();
  uint64_t drained = 0;
  ssize_t n = ::read(router_->event_fd, &drained, sizeof(drained));
  (void)n;
  std::vector<std::tuple<uint64_t, std::string, uint64_t>> ready;
  {
    std::lock_guard<std::mutex> lock(router_->mu);
    ready.swap(router_->ready);
  }
  for (auto& [conn_id, frame, micros] : ready) {
    metrics.request_micros->Record(micros);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) {
      // The connection died while its request executed.
      metrics.responses_dropped->Increment();
      continue;
    }
    Connection* conn = it->second.get();
    LSD_CHECK(conn->in_flight > 0);
    --conn->in_flight;
    QueueFrame(conn, std::move(frame));
    if (conns_.find(conn_id) != conns_.end()) {
      UpdateInterest(conn);
    }
  }
}

void NetServer::QueueResponse(Connection* conn, const WireResponse& response) {
  // Survives conn being freed by an overflow close.
  const uint64_t conn_id = conn->id;
  QueueFrame(conn, EncodeBoundedResponseFrame(response));
  if (conns_.find(conn_id) != conns_.end()) UpdateInterest(conn);
}

void NetServer::QueueFrame(Connection* conn, std::string frame) {
  NetMetrics& metrics = GetNetMetrics();
  if (conn->pending_out() + frame.size() > options_.max_write_buffer_bytes) {
    // The peer stopped reading while responses piled up; holding the
    // bytes forever is unbounded memory, so the connection pays instead.
    metrics.write_overflow_closes->Increment();
    CloseConnection(conn, "write buffer overflow");
    return;
  }
  if (conn->out_off > 0 && conn->out_off == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_off = 0;
  }
  conn->outbuf.append(frame);
  metrics.responses->Increment();
  metrics.write_buffer_peak->RecordMax(conn->pending_out());
  // Opportunistic write: most responses fit the socket buffer, so this
  // usually drains in one call and EPOLLOUT never needs to be armed.
  HandleWritable(conn);
}

void NetServer::HandleWritable(Connection* conn) {
  NetMetrics& metrics = GetNetMetrics();
  if (conn->pending_out() == 0) {
    UpdateInterest(conn);
    return;
  }
  if (FaultInjectionActive() &&
      !CheckFault(FaultSite::kNetWrite, conn->key).ok()) {
    // Injected write failure with responses queued: the client observes
    // a close after the request was accepted — the retry-ambiguity case.
    CloseConnection(conn, "injected write fault");
    return;
  }
  while (conn->pending_out() > 0) {
    ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_off,
                       conn->pending_out(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn, "write error");
      return;
    }
    metrics.bytes_written->Increment(static_cast<uint64_t>(n));
    conn->out_off += static_cast<size_t>(n);
  }
  if (conn->out_off == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_off = 0;
  }
  UpdateInterest(conn);
}

void NetServer::UpdateInterest(Connection* conn) {
  NetMetrics& metrics = GetNetMetrics();
  // Backpressure rule: stop reading while this connection has a full
  // complement of requests in flight or a backlog of unsent bytes; resume
  // when both drain. Deterministic in the request/response counts, so
  // tests can force the paused state exactly.
  bool want_read =
      conn->in_flight < options_.max_in_flight_per_connection &&
      conn->pending_out() < options_.resume_read_below_bytes;
  if (!want_read && !conn->read_paused) {
    conn->read_paused = true;
    metrics.read_throttles->Increment();
  } else if (want_read && conn->read_paused) {
    conn->read_paused = false;
  }
  uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (conn->pending_out() > 0) mask |= EPOLLOUT;
  if (mask == conn->installed_mask) return;
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = mask;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->installed_mask = mask;
  }
}

void NetServer::CloseConnection(Connection* conn, const char* reason) {
  (void)reason;
  GetNetMetrics().connections_closed->Increment();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  CloseFd(conn->fd);
  conns_.erase(conn->id);  // Frees conn.
}

}  // namespace net
}  // namespace lsd
