#ifndef LSD_NET_CLIENT_H_
#define LSD_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/backoff.h"
#include "common/status.h"
#include "net/wire.h"

namespace lsd {
namespace net {

struct NetClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// TCP connect timeout.
  int64_t connect_timeout_ms = 2000;
  /// Per-call send/receive timeout: the whole request frame must go out
  /// and the whole response frame must come back within this budget each.
  /// Independent of the *service* deadline (WireRequest.deadline_ms),
  /// which bounds matching work server-side; this bounds the transport.
  int64_t io_timeout_ms = 30000;
  /// Retry policy for *transport* failures. Retries reconnect first — the
  /// common transient is a dropped connection, not a broken payload.
  BackoffPolicy backoff;
  /// Seed for the deterministic retry jitter.
  uint64_t backoff_seed = 1;
};

/// Blocking client for the LSD wire protocol. One connection, serial
/// request/response (the server happily pipelines, but the blocking API
/// has no need to); not thread-safe — use one client per thread.
///
/// Retry discipline (see DESIGN.md): only *transient transport* failures
/// are retried — refused/failed connects, dropped connections, timeouts —
/// all of which surface as kUnavailable. Server-side answers, including
/// shed kUnavailable *responses*, are returned to the caller verbatim:
/// the service already ran its own admission and retry machinery, and the
/// client re-driving it from outside would double-retry. Frame damage
/// (kDataLoss, kParseError, kFailedPrecondition, kOutOfRange) is never
/// retried: resending bytes does not fix version skew or a corrupt peer.
class NetClient {
 public:
  explicit NetClient(NetClientOptions options);
  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Sends one request and blocks for its response, reconnecting and
  /// retrying per the options' backoff policy on transient failures.
  StatusOr<WireResponse> Call(const WireRequest& request);

  /// Closes the connection (the next Call reconnects).
  void Disconnect();

 private:
  Status EnsureConnected();
  Status SendAll(const std::string& bytes, const Deadline& deadline);
  StatusOr<WireResponse> ReadResponse(const Deadline& deadline);
  Status CallOnce(const WireRequest& request, WireResponse* response);

  NetClientOptions options_;
  Backoff backoff_;
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace lsd

#endif  // LSD_NET_CLIENT_H_
