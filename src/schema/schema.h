#ifndef LSD_SCHEMA_SCHEMA_H_
#define LSD_SCHEMA_SCHEMA_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/dtd.h"
#include "xml/xml.h"

namespace lsd {

/// A data source participating in integration: a named source schema (DTD)
/// plus the data listings downloaded from it. Listings are XML documents
/// conforming to the schema.
struct DataSource {
  std::string name;
  Dtd schema;
  std::vector<XmlDocument> listings;

  /// Validates every listing against the source schema.
  Status ValidateListings() const;
};

/// A 1-1 semantic mapping from source-schema tags to mediated-schema
/// labels (Section 2). Tags that match nothing map to OTHER.
class Mapping {
 public:
  Mapping() = default;

  /// Sets (or overwrites) the label for a source tag.
  void Set(std::string source_tag, std::string label);

  /// Returns the label for `source_tag`, or nullptr when unmapped.
  const std::string* Find(std::string_view source_tag) const;

  /// Returns the label or OTHER when unmapped.
  std::string LabelOrOther(std::string_view source_tag) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Ordered (tag, label) pairs.
  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

  /// Source tags currently mapped to `label`.
  std::vector<std::string> TagsWithLabel(std::string_view label) const;

  /// Renders one "tag <=> LABEL" line per entry.
  std::string ToString() const;

 private:
  std::map<std::string, std::string> entries_;
};

/// Parses the text format produced by `Mapping::ToString`: one
/// "tag <=> LABEL" entry per line; blank lines and lines starting with '#'
/// are ignored. Rejects duplicate tags and malformed lines.
StatusOr<Mapping> ParseMapping(std::string_view text);

/// Domain synonym dictionary used by the name matcher's expansion: each
/// known word maps to the words it is interchangeable with ("phone" ->
/// {"telephone", "contact"}). Lookup is symmetric only if entries are
/// added in both directions; `AddGroup` adds a full clique.
class SynonymDictionary {
 public:
  SynonymDictionary() = default;

  /// Declares `words` mutually synonymous.
  void AddGroup(const std::vector<std::string>& words);

  /// Returns synonyms of `word` (excluding the word itself).
  std::vector<std::string> SynonymsOf(std::string_view word) const;

  /// Expands a list of name tokens with all their synonyms (deduplicated,
  /// original tokens first).
  std::vector<std::string> Expand(const std::vector<std::string>& tokens) const;

  size_t size() const { return groups_.size(); }

 private:
  std::map<std::string, std::vector<std::string>, std::less<>> groups_;
};

}  // namespace lsd

#endif  // LSD_SCHEMA_SCHEMA_H_
