#include "schema/schema.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace lsd {

Status DataSource::ValidateListings() const {
  LSD_RETURN_IF_ERROR(schema.Validate());
  for (size_t i = 0; i < listings.size(); ++i) {
    Status status = schema.ValidateDocument(listings[i].root);
    if (!status.ok()) {
      return Status(status.code(), "listing " + std::to_string(i) + " of '" +
                                       name + "': " + status.message());
    }
  }
  return Status::OK();
}

void Mapping::Set(std::string source_tag, std::string label) {
  entries_[std::move(source_tag)] = std::move(label);
}

const std::string* Mapping::Find(std::string_view source_tag) const {
  auto it = entries_.find(std::string(source_tag));
  return it == entries_.end() ? nullptr : &it->second;
}

std::string Mapping::LabelOrOther(std::string_view source_tag) const {
  const std::string* label = Find(source_tag);
  return label != nullptr ? *label : std::string("OTHER");
}

std::vector<std::string> Mapping::TagsWithLabel(std::string_view label) const {
  std::vector<std::string> out;
  for (const auto& [tag, tag_label] : entries_) {
    if (tag_label == label) out.push_back(tag);
  }
  return out;
}

std::string Mapping::ToString() const {
  std::string out;
  for (const auto& [tag, label] : entries_) {
    out += tag + " <=> " + label + "\n";
  }
  return out;
}

StatusOr<Mapping> ParseMapping(std::string_view text) {
  Mapping out;
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line.front() == '#') continue;
    size_t arrow = line.find("<=>");
    if (arrow == std::string_view::npos) {
      return Status::ParseError(StrFormat(
          "mapping line %zu: expected 'tag <=> LABEL'", line_number));
    }
    std::string tag(StripWhitespace(line.substr(0, arrow)));
    std::string label(StripWhitespace(line.substr(arrow + 3)));
    if (tag.empty() || label.empty()) {
      return Status::ParseError(
          StrFormat("mapping line %zu: empty tag or label", line_number));
    }
    if (out.Find(tag) != nullptr) {
      return Status::ParseError(
          StrFormat("mapping line %zu: duplicate tag '%s'", line_number,
                    tag.c_str()));
    }
    out.Set(std::move(tag), std::move(label));
  }
  return out;
}

void SynonymDictionary::AddGroup(const std::vector<std::string>& words) {
  for (const std::string& word : words) {
    std::vector<std::string>& bucket = groups_[word];
    for (const std::string& other : words) {
      if (other == word) continue;
      if (std::find(bucket.begin(), bucket.end(), other) == bucket.end()) {
        bucket.push_back(other);
      }
    }
  }
}

std::vector<std::string> SynonymDictionary::SynonymsOf(
    std::string_view word) const {
  auto it = groups_.find(word);
  if (it == groups_.end()) return {};
  return it->second;
}

std::vector<std::string> SynonymDictionary::Expand(
    const std::vector<std::string>& tokens) const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const std::string& token : tokens) {
    if (seen.insert(token).second) out.push_back(token);
  }
  for (const std::string& token : tokens) {
    for (const std::string& synonym : SynonymsOf(token)) {
      if (seen.insert(synonym).second) out.push_back(synonym);
    }
  }
  return out;
}

}  // namespace lsd
