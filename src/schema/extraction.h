#ifndef LSD_SCHEMA_EXTRACTION_H_
#define LSD_SCHEMA_EXTRACTION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/learner.h"
#include "schema/schema.h"

namespace lsd {

/// Options for `ExtractColumns`.
struct ExtractionOptions {
  /// Use at most this many listings from the source (0 = all). The paper
  /// extracts 20-300 listings per source.
  size_t max_listings = 0;
  /// Synonym dictionary used to fill `Instance::name_synonyms`; may be
  /// null.
  const SynonymDictionary* synonyms = nullptr;
};

/// All extracted data instances for one source-schema tag — the "column"
/// of Figure 2.b and Section 3.2 step 1.
struct Column {
  std::string tag;
  std::vector<Instance> instances;
};

/// Extracts one column per source-schema tag from the source's listings
/// (first `max_listings` of them). Every element occurrence, leaf or
/// non-leaf, yields an Instance whose `node` points into the source's
/// listings — the source must outlive the returned columns. Tags declared
/// in the schema but absent from the sampled data still get an (empty)
/// column so the matcher can emit a mapping for them.
StatusOr<std::vector<Column>> ExtractColumns(
    const DataSource& source,
    const ExtractionOptions& options = ExtractionOptions());

/// Builds an Instance for `node` found along `path_names` (tag names from
/// the listing root inclusive to the node inclusive).
Instance MakeInstance(const XmlNode& node,
                      const std::vector<std::string>& path_names,
                      const SynonymDictionary* synonyms);

/// Flattens columns and a gold mapping into learner training examples:
/// one example per instance, labeled via the mapping (OTHER when the tag
/// is unmapped). Tags whose label is missing from `labels` are skipped.
std::vector<TrainingExample> MakeTrainingExamples(
    const std::vector<Column>& columns, const Mapping& gold,
    const LabelSpace& labels);

}  // namespace lsd

#endif  // LSD_SCHEMA_EXTRACTION_H_
