#include "schema/extraction.h"

#include <map>

#include "common/strings.h"
#include "text/tokenizer.h"

namespace lsd {
namespace {

void CollectInstances(const XmlNode& node, std::vector<std::string>* path,
                      const SynonymDictionary* synonyms, int listing_index,
                      std::map<std::string, Column>* columns) {
  path->push_back(node.name);
  auto it = columns->find(node.name);
  if (it != columns->end()) {
    Instance instance = MakeInstance(node, *path, synonyms);
    instance.listing_index = listing_index;
    it->second.instances.push_back(std::move(instance));
  }
  for (const XmlNode& child : node.children) {
    CollectInstances(child, path, synonyms, listing_index, columns);
  }
  path->pop_back();
}

}  // namespace

Instance MakeInstance(const XmlNode& node,
                      const std::vector<std::string>& path_names,
                      const SynonymDictionary* synonyms) {
  Instance instance;
  instance.tag_name = node.name;
  instance.name_path = Join(path_names, " ");
  if (synonyms != nullptr) {
    TokenizerOptions options;
    options.stem = false;  // synonym keys are unstemmed words
    std::vector<std::string> tokens = TokenizeName(node.name, options);
    std::vector<std::string> expanded = synonyms->Expand(tokens);
    // Record only the genuinely new words.
    std::vector<std::string> extra(expanded.begin() + static_cast<long>(tokens.size()),
                                   expanded.end());
    instance.name_synonyms = Join(extra, " ");
  }
  instance.content = node.DeepText();
  instance.node = &node;
  return instance;
}

StatusOr<std::vector<Column>> ExtractColumns(const DataSource& source,
                                             const ExtractionOptions& options) {
  LSD_RETURN_IF_ERROR(source.schema.Validate());
  std::map<std::string, Column> columns;
  for (const std::string& tag : source.schema.AllTags()) {
    columns[tag].tag = tag;
  }
  size_t limit = options.max_listings == 0
                     ? source.listings.size()
                     : std::min(options.max_listings, source.listings.size());
  std::vector<std::string> path;
  for (size_t i = 0; i < limit; ++i) {
    CollectInstances(source.listings[i].root, &path, options.synonyms,
                     static_cast<int>(i), &columns);
  }
  // Preserve schema declaration order.
  std::vector<Column> out;
  out.reserve(columns.size());
  for (const std::string& tag : source.schema.AllTags()) {
    out.push_back(std::move(columns[tag]));
  }
  return out;
}

std::vector<TrainingExample> MakeTrainingExamples(
    const std::vector<Column>& columns, const Mapping& gold,
    const LabelSpace& labels) {
  std::vector<TrainingExample> out;
  for (const Column& column : columns) {
    std::string label_name = gold.LabelOrOther(column.tag);
    int label = labels.IndexOf(label_name);
    if (label < 0) continue;
    for (const Instance& instance : column.instances) {
      out.push_back(TrainingExample{instance, label});
    }
  }
  return out;
}

}  // namespace lsd
