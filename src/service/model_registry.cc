#include "service/model_registry.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/artifact_io.h"
#include "common/file_util.h"
#include "common/serial.h"
#include "common/strings.h"

namespace lsd {
namespace {

constexpr const char* kManifestKind = "model-registry";
constexpr const char* kManifestName = "registry.manifest";
constexpr const char* kModelKind = "model";
constexpr uint32_t kManifestFormatVersion = 1;

StatusOr<uint64_t> FieldToU64(const std::string& field) {
  LSD_ASSIGN_OR_RETURN(size_t value, FieldToSize(field));
  return static_cast<uint64_t>(value);
}

bool ParseHexU32(const std::string& field, uint32_t* out) {
  if (field.empty() || field.size() > 8) return false;
  uint32_t value = 0;
  for (char c : field) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint32_t>(digit);
  }
  *out = value;
  return true;
}

}  // namespace

const char* ModelVersionStatusName(ModelVersionStatus status) {
  switch (status) {
    case ModelVersionStatus::kCandidate:
      return "candidate";
    case ModelVersionStatus::kServing:
      return "serving";
    case ModelVersionStatus::kRetired:
      return "retired";
    case ModelVersionStatus::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

StatusOr<ModelVersionStatus> ParseModelVersionStatus(std::string_view name) {
  if (name == "candidate") return ModelVersionStatus::kCandidate;
  if (name == "serving") return ModelVersionStatus::kServing;
  if (name == "retired") return ModelVersionStatus::kRetired;
  if (name == "quarantined") return ModelVersionStatus::kQuarantined;
  return Status::ParseError("unknown model version status: " +
                            std::string(name));
}

ModelRegistry::ModelRegistry(std::string dir) : dir_(std::move(dir)) {}

std::string ModelRegistry::ManifestPath() const {
  return dir_ + "/" + kManifestName;
}

std::string ModelRegistry::VersionPath(uint64_t id) const {
  return StrFormat("%s/v%llu.model", dir_.c_str(),
                   static_cast<unsigned long long>(id));
}

Status ModelRegistry::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_) return Status::OK();
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::Internal("cannot create model registry dir '" + dir_ +
                            "': " + std::strerror(errno));
  }
  if (!FileExists(ManifestPath())) {
    // Fresh registry: publish an empty manifest immediately so a reopen
    // (or a crash right after Open) finds a well-formed registry.
    open_ = true;
    Status written = WriteManifestLocked();
    if (!written.ok()) open_ = false;
    return written;
  }
  LSD_ASSIGN_OR_RETURN(Artifact manifest,
                       ReadArtifact(ManifestPath(), kManifestKind));
  const ArtifactSection* state = manifest.Find("state");
  if (state == nullptr) {
    return Status::ParseError("registry manifest missing 'state' section");
  }
  LineReader reader(state->payload);
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       reader.Expect("model-registry", 2));
  LSD_ASSIGN_OR_RETURN(uint64_t format, FieldToU64(header[1]));
  if (format > kManifestFormatVersion) {
    return Status::FailedPrecondition(
        StrFormat("registry manifest format %llu is newer than this build",
                  static_cast<unsigned long long>(format)));
  }
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> next,
                       reader.Expect("next-version", 2));
  LSD_ASSIGN_OR_RETURN(next_version_, FieldToU64(next[1]));
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> serving,
                       reader.Expect("serving", 2));
  LSD_ASSIGN_OR_RETURN(serving_, FieldToU64(serving[1]));
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> last_good,
                       reader.Expect("last-good", 2));
  LSD_ASSIGN_OR_RETURN(last_good_, FieldToU64(last_good[1]));
  LSD_ASSIGN_OR_RETURN(std::vector<std::string> count,
                       reader.Expect("versions", 2));
  LSD_ASSIGN_OR_RETURN(size_t n, FieldToSize(count[1]));
  versions_.clear();
  versions_.reserve(n);
  uint64_t previous_id = 0;
  for (size_t i = 0; i < n; ++i) {
    LSD_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         reader.Expect("v", 5));
    ModelVersionInfo info;
    LSD_ASSIGN_OR_RETURN(info.id, FieldToU64(fields[1]));
    LSD_ASSIGN_OR_RETURN(info.status, ParseModelVersionStatus(fields[2]));
    uint32_t crc = 0;
    if (!ParseHexU32(fields[3], &crc)) {
      return Status::ParseError("bad crc field in registry manifest: " +
                                fields[3]);
    }
    info.crc32 = crc;
    LSD_ASSIGN_OR_RETURN(info.size_bytes, FieldToU64(fields[4]));
    if (info.id == 0 || info.id <= previous_id || info.id >= next_version_) {
      return Status::ParseError(
          "registry manifest version ids must be ascending and below "
          "next-version");
    }
    previous_id = info.id;
    versions_.push_back(info);
  }
  LSD_RETURN_IF_ERROR(ExpectAtEnd(reader, "registry manifest"));
  open_ = true;
  return Status::OK();
}

Status ModelRegistry::WriteManifestLocked() {
  std::string payload =
      StrFormat("model-registry %u\n", kManifestFormatVersion);
  payload += StrFormat("next-version %llu\n",
                       static_cast<unsigned long long>(next_version_));
  payload += StrFormat("serving %llu\n",
                       static_cast<unsigned long long>(serving_));
  payload += StrFormat("last-good %llu\n",
                       static_cast<unsigned long long>(last_good_));
  payload += StrFormat("versions %zu\n", versions_.size());
  for (const ModelVersionInfo& info : versions_) {
    payload += StrFormat("v %llu %s %08x %llu\n",
                         static_cast<unsigned long long>(info.id),
                         ModelVersionStatusName(info.status), info.crc32,
                         static_cast<unsigned long long>(info.size_bytes));
  }
  Artifact manifest;
  manifest.kind = kManifestKind;
  manifest.sections.push_back({"state", std::move(payload)});
  return WriteArtifact(ManifestPath(), manifest);
}

StatusOr<size_t> ModelRegistry::FindLocked(uint64_t id) const {
  for (size_t i = 0; i < versions_.size(); ++i) {
    if (versions_[i].id == id) return i;
  }
  return Status::NotFound(StrFormat(
      "model version %llu is not registered",
      static_cast<unsigned long long>(id)));
}

StatusOr<uint64_t> ModelRegistry::AddVersion(const std::string& source_path) {
  LSD_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(source_path));
  // Validate before copying: junk must never gain a version id.
  LSD_RETURN_IF_ERROR(DecodeArtifact(bytes, kModelKind).status());
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("registry is not open");
  ModelVersionInfo info;
  info.id = next_version_;
  info.status = ModelVersionStatus::kCandidate;
  info.crc32 = Crc32(bytes);
  info.size_bytes = bytes.size();
  LSD_RETURN_IF_ERROR(WriteFileAtomic(VersionPath(info.id), bytes));
  ++next_version_;
  versions_.push_back(info);
  Status written = WriteManifestLocked();
  if (!written.ok()) {
    // Roll the in-memory state back so the store matches the durable
    // manifest; the copied file is orphaned bytes, not a version.
    versions_.pop_back();
    --next_version_;
    return written;
  }
  return info.id;
}

StatusOr<std::string> ModelRegistry::VerifiedModelPath(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("registry is not open");
  LSD_ASSIGN_OR_RETURN(size_t index, FindLocked(id));
  ModelVersionInfo& info = versions_[index];
  if (info.status == ModelVersionStatus::kQuarantined) {
    return Status::FailedPrecondition(
        StrFormat("model version %llu is quarantined",
                  static_cast<unsigned long long>(id)));
  }
  std::string path = VersionPath(id);
  Status verdict = Status::OK();
  StatusOr<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) {
    verdict = bytes.status();
  } else if (bytes->size() != info.size_bytes || Crc32(*bytes) != info.crc32) {
    verdict = Status::DataLoss(
        StrFormat("model version %llu does not match its manifest "
                  "fingerprint (stored bytes damaged or replaced)",
                  static_cast<unsigned long long>(id)));
  } else {
    Status decoded = DecodeArtifact(*bytes, kModelKind).status();
    if (!decoded.ok()) verdict = decoded;
  }
  if (!verdict.ok()) {
    info.status = ModelVersionStatus::kQuarantined;
    if (serving_ == id) serving_ = 0;
    if (last_good_ == id) last_good_ = 0;
    (void)WriteManifestLocked();  // best effort; the verdict is the story
    return verdict;
  }
  return path;
}

Status ModelRegistry::SetServing(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("registry is not open");
  LSD_ASSIGN_OR_RETURN(size_t index, FindLocked(id));
  if (versions_[index].status == ModelVersionStatus::kQuarantined) {
    return Status::FailedPrecondition(
        StrFormat("cannot serve quarantined model version %llu",
                  static_cast<unsigned long long>(id)));
  }
  if (serving_ == id) return Status::OK();
  if (serving_ != 0) {
    StatusOr<size_t> old_index = FindLocked(serving_);
    if (old_index.ok() &&
        versions_[*old_index].status == ModelVersionStatus::kServing) {
      versions_[*old_index].status = ModelVersionStatus::kRetired;
    }
  }
  versions_[index].status = ModelVersionStatus::kServing;
  serving_ = id;
  return WriteManifestLocked();
}

Status ModelRegistry::MarkLastGood(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("registry is not open");
  LSD_ASSIGN_OR_RETURN(size_t index, FindLocked(id));
  if (versions_[index].status == ModelVersionStatus::kQuarantined) {
    return Status::FailedPrecondition(
        StrFormat("cannot mark quarantined model version %llu last-good",
                  static_cast<unsigned long long>(id)));
  }
  if (last_good_ == id) return Status::OK();
  last_good_ = id;
  return WriteManifestLocked();
}

Status ModelRegistry::Quarantine(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("registry is not open");
  LSD_ASSIGN_OR_RETURN(size_t index, FindLocked(id));
  if (versions_[index].status == ModelVersionStatus::kQuarantined) {
    return Status::OK();
  }
  versions_[index].status = ModelVersionStatus::kQuarantined;
  if (serving_ == id) serving_ = 0;
  if (last_good_ == id) last_good_ = 0;
  return WriteManifestLocked();
}

StatusOr<ModelVersionInfo> ModelRegistry::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  LSD_ASSIGN_OR_RETURN(size_t index, FindLocked(id));
  return versions_[index];
}

std::vector<ModelVersionInfo> ModelRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_;
}

uint64_t ModelRegistry::serving() const {
  std::lock_guard<std::mutex> lock(mu_);
  return serving_;
}

uint64_t ModelRegistry::last_good() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_good_;
}

}  // namespace lsd
