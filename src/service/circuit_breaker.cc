#include "service/circuit_breaker.h"

namespace lsd {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::Decision CircuitBreaker::NextDecision() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return Decision::kExecute;
    case BreakerState::kOpen:
      if (options_.open_skips == 0 ||
          ++skips_while_open_ >= options_.open_skips) {
        // Enough requests served without the learner; time to probe. This
        // request becomes the probe (skips_while_open_ kept so a failed
        // probe reopens with a fresh skip budget).
        state_ = BreakerState::kHalfOpen;
        skips_while_open_ = 0;
        probe_in_flight_ = true;
        return Decision::kProbe;
      }
      return Decision::kSkip;
    case BreakerState::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return Decision::kProbe;
      }
      return Decision::kSkip;
  }
  return Decision::kExecute;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  skips_while_open_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: back to open for another skip cycle.
    state_ = BreakerState::kOpen;
    skips_while_open_ = 0;
    probe_in_flight_ = false;
    ++open_transitions_;
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // already open; nothing new
  ++consecutive_failures_;
  if (options_.failure_threshold > 0 &&
      consecutive_failures_ >= options_.failure_threshold) {
    state_ = BreakerState::kOpen;
    skips_while_open_ = 0;
    ++open_transitions_;
  }
}

void CircuitBreaker::AbandonProbe() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) probe_in_flight_ = false;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

size_t CircuitBreaker::open_transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_transitions_;
}

CircuitBreaker* BreakerBank::Get(const std::string& learner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(learner);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(learner, std::make_unique<CircuitBreaker>(options_))
             .first;
  }
  return it->second.get();
}

BreakerState BreakerBank::StateOf(const std::string& learner) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(learner);
  return it == breakers_.end() ? BreakerState::kClosed : it->second->state();
}

size_t BreakerBank::TotalOpenTransitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [name, breaker] : breakers_) {
    total += breaker->open_transitions();
  }
  return total;
}

}  // namespace lsd
