#ifndef LSD_SERVICE_MODEL_REGISTRY_H_
#define LSD_SERVICE_MODEL_REGISTRY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace lsd {

/// Lifecycle state of one model version in the registry.
///
///     candidate --SetServing--> serving --SetServing(other)--> retired
///         |                       |
///         +----Quarantine---------+----> quarantined   (terminal)
///
/// `retired` versions may be re-promoted (rollback re-serves a previous
/// version); `quarantined` versions may not — quarantine records that the
/// bytes failed integrity re-verification or that the version was rejected
/// by shadow validation / rolled back by probation, and the registry
/// refuses to hand them out again.
enum class ModelVersionStatus {
  kCandidate,
  kServing,
  kRetired,
  kQuarantined,
};

/// Stable lowercase name ("candidate", "serving", ...), used in the
/// manifest and in operator output.
const char* ModelVersionStatusName(ModelVersionStatus status);

/// Inverse of ModelVersionStatusName; kParseError on unknown names.
StatusOr<ModelVersionStatus> ParseModelVersionStatus(std::string_view name);

/// Manifest entry for one registered model version.
struct ModelVersionInfo {
  uint64_t id = 0;
  ModelVersionStatus status = ModelVersionStatus::kCandidate;
  /// CRC32 and size of the stored artifact bytes, recorded at AddVersion
  /// time and re-verified by VerifiedModelPath.
  uint32_t crc32 = 0;
  uint64_t size_bytes = 0;
};

/// A versioned, crash-safe store of model artifacts backing the matching
/// service's hot-reload path.
///
/// Layout: one directory holding `v<id>.model` files (each a framed
/// artifact of kind "model", copied in via the atomic writer) plus
/// `registry.manifest`, a framed artifact of kind "model-registry" that
/// records every version's id, status, fingerprint (CRC32 + size), the
/// currently serving version, and the last-good pointer. The manifest is
/// rewritten atomically on every mutation, so a crash at any point leaves
/// a previous complete manifest — the same guarantee the PR-4 artifact
/// layer gives model bytes.
///
/// Version ids are monotonic and never reused, even across reopen: the
/// manifest persists `next-version`. All methods are thread-safe.
class ModelRegistry {
 public:
  explicit ModelRegistry(std::string dir);

  /// Creates the directory (one level) if needed and loads or initializes
  /// the manifest. Must be called (and succeed) before any other method.
  /// A corrupt manifest is reported, never silently reset — the registry
  /// is the source of truth for which model bytes are trustworthy.
  Status Open();

  /// Registers the model artifact at `source_path`: validates that the
  /// bytes decode as a "model" artifact, copies them into the registry
  /// directory under a fresh monotonic id, and records the version as
  /// `candidate`. Returns the new id.
  StatusOr<uint64_t> AddVersion(const std::string& source_path);

  /// Path of version `id`'s bytes after integrity re-verification: the
  /// stored file must match the manifest's size and CRC32 and still decode
  /// as a "model" artifact. On mismatch the version is quarantined and
  /// kDataLoss is returned; quarantined versions are refused outright
  /// (kFailedPrecondition).
  StatusOr<std::string> VerifiedModelPath(uint64_t id);

  /// Marks `id` as serving; the previously serving version (if different)
  /// becomes `retired`. Quarantined versions are refused.
  Status SetServing(uint64_t id);

  /// Moves the last-good pointer to `id` (typically after a version
  /// survives its post-swap probation window). Quarantined versions are
  /// refused.
  Status MarkLastGood(uint64_t id);

  /// Quarantines `id` (shadow-validation rejection, probation rollback, or
  /// integrity failure). If it was serving, the registry no longer has a
  /// serving version until SetServing is called with the rollback target;
  /// if it was last-good, the pointer is cleared.
  Status Quarantine(uint64_t id);

  /// Manifest entry for `id`; kNotFound if absent.
  StatusOr<ModelVersionInfo> Get(uint64_t id) const;

  /// All versions, ascending by id.
  std::vector<ModelVersionInfo> List() const;

  /// Currently serving version id, 0 if none.
  uint64_t serving() const;

  /// Last-good version id, 0 if none.
  uint64_t last_good() const;

  const std::string& dir() const { return dir_; }
  std::string ManifestPath() const;

 private:
  Status WriteManifestLocked();
  StatusOr<size_t> FindLocked(uint64_t id) const;
  std::string VersionPath(uint64_t id) const;

  const std::string dir_;
  mutable std::mutex mu_;
  bool open_ = false;
  uint64_t next_version_ = 1;
  uint64_t serving_ = 0;
  uint64_t last_good_ = 0;
  std::vector<ModelVersionInfo> versions_;
};

}  // namespace lsd

#endif  // LSD_SERVICE_MODEL_REGISTRY_H_
