#ifndef LSD_SERVICE_CIRCUIT_BREAKER_H_
#define LSD_SERVICE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lsd {

/// Breaker tuning shared by every learner's breaker in a service.
struct CircuitBreakerOptions {
  /// Consecutive predict failures that open the breaker. 0 disables the
  /// breaker entirely (never opens).
  size_t failure_threshold = 5;
  /// Requests short-circuited while open before the breaker moves to
  /// half-open and lets a single probe through.
  size_t open_skips = 3;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };
const char* BreakerStateName(BreakerState state);

/// Per-learner circuit breaker, layered on the PR-2 quarantine: while the
/// quarantine absorbs one request's learner failure *after paying for it*,
/// the breaker notices a failure streak and stops paying — requests skip
/// the learner up front (`MatchOptions::skip_learners`) and the ensemble
/// serves renormalized, byte-identical to the paid-failure path.
///
/// State machine (transitions are counted in requests, not wall time, so
/// a fixed request sequence drives the same transitions on every run and
/// thread count):
///
///   closed --(failure_threshold consecutive failures)--> open
///   open   --(open_skips short-circuited requests)-----> half-open
///   half-open: exactly one in-flight probe executes the learner for real;
///              the rest keep skipping.
///   probe success --> closed (streak reset)   probe failure --> open
///   probe abandoned (request died before the learner ran) --> half-open
///
/// Thread-safe: workers consult and report concurrently.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options)
      : options_(options) {}

  /// Decision for one request. `kSkip`: exclude the learner without
  /// running it. `kExecute`: run it normally. `kProbe`: run it, and you
  /// MUST later call exactly one of RecordSuccess / RecordFailure /
  /// AbandonProbe so the probe token is released.
  enum class Decision { kExecute, kSkip, kProbe };
  Decision NextDecision();

  /// The learner participated and produced usable predictions.
  void RecordSuccess();
  /// The learner failed (predict-time quarantine).
  void RecordFailure();
  /// A probe never reached the learner (the request failed elsewhere
  /// first); returns the breaker to half-open with the token free.
  void AbandonProbe();

  BreakerState state() const;
  /// Times the breaker transitioned closed/half-open -> open.
  size_t open_transitions() const;

 private:
  const CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;  // guarded by mu_
  size_t consecutive_failures_ = 0;             // guarded by mu_
  size_t skips_while_open_ = 0;                 // guarded by mu_
  bool probe_in_flight_ = false;                // guarded by mu_
  size_t open_transitions_ = 0;                 // guarded by mu_
};

/// Name -> breaker map for a learner roster; breakers are created lazily
/// and live as long as the bank.
class BreakerBank {
 public:
  explicit BreakerBank(CircuitBreakerOptions options) : options_(options) {}

  /// The breaker for `learner`, created on first use. Never null.
  CircuitBreaker* Get(const std::string& learner);

  /// State of `learner`'s breaker; kClosed when none exists yet.
  BreakerState StateOf(const std::string& learner) const;

  /// Sum of open transitions across every breaker.
  size_t TotalOpenTransitions() const;

 private:
  const CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
};

}  // namespace lsd

#endif  // LSD_SERVICE_CIRCUIT_BREAKER_H_
