#include "service/match_service.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "schema/schema.h"
#include "service/model_registry.h"
#include "xml/dtd_parser.h"
#include "xml/parse_report.h"
#include "xml/xml_parser.h"

namespace lsd {
namespace {

/// Service-wide metric handles, interned once (handle pointers are stable
/// for the process lifetime).
struct ServiceMetrics {
  Counter* submitted;
  Counter* admitted;
  Counter* shed;
  Counter* ok;
  Counter* degraded;
  Counter* failed;
  Counter* retried;
  Counter* breaker_open;
  Counter* breaker_skips;
  Counter* replicas_rebuilt;
  Counter* deadline_overruns;
  Counter* reloads;
  Counter* reload_rejections;
  Counter* rollbacks;
  Gauge* queue_depth_peak;
  Gauge* model_version;
  Histogram* request_micros;
  Histogram* shed_micros;
};

ServiceMetrics& GetServiceMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  // The pred_cache.* counters are interned here as well as in
  // pred_cache.cc so the metrics "service" profile always has them — a
  // cache-off service still exports zeros instead of missing series.
  registry.GetCounter("pred_cache.hits");
  registry.GetCounter("pred_cache.misses");
  registry.GetCounter("pred_cache.insertions");
  registry.GetCounter("pred_cache.evictions");
  static ServiceMetrics metrics{
      registry.GetCounter("service.submitted"),
      registry.GetCounter("service.admitted"),
      registry.GetCounter("service.shed"),
      registry.GetCounter("service.ok"),
      registry.GetCounter("service.degraded"),
      registry.GetCounter("service.failed"),
      registry.GetCounter("service.retried"),
      registry.GetCounter("service.breaker_open"),
      registry.GetCounter("service.breaker_skips"),
      registry.GetCounter("service.replicas_rebuilt"),
      registry.GetCounter("service.deadline_overruns"),
      registry.GetCounter("service.reloads"),
      registry.GetCounter("service.reload_rejections"),
      registry.GetCounter("service.rollbacks"),
      registry.GetGauge("service.queue_depth_peak"),
      registry.GetGauge("service.model_version"),
      registry.GetHistogram("service.request_micros"),
      registry.GetHistogram("service.shed_micros")};
  return metrics;
}

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// Canonical rendering of a match outcome for determinism comparison: the
/// mapping plus every tag's full-precision score vector. Two runs that
/// produce the same fingerprint made bit-identical decisions.
std::string Fingerprint(const MatchResult& result) {
  std::string out = result.mapping.ToString();
  out += "--\n";
  for (size_t t = 0; t < result.tags.size(); ++t) {
    out += result.tags[t];
    for (double score : result.tag_predictions[t].scores) {
      out += StrFormat(" %.17g", score);
    }
    out += "\n";
  }
  return out;
}

/// Parses a request's DTD/XML text into `source`. Lenient mode recovers
/// what it can and records the damage as degradation notes; strict mode
/// turns the first malformation into a (retryable) kParseError. Shared by
/// the hot execution path and golden-request shadow evaluation so both
/// see byte-identical inputs.
Status ParseRequestSource(const ServiceRequest& request, bool lenient,
                          DataSource* source, RunReport* parse_notes) {
  source->name = request.id;
  XmlDocument wrapper;
  if (lenient) {
    LSD_ASSIGN_OR_RETURN(DtdParseReport dtd_report,
                         ParseDtdLenient(request.dtd_text));
    if (!dtd_report.clean()) {
      parse_notes->notes.push_back(StrFormat(
          "lenient DTD parse recovered: %zu diagnostics, %zu declarations "
          "skipped",
          dtd_report.diagnostics.size(), dtd_report.skipped_declarations));
    }
    source->schema = std::move(dtd_report.dtd);
    LSD_ASSIGN_OR_RETURN(XmlParseReport xml_report,
                         ParseXmlLenient(request.xml_text));
    if (!xml_report.clean()) {
      parse_notes->notes.push_back(StrFormat(
          "lenient XML parse recovered: %zu diagnostics, %zu elements "
          "skipped",
          xml_report.diagnostics.size(), xml_report.skipped_elements));
    }
    wrapper = std::move(xml_report.document);
  } else {
    LSD_ASSIGN_OR_RETURN(source->schema, ParseDtd(request.dtd_text));
    LSD_ASSIGN_OR_RETURN(wrapper, ParseXml(request.xml_text));
  }
  if (wrapper.root.children.empty()) {
    return Status::InvalidArgument(
        request.id + ": the XML root element must wrap the listings");
  }
  for (XmlNode& listing : wrapper.root.children) {
    source->listings.emplace_back(std::move(listing));
  }
  return Status::OK();
}

}  // namespace

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kDegraded:
      return "degraded";
    case RequestOutcome::kFailed:
      return "failed";
    case RequestOutcome::kShed:
      return "shed";
  }
  return "unknown";
}

bool IsRetryableForService(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInternal:      // transient faults (injector defaults)
    case StatusCode::kUnavailable:   // momentary refusals
    case StatusCode::kParseError:    // recoverable parse errors
      return true;
    default:
      return false;
  }
}

StatusOr<std::unique_ptr<MatchService>> MatchService::Create(
    ReplicaFactory factory, MatchServiceOptions options) {
  if (!factory) {
    return Status::InvalidArgument("MatchService: replica factory is null");
  }
  if (options.workers == 0) {
    return Status::InvalidArgument("MatchService: workers must be >= 1");
  }
  if (options.max_queue_depth == 0) {
    return Status::InvalidArgument(
        "MatchService: max_queue_depth must be >= 1");
  }
  for (const ServiceRequest& golden : options.golden_requests) {
    // Golden ids key the kShadowEval fault seam and label eval spans.
    if (golden.id.empty()) {
      return Status::InvalidArgument(
          "MatchService: golden requests must carry an id");
    }
  }
  std::unique_ptr<MatchService> service(
      new MatchService(std::move(factory), std::move(options)));
  LSD_RETURN_IF_ERROR(service->BuildReplicas());
  LSD_RETURN_IF_ERROR(service->InitGoldenBaseline());
  service->StartWorkers();
  return service;
}

MatchService::MatchService(ReplicaFactory factory, MatchServiceOptions options)
    : factory_(std::move(factory)),
      options_(std::move(options)),
      backoff_(options_.backoff, options_.seed),
      breakers_(options_.breaker),
      exec_slot_start_(options_.workers),
      exec_slot_active_(options_.workers, 0) {
  if (options_.pred_cache_entries > 0) {
    pred_cache_ = std::make_shared<PredCache>(options_.pred_cache_entries);
  }
}

MatchService::~MatchService() { Stop(); }

Status MatchService::BuildReplicas() {
  slots_.resize(options_.workers);
  current_.systems.reserve(options_.workers);
  for (size_t slot = 0; slot < options_.workers; ++slot) {
    StatusOr<std::unique_ptr<LsdSystem>> replica = factory_();
    if (!replica.ok()) {
      return Status(replica.status().code(),
                    StrFormat("MatchService: replica %zu failed to build: %s",
                              slot, replica.status().message().c_str()));
    }
    if (*replica == nullptr || !(*replica)->trained()) {
      return Status::FailedPrecondition(
          "MatchService: the replica factory must return a trained system");
    }
    std::shared_ptr<LsdSystem> system(std::move(*replica));
    if (pred_cache_ != nullptr) {
      system->SetPredictionCache(pred_cache_);
    }
    slots_[slot].system = system;
    slots_[slot].factory = factory_;
    slots_[slot].version = 1;
    current_.systems.push_back(std::move(system));
  }
  current_.factory = factory_;
  current_.version = last_version_ = 1;
  return Status::OK();
}

Status MatchService::InitGoldenBaseline() {
  // Runs before StartWorkers: single-threaded, on the slot-0 replica. The
  // baseline a Reload validates against is always what the *serving*
  // generation answered on the golden set (each adopted swap re-baselines
  // from its own shadow run).
  for (const ServiceRequest& golden : options_.golden_requests) {
    StatusOr<MatchResult> result = EvalGolden(*slots_[0].system, golden);
    if (!result.ok()) {
      return Status(result.status().code(),
                    StrFormat("MatchService: golden request '%s' failed on "
                              "the initial replicas: %s",
                              golden.id.c_str(),
                              result.status().message().c_str()));
    }
    current_.golden_fingerprints.push_back(Fingerprint(*result));
    current_.golden_mappings.push_back(result->mapping.ToString());
  }
  return Status::OK();
}

StatusOr<MatchResult> MatchService::EvalGolden(LsdSystem& system,
                                               const ServiceRequest& golden) {
  DataSource source;
  RunReport parse_notes;
  LSD_RETURN_IF_ERROR(ParseRequestSource(golden, options_.lenient_parse,
                                         &source, &parse_notes));
  MatchOptions match_options = options_.match_options;
  // Shadow evaluation is off the hot path: no deadline, no breaker skips.
  match_options.deadline = Deadline();
  match_options.skip_learners.clear();
  return system.MatchSource(source, match_options);
}

void MatchService::StartWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = true;
    workers_live_ = true;
  }
  GetServiceMetrics().model_version->RecordMax(1);
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  dispatcher_ = std::thread([this] {
    // One long-lived task per worker slot, grain 1 so each slot is its own
    // claim. On a machine whose hardware concurrency collapses the pool to
    // the inline serial path, slot 0 serves the whole queue and the other
    // slots start (and immediately exit) only after Stop() — the service
    // still drains correctly, just without parallelism.
    Status status = pool_->ParallelFor(
        options_.workers,
        [this](size_t slot) -> Status {
          WorkerLoop(slot);
          return Status::OK();
        },
        /*grain=*/1);
    // Fleet gone — normal stop, or an injected pool fault killed it before
    // the queue drained. Either way nothing will ever pop the queue again,
    // so every pending promise must resolve now (no request may hang).
    FailRemaining(status.ok() ? "service stopped"
                              : "worker fleet died: " + status.ToString());
  });
}

std::future<ServiceResponse> MatchService::Submit(ServiceRequest request) {
  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  std::future<ServiceResponse> future = pending->promise.get_future();
  SubmitImpl(std::move(pending));
  return future;
}

void MatchService::SubmitAsync(ServiceRequest request,
                               std::function<void(ServiceResponse)> done) {
  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  pending->done = std::move(done);
  SubmitImpl(std::move(pending));
}

void MatchService::SubmitImpl(std::unique_ptr<Pending> pending) {
  pending->deadline_ms = pending->request.deadline_ms >= 0
                             ? pending->request.deadline_ms
                             : options_.default_deadline_ms;
  // The deadline starts at submit: queue wait spends the budget.
  pending->deadline = Deadline::AfterMillis(pending->deadline_ms);
  pending->submitted = std::chrono::steady_clock::now();

  Status admit = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    GetServiceMetrics().submitted->Increment();
    if (!accepting_) {
      admit = Status::Unavailable("service is not accepting requests");
    }
    if (admit.ok() && FaultInjectionActive()) {
      admit = CheckFault(FaultSite::kServiceAdmit, pending->request.id);
    }
    if (admit.ok() && queue_.size() + in_flight_ >= options_.max_queue_depth) {
      admit = Status::Unavailable(StrFormat(
          "queue full: %zu queued + %zu executing at depth limit %zu",
          queue_.size(), in_flight_, options_.max_queue_depth));
    }
    if (admit.ok() && pending->deadline_ms >= 0) {
      // Deadline-aware shedding: if the estimated queue wait alone exceeds
      // the remaining budget plus grace, execution could not even start in
      // time — fail fast instead of queueing doomed work. The estimate is
      // deliberately optimistic (assumes every worker slot drains), so
      // borderline requests are admitted and handled by the anytime path.
      double exec_estimate_micros = 0.0;
      if (ewma_seeded_) {
        exec_estimate_micros = avg_exec_micros_;
      } else {
        // Cold start: nothing has completed yet, so the EWMA is blind. The
        // age of the oldest still-running execution bounds the per-request
        // cost from below — enough to shed a zero-budget request stuck
        // behind a long-runner without ever over-estimating. With no
        // execution in flight the estimate stays 0 and everything admits
        // (an idle service can start any request immediately).
        auto now = std::chrono::steady_clock::now();
        for (size_t s = 0; s < exec_slot_active_.size(); ++s) {
          if (!exec_slot_active_[s]) continue;
          double age = static_cast<double>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - exec_slot_start_[s])
                  .count());
          exec_estimate_micros = std::max(exec_estimate_micros, age);
        }
      }
      if (exec_estimate_micros > 0.0) {
        double estimated_wait_ms = static_cast<double>(queue_.size() +
                                                       in_flight_) *
                                   exec_estimate_micros /
                                   (1000.0 *
                                    static_cast<double>(options_.workers));
        int64_t budget_ms = pending->deadline.remaining_millis();
        if (estimated_wait_ms >
            static_cast<double>(budget_ms) +
                static_cast<double>(options_.grace_ms)) {
          admit = Status::Unavailable(StrFormat(
              "deadline unmeetable: estimated queue wait %.0f ms exceeds "
              "remaining budget %lld ms + grace %lld ms",
              estimated_wait_ms, static_cast<long long>(budget_ms),
              static_cast<long long>(options_.grace_ms)));
        }
      }
    }
    if (admit.ok()) {
      ++stats_.admitted;
      GetServiceMetrics().admitted->Increment();
      queue_.push_back(std::move(pending));
      GetServiceMetrics().queue_depth_peak->RecordMax(queue_.size());
    }
  }
  if (!admit.ok()) {
    Shed(std::move(*pending), std::move(admit));
    return;
  }
  queue_cv_.notify_one();
}

ServiceResponse MatchService::Process(ServiceRequest request) {
  return Submit(std::move(request)).get();
}

void MatchService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

uint64_t MatchService::model_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.version;
}

StatusOr<MatchService::ReloadReport> MatchService::Reload(
    ReloadOptions reload) {
  if (!reload.factory) {
    return Status::InvalidArgument("Reload: candidate factory is null");
  }
  if (!reload.require_identical &&
      (reload.min_accuracy < 0.0 || reload.min_accuracy > 1.0)) {
    return Status::InvalidArgument("Reload: min_accuracy must be in [0, 1]");
  }
  // One reload at a time; live traffic keeps flowing (builds and shadow
  // validation never hold mu_).
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  std::vector<std::string> base_fingerprints;
  std::vector<std::string> base_mappings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || !workers_live_) {
      return Status::Unavailable("Reload: service is stopping");
    }
    if (probation_active_) {
      return Status::FailedPrecondition(
          "Reload: the previous swap is still in probation; its window "
          "must resolve first so the rollback target stays well-defined");
    }
    base_fingerprints = current_.golden_fingerprints;
    base_mappings = current_.golden_mappings;
  }
  TraceSpan reload_span("service.reload");
  ServiceMetrics& metrics = GetServiceMetrics();
  ReloadReport report;
  report.golden_total = options_.golden_requests.size();

  auto reject = [&](std::string why) -> StatusOr<ReloadReport> {
    report.swapped = false;
    report.rejection = std::move(why);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.reload_rejections;
    }
    metrics.reload_rejections->Increment();
    if (options_.registry != nullptr && reload.registry_version != 0) {
      (void)options_.registry->Quarantine(reload.registry_version);
    }
    return report;
  };

  auto build_one = [&]() -> StatusOr<std::shared_ptr<LsdSystem>> {
    StatusOr<std::unique_ptr<LsdSystem>> built = reload.factory();
    if (!built.ok()) return built.status();
    if (*built == nullptr || !(*built)->trained()) {
      return Status::FailedPrecondition(
          "the reload factory must return a trained system");
    }
    std::shared_ptr<LsdSystem> system(std::move(*built));
    // The shared cache needs no flush across versions: entries are keyed
    // by content-addressed model fingerprints, so two differently trained
    // generations can never read each other's entries.
    if (pred_cache_ != nullptr) system->SetPredictionCache(pred_cache_);
    return system;
  };

  // Build ONE candidate first and shadow-validate it before paying for
  // the rest of the fleet — a rejected reload costs one build, not W.
  StatusOr<std::shared_ptr<LsdSystem>> probe = build_one();
  if (!probe.ok()) {
    return reject("candidate failed to build: " + probe.status().ToString());
  }
  std::vector<std::string> new_fingerprints;
  std::vector<std::string> new_mappings;
  for (size_t i = 0; i < options_.golden_requests.size(); ++i) {
    const ServiceRequest& golden = options_.golden_requests[i];
    TraceSpan eval_span("service.shadow_eval", golden.id);
    if (FaultInjectionActive()) {
      Status fault = CheckFault(FaultSite::kShadowEval, golden.id);
      if (!fault.ok()) {
        return reject(StrFormat("shadow evaluation of '%s' failed: %s",
                                golden.id.c_str(),
                                fault.ToString().c_str()));
      }
    }
    StatusOr<MatchResult> result = EvalGolden(**probe, golden);
    if (!result.ok()) {
      return reject(StrFormat("golden request '%s' failed on the candidate: "
                              "%s",
                              golden.id.c_str(),
                              result.status().ToString().c_str()));
    }
    std::string fingerprint = Fingerprint(*result);
    std::string mapping = result->mapping.ToString();
    bool matched = reload.require_identical
                       ? fingerprint == base_fingerprints[i]
                       : mapping == base_mappings[i];
    if (matched) ++report.golden_matched;
    new_fingerprints.push_back(std::move(fingerprint));
    new_mappings.push_back(std::move(mapping));
  }
  bool accepted =
      reload.require_identical
          ? report.golden_matched == report.golden_total
          : report.golden_total == 0 ||
                static_cast<double>(report.golden_matched) >=
                    reload.min_accuracy *
                        static_cast<double>(report.golden_total);
  if (!accepted) {
    return reject(StrFormat(
        "shadow validation matched %zu/%zu golden requests (mode: %s)",
        report.golden_matched, report.golden_total,
        reload.require_identical
            ? "byte-identical fingerprints"
            : StrFormat("mapping accuracy floor %.2f", reload.min_accuracy)
                  .c_str()));
  }

  // Validated: build the rest of the fleet (still off the hot path).
  std::vector<std::shared_ptr<LsdSystem>> candidates;
  candidates.reserve(options_.workers);
  candidates.push_back(std::move(*probe));
  for (size_t slot = 1; slot < options_.workers; ++slot) {
    StatusOr<std::shared_ptr<LsdSystem>> built = build_one();
    if (!built.ok()) {
      return reject(StrFormat("candidate replica %zu failed to build: %s",
                              slot, built.status().ToString().c_str()));
    }
    candidates.push_back(std::move(*built));
  }

  // Publication point. A fault here simulates a crash between validation
  // and swap: the error propagates, serving is untouched, and the
  // candidate stays a registry candidate (it is NOT quarantined — its
  // bytes were never found wanting).
  if (FaultInjectionActive()) {
    LSD_RETURN_IF_ERROR(CheckFault(
        FaultSite::kModelSwap,
        StrFormat("swap/registry-%llu", static_cast<unsigned long long>(
                                            reload.registry_version))));
  }

  std::vector<std::shared_ptr<LsdSystem>> retire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || !workers_live_) {
      return Status::Unavailable("Reload: service is stopping");
    }
    retire = std::move(parked_.systems);
    parked_ = std::move(current_);
    current_ = Generation();
    current_.systems = std::move(candidates);
    current_.factory = reload.factory;
    current_.version = ++last_version_;
    current_.registry_version = reload.registry_version;
    current_.golden_fingerprints = std::move(new_fingerprints);
    current_.golden_mappings = std::move(new_mappings);
    report.model_version = current_.version;
    if (reload.probation_requests > 0) {
      probation_active_ = true;
      probation_version_ = current_.version;
      probation_remaining_ = reload.probation_requests;
      probation_failures_ = 0;
      probation_breaker_base_ =
          static_cast<uint64_t>(breakers_.TotalOpenTransitions());
      probation_overrun_base_ = stats_.deadline_overruns;
      probation_limits_.max_failures = reload.probation_max_failures;
      probation_limits_.max_breaker_opens = reload.probation_max_breaker_opens;
      probation_limits_.max_overruns = reload.probation_max_overruns;
    } else {
      // No probation, no rollback target: the previous generation's
      // replicas retire as each worker adopts the new one at its next
      // request boundary (the fleet's last references drop there).
      for (std::shared_ptr<LsdSystem>& system : parked_.systems) {
        retire.push_back(std::move(system));
      }
      parked_ = Generation();
    }
    ++stats_.reloads;
  }
  metrics.reloads->Increment();
  metrics.model_version->RecordMax(report.model_version);
  if (options_.registry != nullptr && reload.registry_version != 0) {
    // Best effort; serving state lives in the service, the registry is
    // the durable record of it.
    (void)options_.registry->SetServing(reload.registry_version);
    if (reload.probation_requests == 0) {
      (void)options_.registry->MarkLastGood(reload.registry_version);
    }
  }
  report.swapped = true;
  retire.clear();
  return report;
}

void MatchService::WorkerLoop(size_t slot) {
  for (;;) {
    std::unique_ptr<Pending> pending;
    std::shared_ptr<LsdSystem> retired;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      // Epoch adoption at the request boundary: if a reload (or rollback)
      // published a new generation, this worker switches replicas *now*,
      // before touching the request — so every request executes against
      // exactly one model version. The displaced replica is destroyed
      // outside mu_ once the lock drops (it may be the last reference).
      if (slots_[slot].version != current_.version) {
        retired = std::move(slots_[slot].system);
        slots_[slot].system = current_.systems[slot];
        slots_[slot].factory = current_.factory;
        slots_[slot].version = current_.version;
      }
      pending->exec_start = std::chrono::steady_clock::now();
      exec_slot_start_[slot] = pending->exec_start;
      exec_slot_active_[slot] = 1;
    }
    retired.reset();
    ServiceResponse response = Execute(*pending, slot);
    Finalize(*pending, std::move(response));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      exec_slot_active_[slot] = 0;
    }
  }
}

void MatchService::FailRemaining(const std::string& reason) {
  std::deque<std::unique_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    workers_live_ = false;
    orphans.swap(queue_);
  }
  for (std::unique_ptr<Pending>& pending : orphans) {
    Shed(std::move(*pending), Status::Unavailable(reason));
  }
}

void MatchService::Shed(Pending pending, Status status) {
  ServiceResponse response;
  response.id = pending.request.id;
  response.outcome = RequestOutcome::kShed;
  response.status = std::move(status);
  response.latency_micros = ElapsedMicros(pending.submitted);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed;
  }
  ServiceMetrics& metrics = GetServiceMetrics();
  metrics.shed->Increment();
  // Shed latency (submit-to-shed) gets its own histogram so operator
  // latency accounting covers every terminal outcome — request_micros
  // only sees executed requests.
  metrics.shed_micros->Record(response.latency_micros);
  Deliver(pending, std::move(response));
}

void MatchService::Deliver(Pending& pending, ServiceResponse response) {
  if (pending.done) {
    pending.done(std::move(response));
  } else {
    pending.promise.set_value(std::move(response));
  }
}

ServiceResponse MatchService::Execute(Pending& pending, size_t slot) {
  ServiceResponse response;
  response.id = pending.request.id;
  // The slot's version was settled at the dequeue boundary and cannot
  // change until this worker dequeues again — the whole request, retries
  // and rebuilds included, is attributable to exactly this version.
  response.model_version = slots_[slot].version;

  // Consult the breakers over the replica's roster before paying for
  // anything. Skips are threaded into MatchOptions::skip_learners; probes
  // execute normally but owe the breaker a terminal report.
  const std::vector<std::string> roster = slots_[slot].system->LearnerNames();
  std::vector<std::string> skip;
  std::vector<std::string> probes;
  if (options_.breaker.failure_threshold > 0) {
    for (const std::string& name : roster) {
      switch (breakers_.Get(name)->NextDecision()) {
        case CircuitBreaker::Decision::kSkip:
          skip.push_back(name);
          break;
        case CircuitBreaker::Decision::kProbe:
          probes.push_back(name);
          break;
        case CircuitBreaker::Decision::kExecute:
          break;
      }
    }
  }
  response.breaker_skipped = !skip.empty();
  if (!skip.empty()) GetServiceMetrics().breaker_skips->Increment();

  StatusOr<MatchResult> result = Status::Internal("attempt never ran");
  RunReport parse_notes;
  bool replica_touched = false;
  size_t attempt_index = 0;
  std::function<void(int64_t)> sleep_fn = options_.sleep_millis;
  if (!sleep_fn) {
    sleep_fn = [](int64_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
  size_t attempts = 0;
  size_t retries = 0;
  Status final_status = RetryWithBackoff(
      backoff_, pending.request.id, pending.deadline, IsRetryableForService,
      sleep_fn,
      [&]() -> Status {
        // Keyed per attempt so a rule matching "/attempt-0" injects a
        // transient fault: the first execution fails, the retry succeeds.
        std::string attempt_key =
            pending.request.id + "/attempt-" + std::to_string(attempt_index);
        ++attempt_index;
        parse_notes = RunReport();
        replica_touched = false;
        result = Attempt(pending, attempt_key, slot, skip, &parse_notes,
                         &replica_touched);
        if (!result.ok() && replica_touched &&
            result.status().code() != StatusCode::kDeadlineExceeded) {
          // The error came out of the replica itself. Error paths inside
          // PredictSource can leave the shared node labeler mid-swap, so a
          // replica that errored is treated as poisoned: rebuild it from
          // its *own generation's* factory before anyone (including our
          // own retry) touches it again — the factory travels with the
          // model version so a rebuild can never mix versions mid-request.
          // On factory failure the old replica is kept — degraded
          // isolation beats no worker.
          StatusOr<std::unique_ptr<LsdSystem>> fresh = slots_[slot].factory();
          if (fresh.ok() && *fresh != nullptr && (*fresh)->trained()) {
            // Re-attach the shared prediction cache: the rebuilt replica
            // is identically trained, so its content fingerprints match
            // and the warm entries stay valid — a rebuild must not cost
            // the fleet its cache.
            if (pred_cache_ != nullptr) {
              (*fresh)->SetPredictionCache(pred_cache_);
            }
            slots_[slot].system =
                std::shared_ptr<LsdSystem>(std::move(*fresh));
            GetServiceMetrics().replicas_rebuilt->Increment();
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.replicas_rebuilt;
          }
        }
        return result.ok() ? Status::OK() : result.status();
      },
      &attempts, &retries);

  // Settle the breakers. Only learners that were supposed to run owe a
  // report; skip-listed ones stay untouched (that is the point of the
  // skip — no information, no state change).
  if (options_.breaker.failure_threshold > 0) {
    const RunReport* report = result.ok() ? &result.value().report : nullptr;
    for (const std::string& name : roster) {
      if (std::find(skip.begin(), skip.end(), name) != skip.end()) continue;
      bool probed =
          std::find(probes.begin(), probes.end(), name) != probes.end();
      if (report == nullptr) {
        // The request died without a learner-level report (parse failure,
        // exec fault, total ensemble loss): no evidence either way.
        if (probed) breakers_.Get(name)->AbandonProbe();
        continue;
      }
      bool predict_failed = false;
      bool train_quarantined = false;
      for (const LearnerIncident& incident : report->incidents) {
        if (incident.learner != name) continue;
        if (incident.stage == "predict") predict_failed = true;
        if (incident.stage == "train") train_quarantined = true;
      }
      if (predict_failed) {
        breakers_.Get(name)->RecordFailure();
      } else if (train_quarantined) {
        // Never ran; a probe learns nothing from it.
        if (probed) breakers_.Get(name)->AbandonProbe();
      } else {
        breakers_.Get(name)->RecordSuccess();
      }
    }
  }

  response.attempts = attempts;
  response.retries = retries;
  if (final_status.ok()) {
    MatchResult& match = result.value();
    response.report = match.report;
    for (const std::string& note : parse_notes.notes) {
      response.report.notes.push_back(note);
    }
    response.mapping = match.mapping.ToString();
    response.fingerprint = Fingerprint(match);
    response.status = Status::OK();
    response.outcome = response.report.degraded() ? RequestOutcome::kDegraded
                                                  : RequestOutcome::kOk;
  } else {
    response.status = std::move(final_status);
    response.report = std::move(parse_notes);
    response.outcome = RequestOutcome::kFailed;
  }
  return response;
}

StatusOr<MatchResult> MatchService::Attempt(
    const Pending& pending, const std::string& attempt_key, size_t slot,
    const std::vector<std::string>& skip, RunReport* parse_notes,
    bool* replica_touched) {
  if (options_.execute_interceptor) {
    options_.execute_interceptor(pending.request);
  }
  if (FaultInjectionActive()) {
    LSD_RETURN_IF_ERROR(CheckFault(FaultSite::kServiceExec, attempt_key));
  }

  DataSource source;
  LSD_RETURN_IF_ERROR(ParseRequestSource(
      pending.request, options_.lenient_parse, &source, parse_notes));

  MatchOptions match_options = options_.match_options;
  match_options.deadline = pending.deadline;
  match_options.skip_learners = skip;
  *replica_touched = true;
  return slots_[slot].system->MatchSource(source, match_options);
}

void MatchService::Finalize(Pending& pending, ServiceResponse response) {
  response.latency_micros = ElapsedMicros(pending.submitted);
  if (pending.deadline_ms >= 0) {
    uint64_t allowed_micros =
        static_cast<uint64_t>(pending.deadline_ms + options_.grace_ms) * 1000;
    response.deadline_overrun = response.latency_micros > allowed_micros;
  }
  ServiceMetrics& metrics = GetServiceMetrics();
  metrics.request_micros->Record(response.latency_micros);
  if (response.retries > 0) metrics.retried->Increment(response.retries);
  if (response.deadline_overrun) metrics.deadline_overruns->Increment();
  switch (response.outcome) {
    case RequestOutcome::kOk:
      metrics.ok->Increment();
      break;
    case RequestOutcome::kDegraded:
      metrics.degraded->Increment();
      break;
    default:
      metrics.failed->Increment();
      break;
  }
  bool rolled_back = false;
  bool promoted = false;
  uint64_t rollback_epoch = 0;
  uint64_t quarantine_registry = 0;
  uint64_t restore_registry = 0;
  uint64_t promote_registry = 0;
  std::vector<std::shared_ptr<LsdSystem>> retire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (response.outcome) {
      case RequestOutcome::kOk:
        ++stats_.ok;
        break;
      case RequestOutcome::kDegraded:
        ++stats_.degraded;
        break;
      default:
        ++stats_.failed;
        break;
    }
    stats_.retried += response.retries;
    if (response.deadline_overrun) ++stats_.deadline_overruns;
    // Smooth the execution-time estimate admission control consults.
    // Measured from dequeue, not Submit: folding queue wait into the
    // estimate would let congestion inflate it, which inflates the wait
    // estimate, which sheds harder — a positive feedback loop.
    double exec_micros = static_cast<double>(ElapsedMicros(pending.exec_start));
    avg_exec_micros_ = !ewma_seeded_
                           ? exec_micros
                           : 0.8 * avg_exec_micros_ + 0.2 * exec_micros;
    ewma_seeded_ = true;
    // Mirror breaker open transitions into the counter as a delta.
    uint64_t total_opens =
        static_cast<uint64_t>(breakers_.TotalOpenTransitions());
    if (total_opens > stats_.breaker_open_transitions) {
      metrics.breaker_open->Increment(total_opens -
                                      stats_.breaker_open_transitions);
      stats_.breaker_open_transitions = total_opens;
    }
    // Probation accounting. Only responses produced by the probation
    // version count — old-generation stragglers finishing after the swap
    // must never charge (or clear) the new model.
    if (probation_active_ && response.model_version == probation_version_) {
      if (response.outcome == RequestOutcome::kFailed) ++probation_failures_;
      bool breached =
          probation_failures_ > probation_limits_.max_failures ||
          total_opens - probation_breaker_base_ >
              probation_limits_.max_breaker_opens ||
          stats_.deadline_overruns - probation_overrun_base_ >
              probation_limits_.max_overruns;
      if (breached) {
        // Auto-rollback: restore the parked generation under a fresh
        // epoch. Workers adopt it at their next request boundary; the
        // regressed generation's replicas retire as they do.
        probation_active_ = false;
        rolled_back = true;
        quarantine_registry = current_.registry_version;
        restore_registry = parked_.registry_version;
        retire = std::move(current_.systems);
        current_ = std::move(parked_);
        parked_ = Generation();
        current_.version = ++last_version_;
        rollback_epoch = current_.version;
        ++stats_.rollbacks;
      } else if (--probation_remaining_ == 0) {
        // Probation survived: the previous generation is no longer a
        // rollback target, so its replicas can finally retire.
        probation_active_ = false;
        promoted = true;
        promote_registry = current_.registry_version;
        retire = std::move(parked_.systems);
        parked_ = Generation();
      }
    }
  }
  if (rolled_back) {
    TraceSpan rollback_span("service.rollback",
                            StrFormat("epoch %llu",
                                      static_cast<unsigned long long>(
                                          rollback_epoch)));
    metrics.rollbacks->Increment();
    metrics.model_version->RecordMax(rollback_epoch);
    if (options_.registry != nullptr) {
      // Best effort: the swap itself is already done in memory; registry
      // bookkeeping failing (e.g. injected disk faults) must not block
      // the response.
      if (quarantine_registry != 0) {
        (void)options_.registry->Quarantine(quarantine_registry);
      }
      if (restore_registry != 0) {
        (void)options_.registry->SetServing(restore_registry);
      }
    }
  }
  if (promoted && options_.registry != nullptr && promote_registry != 0) {
    (void)options_.registry->MarkLastGood(promote_registry);
  }
  retire.clear();
  Deliver(pending, std::move(response));
}

MatchService::Stats MatchService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats snapshot = stats_;
  snapshot.model_version = current_.version;
  snapshot.breaker_open_transitions =
      static_cast<uint64_t>(breakers_.TotalOpenTransitions());
  if (pred_cache_ != nullptr) {
    PredCache::Stats cache = pred_cache_->stats();
    snapshot.pred_cache_hits = cache.hits;
    snapshot.pred_cache_misses = cache.misses;
  }
  return snapshot;
}

BreakerState MatchService::breaker_state(const std::string& learner) const {
  return breakers_.StateOf(learner);
}

}  // namespace lsd
