#ifndef LSD_SERVICE_MATCH_SERVICE_H_
#define LSD_SERVICE_MATCH_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/deadline.h"
#include "common/pred_cache.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/lsd_system.h"
#include "service/circuit_breaker.h"

namespace lsd {

class ModelRegistry;

/// Terminal outcome of one service request. Every admitted request reaches
/// exactly one of kOk / kDegraded / kFailed; a shed request is kShed and
/// never executed.
enum class RequestOutcome {
  /// Full-strength mapping: clean run, no degradation.
  kOk,
  /// A mapping was produced but something degraded on the way: quarantined
  /// or breaker-skipped learners, an expired deadline's anytime fallback,
  /// or lenient parse recovery.
  kDegraded,
  /// No mapping: the terminal attempt's error is in `status`.
  kFailed,
  /// Rejected by admission control (or the service stopped) with
  /// kUnavailable before any work was done.
  kShed,
};
const char* RequestOutcomeName(RequestOutcome outcome);

/// One matching request: the target source as raw text, plus an optional
/// per-request deadline. The mediated schema, training, and constraints
/// live in the service's replicas.
struct ServiceRequest {
  /// Caller-chosen id; appears in fault-injection keys, logs, and metrics.
  std::string id;
  /// The target source's schema (<!ELEMENT ...> declarations).
  std::string dtd_text;
  /// The target listings: a single root element wrapping the listings.
  std::string xml_text;
  /// Budget in milliseconds, counted from Submit() — queue wait spends it.
  /// Negative means "use the service default".
  int64_t deadline_ms = -1;
};

struct ServiceResponse {
  std::string id;
  RequestOutcome outcome = RequestOutcome::kFailed;
  /// OK for kOk/kDegraded; the shed or terminal-failure status otherwise.
  Status status;
  /// The proposed mapping (ParseMapping format); empty unless ok/degraded.
  std::string mapping;
  /// Mapping plus full-precision tag scores — what the determinism soak
  /// compares across thread counts and against solo runs.
  std::string fingerprint;
  /// Degradation record for the terminal attempt.
  RunReport report;
  /// Executions paid for (1 + retries); 0 for shed requests.
  size_t attempts = 0;
  /// Backoff retries among those attempts.
  size_t retries = 0;
  /// Submit-to-terminal latency.
  uint64_t latency_micros = 0;
  /// True when at least one learner was short-circuited by an open breaker.
  bool breaker_skipped = false;
  /// True when the request finished later than deadline + grace — the
  /// invariant the chaos soak asserts never happens.
  bool deadline_overrun = false;
  /// The service model version (epoch) whose replica produced the terminal
  /// attempt; 0 for shed requests (never executed). Every executed request
  /// is attributable to exactly one version — a request never observes two
  /// models, even across retries and replica rebuilds.
  uint64_t model_version = 0;
};

struct MatchServiceOptions {
  /// Concurrent request executions; one LsdSystem replica is built per
  /// worker (replicas are the isolation boundary — requests never share
  /// mutable matcher state).
  size_t workers = 2;
  /// Admission bound on queued + executing requests; one more is shed.
  size_t max_queue_depth = 32;
  /// Deadline for requests that do not carry one (-1 = unbounded).
  int64_t default_deadline_ms = -1;
  /// Slack past the deadline a request may use for its anytime fallback
  /// before it counts as a deadline overrun. Admission also uses it: a
  /// request is shed when the estimated queue wait alone exceeds
  /// remaining-deadline + grace (the anytime path could not even start).
  int64_t grace_ms = 1000;
  /// Parse request text with the recovering parsers (diagnostics become
  /// report notes) instead of failing on the first malformation.
  bool lenient_parse = true;
  /// Capacity of the prediction cache shared by every replica (0 = off).
  /// Keys are content hashes of the trained model and the instance, so any
  /// identically-trained replica — including one rebuilt after a poisoning
  /// failure — reads and writes the same entries, and cached responses are
  /// byte-identical to uncached ones. The service cache overrides whatever
  /// `LsdConfig::pred_cache_entries` the factory's replicas were built
  /// with. The default is sized for a few typical 50-60-listing sources
  /// in flight at once (a source yields roughly tags × listings ×
  /// cacheable-learners ≈ 6k entries); undersizing degrades gracefully
  /// into LRU churn, never wrong answers.
  size_t pred_cache_entries = 65536;
  /// Base matching options applied to every request. `skip_learners` is
  /// owned by the breaker layer and overwritten per request.
  MatchOptions match_options;
  /// Retry policy for retryable failures (see IsRetryableForService).
  BackoffPolicy backoff;
  /// Per-learner breaker tuning.
  CircuitBreakerOptions breaker;
  /// Seed for backoff jitter.
  uint64_t seed = 42;
  /// Chaos/test seam: invoked after dequeue before every execution
  /// attempt; may block (the soak uses it to gate workers and build
  /// deterministic overload). Null = no-op.
  std::function<void(const ServiceRequest&)> execute_interceptor;
  /// Injectable sleep for retry backoff; null = real sleep. Tests inject
  /// a fake so no test ever sleeps for real.
  std::function<void(int64_t)> sleep_millis;
  /// Golden request set for hot reload. At Create the serving replicas
  /// establish a baseline (mapping + fingerprint per request); every
  /// Reload() shadow-validates its candidate against the current baseline
  /// before any traffic can reach it. Empty = reloads skip validation.
  std::vector<ServiceRequest> golden_requests;
  /// Optional registry recording lifecycle transitions (serving /
  /// last-good / quarantined) for reloads that carry a registry version.
  /// Caller-owned; must outlive the service. Null = untracked.
  ModelRegistry* registry = nullptr;
};

/// Failure taxonomy for the retry policy (DESIGN.md "Service layer &
/// overload behavior"): transient faults (kInternal, kUnavailable) and
/// recoverable parse errors (kParseError) are retryable; contract and
/// resource errors (kInvalidArgument, kFailedPrecondition, kNotFound,
/// kOutOfRange, kDataLoss) and exhausted budgets (kDeadlineExceeded) are
/// hard — retrying them cannot help and is never attempted.
bool IsRetryableForService(const Status& status);

/// A bounded, deadline-aware matching service over a trained LsdSystem:
/// admission control and load shedding at the front, a request queue in
/// the middle, and per-worker replica execution (with retries and
/// per-learner circuit breakers) at the back, all on the existing
/// ThreadPool. Construction trains/loads one replica per worker via the
/// caller's factory; the factory must stay valid for the service lifetime
/// (it is also used to rebuild a replica after a poisoning hard failure).
///
/// Determinism: request *content* outcomes are pure functions of the
/// request bytes, the replica (identically seeded replicas are
/// bit-identical), and the installed fault schedule — never of which
/// worker ran the request or how many there are. Scheduling-dependent
/// effects (queue waits, EWMA-based shedding, breaker timing under
/// concurrency) are confined to *when* work runs, not what it computes;
/// the chaos soak (tests/service_soak.cpp) pins the remaining freedom
/// with gates and serial phases and asserts bit-identical outputs at
/// 1/2/4/8 workers.
class MatchService {
 public:
  using ReplicaFactory =
      std::function<StatusOr<std::unique_ptr<LsdSystem>>()>;

  /// Builds `options.workers` replicas via `factory` and starts the
  /// worker fleet. Fails if any replica fails to build.
  static StatusOr<std::unique_ptr<MatchService>> Create(
      ReplicaFactory factory, MatchServiceOptions options);

  /// Stop()s and joins.
  ~MatchService();

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  /// Admission-controlled asynchronous submit. Shed requests resolve their
  /// future immediately (fail fast) with outcome kShed / kUnavailable;
  /// admitted requests resolve when execution reaches a terminal outcome.
  std::future<ServiceResponse> Submit(ServiceRequest request);

  /// Callback flavor of Submit for callers that must never block on a
  /// future (the epoll transport in net/server.cc). `done` is invoked with
  /// the terminal response exactly once: inline on the submitting thread
  /// when the request is shed (fail fast — the caller can turn an
  /// admission-control shed into an immediate kUnavailable wire response),
  /// or on a worker thread when execution finishes. The callback must not
  /// re-enter the service.
  void SubmitAsync(ServiceRequest request,
                   std::function<void(ServiceResponse)> done);

  /// Submit + wait.
  ServiceResponse Process(ServiceRequest request);

  /// Stops accepting, lets the workers drain every admitted request, and
  /// joins. Idempotent; the destructor calls it. Release any interceptor
  /// gates first or the drain will block.
  void Stop();

  /// How a Reload() builds, validates, and guards a new model version.
  struct ReloadOptions {
    /// Builds the candidate replicas (one per worker), off the hot path.
    ReplicaFactory factory;
    /// Registry id of the candidate (0 = untracked). When the service has
    /// a registry, a rejected or rolled-back candidate is quarantined and
    /// an adopted one becomes serving (and last-good once probation ends).
    uint64_t registry_version = 0;
    /// Shadow-validation mode: true byte-compares golden fingerprints
    /// (mapping + full-precision scores) against the serving baseline —
    /// the right gate for a rebuilt-but-equivalent model; false compares
    /// mappings only and accepts when at least `min_accuracy` of the
    /// golden set agrees — the gate for an intentionally retrained model.
    bool require_identical = true;
    /// Fraction of golden mappings that must match the baseline when
    /// `require_identical` is false. In [0, 1].
    double min_accuracy = 1.0;
    /// Probation window: the number of post-swap responses (from the new
    /// version) observed before the version is marked last-good. 0 = no
    /// probation (the version is trusted immediately; rollback disabled).
    size_t probation_requests = 0;
    /// Regression thresholds during probation. Exceeding any of them
    /// (strictly) triggers an automatic rollback to the previous
    /// generation and quarantines the candidate.
    size_t probation_max_failures = 0;
    size_t probation_max_breaker_opens = 0;
    size_t probation_max_overruns = 0;
  };

  /// What a Reload() did.
  struct ReloadReport {
    /// True when the candidate was adopted; false = shadow validation
    /// rejected it (`rejection` says why) and serving was left untouched.
    bool swapped = false;
    /// The new service model version (epoch) when swapped.
    uint64_t model_version = 0;
    size_t golden_total = 0;
    size_t golden_matched = 0;
    std::string rejection;
  };

  /// Hot model reload: builds candidate replicas off the hot path, shadow-
  /// validates them by replaying the golden request set, then performs an
  /// epoch-based swap — each worker adopts the new replica at a request
  /// boundary, and old replicas retire only when idle, so no request ever
  /// observes two model versions. Live traffic is never paused and never
  /// shed on account of a reload.
  ///
  /// A rejected candidate returns OK with `swapped == false` (and is
  /// quarantined in the registry); an error Status means the reload could
  /// not run at all (stopping, probation pending, invalid options, or an
  /// injected kModelSwap publication fault) and serving is untouched
  /// either way. Concurrent Reload() calls are serialized; a reload is
  /// refused (kFailedPrecondition) while a previous swap is still in
  /// probation, so the rollback target is always the immediately previous
  /// generation.
  StatusOr<ReloadReport> Reload(ReloadOptions reload);

  /// The currently serving model version (epoch). Starts at 1; every
  /// adopted swap — including a rollback, which re-serves the previous
  /// model under a fresh epoch — increments it.
  uint64_t model_version() const;

  /// Monotonic service counters (also mirrored into the global metrics
  /// registry under service.*).
  struct Stats {
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t ok = 0;
    uint64_t degraded = 0;
    uint64_t failed = 0;
    uint64_t retried = 0;
    uint64_t breaker_open_transitions = 0;
    uint64_t replicas_rebuilt = 0;
    uint64_t deadline_overruns = 0;
    /// Adopted hot swaps (rollbacks not included).
    uint64_t reloads = 0;
    /// Candidates rejected by shadow validation (or a failed build).
    uint64_t reload_rejections = 0;
    /// Probation breaches that auto-rolled back to the previous model.
    uint64_t rollbacks = 0;
    /// Currently serving model version (epoch).
    uint64_t model_version = 0;
    /// Shared prediction-cache counters (0 when the cache is off). Hit and
    /// miss totals depend on request interleaving under concurrency; only
    /// hits + misses == lookups is scheduling-invariant.
    uint64_t pred_cache_hits = 0;
    uint64_t pred_cache_misses = 0;
  };
  Stats stats() const;

  /// The replica-shared prediction cache (null when pred_cache_entries
  /// was 0). Exposed for tests and operator tooling.
  const std::shared_ptr<PredCache>& prediction_cache() const {
    return pred_cache_;
  }

  /// Breaker state for one learner (kClosed before any traffic).
  BreakerState breaker_state(const std::string& learner) const;

 private:
  /// One worker's serving state. Slot s is touched only by worker s
  /// (adoption of a new generation happens under mu_ at the request
  /// boundary in WorkerLoop; Execute reads it lock-free afterwards).
  struct Slot {
    std::shared_ptr<LsdSystem> system;
    ReplicaFactory factory;
    uint64_t version = 0;
  };

  /// One model generation: the replica set workers adopt, the factory
  /// that rebuilds a poisoned member of it, and the golden baseline the
  /// *next* reload validates against. `current_` is what new work adopts;
  /// `parked_` is the previous generation, kept alive while the current
  /// one is in probation so rollback can restore it intact.
  struct Generation {
    std::vector<std::shared_ptr<LsdSystem>> systems;
    ReplicaFactory factory;
    uint64_t version = 0;
    uint64_t registry_version = 0;
    std::vector<std::string> golden_fingerprints;
    std::vector<std::string> golden_mappings;
  };

  struct ProbationLimits {
    size_t max_failures = 0;
    size_t max_breaker_opens = 0;
    size_t max_overruns = 0;
  };

  /// One admitted request waiting for (or in) execution.
  struct Pending {
    ServiceRequest request;
    Deadline deadline;
    int64_t deadline_ms = -1;  // resolved budget; -1 = unbounded
    std::chrono::steady_clock::time_point submitted;
    /// When a worker dequeued this request (set under mu_); the base of
    /// the execution-time EWMA, so queue wait never inflates it.
    std::chrono::steady_clock::time_point exec_start;
    std::promise<ServiceResponse> promise;
    /// Callback-submitted requests (SubmitAsync) deliver here instead of
    /// the promise; null for future-based submits.
    std::function<void(ServiceResponse)> done;
  };

  MatchService(ReplicaFactory factory, MatchServiceOptions options);

  /// Builds the replicas; called once from Create.
  Status BuildReplicas();
  /// Replays the golden request set against the freshly built replicas
  /// (single-threaded, before workers start) to establish the baseline
  /// reloads validate against; called once from Create.
  Status InitGoldenBaseline();
  /// Runs one golden request against `system` with no deadline, no breaker
  /// skips, and no interceptor — the shadow-evaluation primitive.
  StatusOr<MatchResult> EvalGolden(LsdSystem& system,
                                   const ServiceRequest& golden);
  /// Starts the dispatcher thread that runs the worker loops on the pool.
  void StartWorkers();
  /// One worker: pulls from the queue until stopped, executing on its own
  /// replica (slot-indexed, never shared).
  void WorkerLoop(size_t slot);
  /// Queue drain when the worker fleet exits (normal stop or an injected
  /// pool fault): everything still queued resolves kShed/kUnavailable.
  void FailRemaining(const std::string& reason);

  /// Full execution of one admitted request: breaker consult, retry loop,
  /// breaker bookkeeping, replica rebuild on poisoning failures.
  ServiceResponse Execute(Pending& pending, size_t slot);
  /// One attempt: interceptor, exec seam, parse, match. `skip` is the
  /// breaker skip list for this request; `replica_touched` is set once the
  /// attempt reaches the replica (so a failure there triggers a rebuild).
  StatusOr<MatchResult> Attempt(const Pending& pending,
                                const std::string& attempt_key, size_t slot,
                                const std::vector<std::string>& skip,
                                RunReport* parse_notes, bool* replica_touched);

  /// Shared admission path behind Submit/SubmitAsync: sheds or enqueues.
  void SubmitImpl(std::unique_ptr<Pending> pending);

  /// Resolves a terminal response into the pending request's promise or
  /// callback (exactly one of the two).
  static void Deliver(Pending& pending, ServiceResponse response);

  /// Finalizes a response: latency, overrun check, outcome counters.
  void Finalize(Pending& pending, ServiceResponse response);

  /// Immediate kShed response (fail fast).
  void Shed(Pending pending, Status status);

  const ReplicaFactory factory_;
  const MatchServiceOptions options_;
  const Backoff backoff_;

  /// Per-worker serving state; slot s is touched only by worker s (see
  /// Slot). Replicas are the isolation boundary — requests never share
  /// mutable matcher state.
  std::vector<Slot> slots_;

  /// The generation new work adopts (guarded by mu_). Workers compare
  /// their slot's version against current_.version at every dequeue.
  Generation current_;
  /// The previous generation, parked while current_ is in probation so a
  /// breach can roll back to it; empty otherwise. Guarded by mu_.
  Generation parked_;
  /// Highest epoch assigned so far (guarded by mu_); monotonic, never
  /// reused — a rollback re-serves old systems under a *new* epoch.
  uint64_t last_version_ = 0;

  /// Probation state (guarded by mu_): counts only responses produced by
  /// probation_version_, so old-generation stragglers never charge the
  /// new model.
  bool probation_active_ = false;
  uint64_t probation_version_ = 0;
  size_t probation_remaining_ = 0;
  size_t probation_failures_ = 0;
  uint64_t probation_breaker_base_ = 0;
  uint64_t probation_overrun_base_ = 0;
  ProbationLimits probation_limits_;

  /// Serializes Reload() calls (candidate builds and shadow validation run
  /// outside mu_ so live traffic keeps flowing).
  std::mutex reload_mu_;

  /// Prediction cache shared by every replica (null = off). Rebuilt
  /// replicas are re-attached to the same cache; its content-hash keys
  /// make their entries interchangeable with the old replica's.
  std::shared_ptr<PredCache> pred_cache_;

  BreakerBank breakers_;

  std::unique_ptr<ThreadPool> pool_;
  std::thread dispatcher_;

  mutable std::mutex mu_;
  std::deque<std::unique_ptr<Pending>> queue_;  // guarded by mu_
  std::condition_variable queue_cv_;
  bool accepting_ = false;   // guarded by mu_
  bool stopping_ = false;    // guarded by mu_
  bool workers_live_ = false;  // guarded by mu_
  size_t in_flight_ = 0;     // guarded by mu_
  /// EWMA of execution micros (dequeue to terminal — queue wait excluded),
  /// for admission's queue-wait estimate. `ewma_seeded_` distinguishes "no
  /// completed request yet" from "measured ~0 µs": a 0.0 sentinel would
  /// keep admission blind forever on sub-microsecond executions.
  double avg_exec_micros_ = 0.0;  // guarded by mu_
  bool ewma_seeded_ = false;      // guarded by mu_
  /// Per-slot execution start times for the cold-start admission estimate
  /// (the age of the oldest in-flight execution bounds exec time from
  /// below before any request has completed). Guarded by mu_.
  std::vector<std::chrono::steady_clock::time_point> exec_slot_start_;
  std::vector<char> exec_slot_active_;
  Stats stats_;  // guarded by mu_ (breaker_open_transitions derived)
};

}  // namespace lsd

#endif  // LSD_SERVICE_MATCH_SERVICE_H_
