#include "constraints/handler.h"

namespace lsd {

StatusOr<Mapping> ArgmaxMapping(const std::vector<Prediction>& predictions,
                                const LabelSpace& labels,
                                const ConstraintContext& context) {
  const std::vector<std::string>& tags = context.tags();
  if (predictions.size() != tags.size()) {
    return Status::InvalidArgument("ArgmaxMapping: one prediction per tag required");
  }
  Mapping mapping;
  for (size_t t = 0; t < tags.size(); ++t) {
    int best = predictions[t].Best();
    if (best < 0) {
      return Status::InvalidArgument("ArgmaxMapping: empty prediction");
    }
    mapping.Set(tags[t], labels.NameOf(best));
  }
  return mapping;
}

namespace {

/// Borrows a constraint owned elsewhere so a per-call working set can mix
/// domain constraints with per-source feedback without cloning machinery.
class ForwardConstraint : public Constraint {
 public:
  explicit ForwardConstraint(const Constraint* inner) : inner_(inner) {}
  ConstraintType type() const override { return inner_->type(); }
  bool IsHard() const override { return inner_->IsHard(); }
  std::string Describe() const override { return inner_->Describe(); }
  double Cost(const Assignment& a, const LabelSpace& l,
              const ConstraintContext& ctx) const override {
    return inner_->Cost(a, l, ctx);
  }
  std::vector<std::string> TriggerLabels() const override {
    return inner_->TriggerLabels();
  }
  std::vector<std::string> RelevantTags() const override {
    return inner_->RelevantTags();
  }
  double DeltaCost(int tag, int label, const SearchState& state,
                   const LabelSpace& l,
                   const ConstraintContext& ctx) const override {
    return inner_->DeltaCost(tag, label, state, l, ctx);
  }
  bool CountCap(std::string* label, size_t* max_count,
                double* weight) const override {
    return inner_->CountCap(label, max_count, weight);
  }

 private:
  const Constraint* inner_;
};

}  // namespace

StatusOr<HandlerResult> ConstraintHandler::ComputeMapping(
    const std::vector<Prediction>& predictions,
    const std::vector<const Constraint*>& domain,
    const std::vector<FeedbackConstraint>& feedback, const LabelSpace& labels,
    const ConstraintContext& context, const Deadline& deadline) const {
  // Merge feedback into a working constraint set. Feedback constraints are
  // used only for the current source (Section 4.3), hence the copy.
  ConstraintSet working;
  for (const Constraint* c : domain) {
    working.Add(std::make_unique<ForwardConstraint>(c));
  }
  for (const FeedbackConstraint& fb : feedback) {
    working.Add(std::make_unique<FeedbackConstraint>(fb));
  }

  if (working.empty()) {
    LSD_ASSIGN_OR_RETURN(Mapping mapping,
                         ArgmaxMapping(predictions, labels, context));
    HandlerResult result;
    result.mapping = std::move(mapping);
    return result;
  }

  // Fold feedback directly into the predictions as well: a "tag must
  // match L" statement makes L the tag's top candidate (so the searcher's
  // beam always contains it), and a "must not" zeroes L out. The feedback
  // constraints above still provide the hard guarantee.
  std::vector<Prediction> adjusted = predictions;
  for (const FeedbackConstraint& fb : feedback) {
    int tag = context.TagIndex(fb.tag());
    int label = labels.IndexOf(fb.label());
    if (tag < 0 || label < 0) continue;
    Prediction& p = adjusted[static_cast<size_t>(tag)];
    if (fb.must_equal()) {
      p = Prediction::PointMass(labels.size(), label);
    } else {
      p.scores[static_cast<size_t>(label)] = 0.0;
      p.Normalize();
    }
  }

  LSD_ASSIGN_OR_RETURN(
      SearchResult search,
      searcher_.Search(adjusted, working, labels, context, deadline));
  HandlerResult result;
  result.cost = search.cost;
  result.expanded = search.expanded;
  result.truncated = search.truncated;
  result.deadline_hit = search.deadline_hit;
  const std::vector<std::string>& tags = context.tags();
  for (size_t t = 0; t < tags.size(); ++t) {
    int label = search.assignment.labels[t];
    if (label == Assignment::kUnassigned) label = labels.other_index();
    result.mapping.Set(tags[t], labels.NameOf(label));
  }
  return result;
}

}  // namespace lsd
