#ifndef LSD_CONSTRAINTS_CONSTRAINT_H_
#define LSD_CONSTRAINTS_CONSTRAINT_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "ml/prediction.h"
#include "schema/extraction.h"
#include "schema/schema.h"
#include "xml/dtd.h"

namespace lsd {

/// The constraint types of Table 1 (plus user feedback, Section 4.3).
enum class ConstraintType {
  kFrequency,    // hard: bounds on how many source elements match a label
  kNesting,      // hard: required/forbidden nesting between matched tags
  kContiguity,   // hard: matched tags must be siblings with OTHER between
  kExclusivity,  // hard: two labels cannot both be matched
  kColumn,       // hard: key / functional-dependency checks against data
  kBinarySoft,   // soft, violation cost 1
  kNumericSoft,  // soft, graded violation cost
  kFeedback,     // hard: user-supplied equality / inequality on one tag
};

/// The cost of violating a hard constraint.
inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// Everything a constraint may consult about the target source: its schema
/// and (optionally) the extracted data columns. Precomputes the schema
/// tree's parent/depth relations and per-tag column values. Tags are
/// addressed by the dense indices used by `Assignment`.
class ConstraintContext {
 public:
  /// `columns` may be null for schema-only evaluation. Both referents must
  /// outlive the context.
  ConstraintContext(const Dtd* schema, const std::vector<Column>* columns);

  const Dtd& schema() const { return *schema_; }
  bool has_data() const { return columns_ != nullptr; }

  const std::vector<std::string>& tags() const { return tags_; }
  /// Dense index of `tag`, or -1.
  int TagIndex(const std::string& tag) const;

  /// True when `inner` is a proper descendant of `outer` in the schema.
  bool IsNestedIn(int inner_tag, int outer_tag) const;

  /// True when the two tags share a declaring parent element.
  bool AreSiblings(int a, int b) const;

  /// Dense tag indices of the declared children of `tag` that lie strictly
  /// between `a` and `b` in their shared parent's declaration order; empty
  /// when not siblings.
  std::vector<int> TagsBetween(int a, int b) const;

  /// Number of parent-child edges on the path between the two tags in the
  /// schema tree; a large sentinel when disconnected.
  int TreeDistance(int a, int b) const;

  /// The column's data values in listing order: (listing_index, value)
  /// pairs. Empty when data is unavailable.
  const std::vector<std::pair<int, std::string>>& ValuesOf(int tag) const;

  /// True when the tag's extracted values contain no duplicate — the
  /// column may be a key. Vacuously true without data.
  bool ColumnLooksLikeKey(int tag) const;

  /// True when, in the extracted data, the pair (values of a, values of b)
  /// functionally determines the value of c. Vacuously true without data.
  bool FunctionalDependencyHolds(int a, int b, int c) const;

 private:
  bool ComputeFunctionalDependency(int a, int b, int c) const;

  const Dtd* schema_;
  const std::vector<Column>* columns_;
  std::vector<std::string> tags_;
  std::map<std::string, int> tag_index_;
  /// parent_[i] = dense index of the first declaring parent, -1 for root.
  std::vector<int> parent_;
  /// Declaration-order position within the parent's child list.
  std::vector<int> sibling_rank_;
  std::vector<int> depth_;
  std::vector<std::vector<std::pair<int, std::string>>> values_;
  /// Memoization: data predicates are pure functions of tag indices but
  /// expensive to compute, and the A* search asks for them millions of
  /// times. -1 = unknown, else 0/1.
  mutable std::vector<int8_t> key_cache_;
  mutable std::map<std::tuple<int, int, int>, bool> fd_cache_;
};

/// A (possibly partial) candidate mapping during search: `labels[i]` is
/// the label index assigned to tag i, or `kUnassigned`.
struct Assignment {
  static constexpr int kUnassigned = -1;
  std::vector<int> labels;

  explicit Assignment(size_t n_tags = 0)
      : labels(n_tags, kUnassigned) {}

  bool IsComplete() const {
    for (int label : labels) {
      if (label == kUnassigned) return false;
    }
    return true;
  }
  size_t AssignedCount() const {
    size_t n = 0;
    for (int label : labels) {
      if (label != kUnassigned) ++n;
    }
    return n;
  }
};

/// Incremental view of a partial assignment, maintained by the A*
/// searcher and consumed by `Constraint::DeltaCost`. Besides the raw
/// assignment it keeps, per label, the ordered list of tags carrying that
/// label — so a constraint can inspect exactly the tags it cares about
/// instead of scanning all of them.
///
/// The searcher mutates the state strictly stack-wise: `Assign`/`Unassign`
/// pairs nest (last assigned, first unassigned), which keeps the per-label
/// tag lists in assignment order at all times.
class SearchState {
 public:
  SearchState(size_t n_tags, size_t n_labels)
      : assignment_(n_tags), tags_with_(n_labels) {}

  /// Extends the partial assignment. `tag` must be unassigned and `label`
  /// a valid label index.
  void Assign(int tag, int label) {
    assignment_.labels[static_cast<size_t>(tag)] = label;
    tags_with_[static_cast<size_t>(label)].push_back(tag);
    ++assigned_;
  }

  /// Retracts the most recent assignment of `label` (which must be `tag`).
  void Unassign(int tag, int label) {
    assignment_.labels[static_cast<size_t>(tag)] = Assignment::kUnassigned;
    tags_with_[static_cast<size_t>(label)].pop_back();
    --assigned_;
  }

  const Assignment& assignment() const { return assignment_; }
  size_t assigned_count() const { return assigned_; }
  size_t unassigned_count() const {
    return assignment_.labels.size() - assigned_;
  }
  /// Tags currently assigned `label`, in assignment order.
  const std::vector<int>& TagsWith(int label) const {
    return tags_with_[static_cast<size_t>(label)];
  }
  size_t CountOf(int label) const {
    return tags_with_[static_cast<size_t>(label)].size();
  }

 private:
  Assignment assignment_;
  std::vector<std::vector<int>> tags_with_;
  size_t assigned_ = 0;
};

/// Base class for domain constraints (Section 4). `Cost` must be
/// *monotone on partial assignments*: extending an assignment may only
/// keep or increase the cost, never decrease it — this is what lets the
/// A* searcher prune on partial violations and keeps its heuristic
/// admissible. Hard constraints return 0 or kInfiniteCost; soft
/// constraints return finite costs (already scaled by their weight).
class Constraint {
 public:
  virtual ~Constraint() = default;

  virtual ConstraintType type() const = 0;
  virtual bool IsHard() const {
    ConstraintType t = type();
    return t != ConstraintType::kBinarySoft &&
           t != ConstraintType::kNumericSoft;
  }

  /// Human-readable statement, e.g. "at most 1 element matches HOUSE".
  virtual std::string Describe() const = 0;

  /// Violation cost of `assignment` under `context`. `labels` provides
  /// label-name/index translation.
  virtual double Cost(const Assignment& assignment, const LabelSpace& labels,
                      const ConstraintContext& context) const = 0;

  /// Renders the constraint in the line format understood by
  /// `ParseConstraints` (constraint_parser.h), or an empty string for
  /// kinds that have no file representation (feedback constraints are
  /// per-source, not part of a domain's constraint file).
  virtual std::string ToConfigLine() const { return ""; }

  /// Labels whose assignment to a tag can change this constraint's cost.
  /// The A* searcher uses this to re-evaluate only affected constraints
  /// when it extends a partial assignment. An empty list means "any
  /// assignment may affect me" (re-evaluate on every extension) — the
  /// conservative default. Constraints whose trigger labels are all absent
  /// from the label space are inert and never evaluated.
  virtual std::vector<std::string> TriggerLabels() const { return {}; }

  /// Source tags whose assignment can change this constraint's cost, or
  /// empty for "any tag" — the conservative default. Only constraints
  /// pinned to named tags (user feedback) narrow this; the searcher
  /// intersects it with `TriggerLabels` when building its per-extension
  /// evaluation index.
  virtual std::vector<std::string> RelevantTags() const { return {}; }

  /// Incremental ("delta") evaluation: the cost increase when the partial
  /// assignment in `state` — which does NOT yet include the extension —
  /// is extended by assigning `label` to `tag`. The contract mirrors the
  /// monotonicity requirement on `Cost`:
  ///
  ///   DeltaCost(tag, label, state) == Cost(extended) - Cost(state)
  ///
  /// with `kInfiniteCost` meaning the extension violates a hard
  /// constraint. Because costs are monotone and decomposable over the
  /// newly created (tag, label) interactions, every built-in constraint
  /// computes this from `state`'s per-label tag lists in time proportional
  /// to the tags it actually touches. The base implementation falls back
  /// to two full `Cost` evaluations — correct for any monotone constraint,
  /// O(tags) per call — so external subclasses keep working unmodified.
  virtual double DeltaCost(int tag, int label, const SearchState& state,
                           const LabelSpace& labels,
                           const ConstraintContext& context) const;

  /// Heuristic hook: when this constraint caps how many tags may carry a
  /// single label, fills the label name, the cap, and the per-extra-tag
  /// cost (`kInfiniteCost` for hard caps) and returns true. The searcher
  /// folds declared caps into its admissible heuristic — tags competing
  /// for an over-subscribed label must pay at least their regret to
  /// switch. Constraints without single-label cap semantics keep the
  /// default.
  virtual bool CountCap(std::string* label, size_t* max_count,
                        double* weight) const {
    (void)label;
    (void)max_count;
    (void)weight;
    return false;
  }
};

/// An ordered collection of constraints with convenience cost evaluation.
class ConstraintSet {
 public:
  ConstraintSet() = default;

  void Add(std::unique_ptr<Constraint> constraint) {
    constraints_.push_back(std::move(constraint));
  }

  size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }
  const Constraint& at(size_t i) const { return *constraints_[i]; }

  /// Sum of all constraint costs; kInfiniteCost as soon as a hard
  /// constraint is violated.
  double TotalCost(const Assignment& assignment, const LabelSpace& labels,
                   const ConstraintContext& context) const;

  /// Borrowed pointers to every constraint, in insertion order.
  std::vector<const Constraint*> All() const;

  /// Filters by hardness; useful for the lesion configs.
  std::vector<const Constraint*> HardConstraints() const;
  std::vector<const Constraint*> SoftConstraints() const;

 private:
  std::vector<std::unique_ptr<Constraint>> constraints_;
};

// ---------------------------------------------------------------------------
// Concrete constraint types (Table 1).
// ---------------------------------------------------------------------------

/// Frequency: between `min_count` and `max_count` source elements match
/// `label` ("at most one source element matches HOUSE" = [0,1]; "exactly
/// one matches PRICE" = [1,1]).
class FrequencyConstraint : public Constraint {
 public:
  FrequencyConstraint(std::string label, size_t min_count, size_t max_count)
      : label_(std::move(label)), min_count_(min_count), max_count_(max_count) {}

  ConstraintType type() const override { return ConstraintType::kFrequency; }
  std::string Describe() const override;
  double Cost(const Assignment& assignment, const LabelSpace& labels,
              const ConstraintContext& context) const override;
  std::vector<std::string> TriggerLabels() const override {
    // A minimum count depends on how many tags remain unassigned, so it
    // must be re-checked on every extension.
    if (min_count_ > 0) return {};
    return {label_};
  }
  double DeltaCost(int tag, int label, const SearchState& state,
                   const LabelSpace& labels,
                   const ConstraintContext& context) const override;
  bool CountCap(std::string* label, size_t* max_count,
                double* weight) const override {
    *label = label_;
    *max_count = max_count_;
    *weight = kInfiniteCost;
    return true;
  }
  std::string ToConfigLine() const override;

 private:
  std::string label_;
  size_t min_count_;
  size_t max_count_;
};

/// Nesting: when a matches `outer_label` and b matches `inner_label`,
/// require (or forbid) that b is nested within a in the source schema.
class NestingConstraint : public Constraint {
 public:
  NestingConstraint(std::string outer_label, std::string inner_label,
                    bool required)
      : outer_label_(std::move(outer_label)),
        inner_label_(std::move(inner_label)),
        required_(required) {}

  ConstraintType type() const override { return ConstraintType::kNesting; }
  std::string Describe() const override;
  double Cost(const Assignment& assignment, const LabelSpace& labels,
              const ConstraintContext& context) const override;
  std::vector<std::string> TriggerLabels() const override {
    return {outer_label_, inner_label_};
  }
  double DeltaCost(int tag, int label, const SearchState& state,
                   const LabelSpace& labels,
                   const ConstraintContext& context) const override;
  std::string ToConfigLine() const override;

 private:
  std::string outer_label_;
  std::string inner_label_;
  bool required_;
};

/// Contiguity: tags matching the two labels must be siblings, and any
/// declared siblings between them may only match OTHER.
class ContiguityConstraint : public Constraint {
 public:
  ContiguityConstraint(std::string label_a, std::string label_b)
      : label_a_(std::move(label_a)), label_b_(std::move(label_b)) {}

  ConstraintType type() const override { return ConstraintType::kContiguity; }
  std::string Describe() const override;
  double Cost(const Assignment& assignment, const LabelSpace& labels,
              const ConstraintContext& context) const override;
  double DeltaCost(int tag, int label, const SearchState& state,
                   const LabelSpace& labels,
                   const ConstraintContext& context) const override;
  std::string ToConfigLine() const override;

 private:
  std::string label_a_;
  std::string label_b_;
};

/// Exclusivity: the two labels cannot both be matched by source elements.
class ExclusivityConstraint : public Constraint {
 public:
  ExclusivityConstraint(std::string label_a, std::string label_b)
      : label_a_(std::move(label_a)), label_b_(std::move(label_b)) {}

  ConstraintType type() const override { return ConstraintType::kExclusivity; }
  std::string Describe() const override;
  double Cost(const Assignment& assignment, const LabelSpace& labels,
              const ConstraintContext& context) const override;
  std::vector<std::string> TriggerLabels() const override {
    return {label_a_, label_b_};
  }
  double DeltaCost(int tag, int label, const SearchState& state,
                   const LabelSpace& labels,
                   const ConstraintContext& context) const override;
  std::string ToConfigLine() const override;

 private:
  std::string label_a_;
  std::string label_b_;
};

/// Column/key: a tag matching `label` must be a key — its extracted data
/// values contain no duplicates. Verified against data when available.
class KeyConstraint : public Constraint {
 public:
  explicit KeyConstraint(std::string label) : label_(std::move(label)) {}

  ConstraintType type() const override { return ConstraintType::kColumn; }
  std::string Describe() const override;
  double Cost(const Assignment& assignment, const LabelSpace& labels,
              const ConstraintContext& context) const override;
  std::vector<std::string> TriggerLabels() const override { return {label_}; }
  double DeltaCost(int tag, int label, const SearchState& state,
                   const LabelSpace& labels,
                   const ConstraintContext& context) const override;
  std::string ToConfigLine() const override;

 private:
  std::string label_;
};

/// Column/FD: tags matching `label_a` and `label_b` must functionally
/// determine the tag matching `label_c` in the extracted data.
class FunctionalDependencyConstraint : public Constraint {
 public:
  FunctionalDependencyConstraint(std::string label_a, std::string label_b,
                                 std::string label_c)
      : label_a_(std::move(label_a)),
        label_b_(std::move(label_b)),
        label_c_(std::move(label_c)) {}

  ConstraintType type() const override { return ConstraintType::kColumn; }
  std::string Describe() const override;
  double Cost(const Assignment& assignment, const LabelSpace& labels,
              const ConstraintContext& context) const override;
  std::vector<std::string> TriggerLabels() const override {
    return {label_a_, label_b_, label_c_};
  }
  double DeltaCost(int tag, int label, const SearchState& state,
                   const LabelSpace& labels,
                   const ConstraintContext& context) const override;
  std::string ToConfigLine() const override;

 private:
  std::string label_a_;
  std::string label_b_;
  std::string label_c_;
};

/// Binary soft: at most `max_count` elements match `label`; each extra
/// match costs `weight`.
class CountLimitSoftConstraint : public Constraint {
 public:
  CountLimitSoftConstraint(std::string label, size_t max_count,
                           double weight = 1.0)
      : label_(std::move(label)), max_count_(max_count), weight_(weight) {}

  ConstraintType type() const override { return ConstraintType::kBinarySoft; }
  std::string Describe() const override;
  double Cost(const Assignment& assignment, const LabelSpace& labels,
              const ConstraintContext& context) const override;
  std::vector<std::string> TriggerLabels() const override { return {label_}; }
  double DeltaCost(int tag, int label, const SearchState& state,
                   const LabelSpace& labels,
                   const ConstraintContext& context) const override;
  bool CountCap(std::string* label, size_t* max_count,
                double* weight) const override {
    *label = label_;
    *max_count = max_count_;
    *weight = weight_;
    return true;
  }
  std::string ToConfigLine() const override;

 private:
  std::string label_;
  size_t max_count_;
  double weight_;
};

/// Numeric soft: prefer the tags matching the two labels to be close in
/// the schema tree; cost = weight * (tree distance - 2) clamped at 0
/// (distance 2 = siblings, the ideal).
class ProximitySoftConstraint : public Constraint {
 public:
  ProximitySoftConstraint(std::string label_a, std::string label_b,
                          double weight = 0.1)
      : label_a_(std::move(label_a)),
        label_b_(std::move(label_b)),
        weight_(weight) {}

  ConstraintType type() const override { return ConstraintType::kNumericSoft; }
  std::string Describe() const override;
  double Cost(const Assignment& assignment, const LabelSpace& labels,
              const ConstraintContext& context) const override;
  std::vector<std::string> TriggerLabels() const override {
    return {label_a_, label_b_};
  }
  double DeltaCost(int tag, int label, const SearchState& state,
                   const LabelSpace& labels,
                   const ConstraintContext& context) const override;
  std::string ToConfigLine() const override;

 private:
  std::string label_a_;
  std::string label_b_;
  double weight_;
};

/// User feedback (Section 4.3): tag `tag` must (or must not) match
/// `label`.
class FeedbackConstraint : public Constraint {
 public:
  FeedbackConstraint(std::string tag, std::string label, bool must_equal)
      : tag_(std::move(tag)), label_(std::move(label)), must_equal_(must_equal) {}

  ConstraintType type() const override { return ConstraintType::kFeedback; }
  std::string Describe() const override;
  double Cost(const Assignment& assignment, const LabelSpace& labels,
              const ConstraintContext& context) const override;
  /// Only this constraint's own tag can affect it.
  std::vector<std::string> RelevantTags() const override { return {tag_}; }
  double DeltaCost(int tag, int label, const SearchState& state,
                   const LabelSpace& labels,
                   const ConstraintContext& context) const override;

  const std::string& tag() const { return tag_; }
  const std::string& label() const { return label_; }
  bool must_equal() const { return must_equal_; }

 private:
  std::string tag_;
  std::string label_;
  bool must_equal_;
};

}  // namespace lsd

#endif  // LSD_CONSTRAINTS_CONSTRAINT_H_
