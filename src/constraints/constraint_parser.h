#ifndef LSD_CONSTRAINTS_CONSTRAINT_PARSER_H_
#define LSD_CONSTRAINTS_CONSTRAINT_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "constraints/constraint.h"

namespace lsd {

/// Parses a line-oriented domain-constraint file (used by the lsd_match
/// CLI and handy for checking constraint sets into version control).
/// Blank lines and lines starting with '#' are ignored. One constraint per
/// line:
///
///   frequency LABEL MIN MAX        # between MIN and MAX tags match LABEL
///   nesting OUTER INNER required   # INNER tags nest inside OUTER tags
///   nesting OUTER INNER forbidden
///   contiguity A B                 # siblings, only OTHER between
///   exclusivity A B                # never both matched
///   key LABEL                      # matched column must be a key
///   fd A B C                       # A,B functionally determine C
///   count-limit LABEL MAX WEIGHT   # soft: extra matches cost WEIGHT each
///   proximity A B WEIGHT           # soft: prefer A,B close in the tree
StatusOr<std::vector<std::unique_ptr<Constraint>>> ParseConstraints(
    std::string_view text);

}  // namespace lsd

#endif  // LSD_CONSTRAINTS_CONSTRAINT_PARSER_H_
