#ifndef LSD_CONSTRAINTS_ASTAR_SEARCHER_H_
#define LSD_CONSTRAINTS_ASTAR_SEARCHER_H_

#include <cstddef>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "constraints/constraint.h"
#include "ml/prediction.h"

namespace lsd {

/// Options for `AStarSearcher`.
struct AStarOptions {
  /// Scaling coefficient α of the -log prob(m) term in
  /// cost(m) = Σ γ_i cost(m, T_i) - α log prob(m) (Section 4.2). Soft
  /// constraints carry their γ in their own weights.
  double alpha = 1.0;
  /// Per-tag branching: only the top `beam_width` labels by converter
  /// score are considered for each tag (OTHER is always included).
  /// 0 = consider every label.
  size_t beam_width = 8;
  /// Confidence floor: scores are clamped up to this before taking logs so
  /// a zero score stays assignable (hard constraints may force it).
  double score_floor = 1e-6;
  /// Abort after this many node expansions and fall back to greedy
  /// argmax completion (keeps the matcher interactive; Section 7 notes
  /// the constraint handler can take minutes unoptimized).
  size_t max_expansions = 200000;
};

/// Result of a constraint-handler search.
struct SearchResult {
  Assignment assignment;
  double cost = 0.0;
  size_t expanded = 0;
  /// True when the search exhausted `max_expansions` (or its deadline) and
  /// completed greedily instead of optimally.
  bool truncated = false;
  /// True when the budget that ended the search was the deadline.
  bool deadline_hit = false;
};

/// A* search over the space of candidate 1-1 mappings (Section 4.2).
/// States are partial assignments in a fixed tag order (most-structured
/// tags first, the Section 6.3 ordering); successors extend the next tag
/// with each candidate label. g = accumulated -α·log s(label|tag) plus
/// soft-constraint costs; hard violations prune. h = Σ over unassigned
/// tags of -α·log(best score) — admissible because soft costs are
/// monotone and each tag's best label lower-bounds its contribution.
class AStarSearcher {
 public:
  explicit AStarSearcher(AStarOptions options = AStarOptions())
      : options_(options) {}

  /// Finds the minimum-cost complete assignment.
  ///   predictions[i] — the prediction-converter distribution for tag i
  ///                    (indexed per `context.tags()`);
  ///   constraints    — the domain constraints (may be empty);
  ///   deadline       — anytime budget: when it expires mid-search (checked
  ///                    every few expansions) the result is the greedy
  ///                    constraint-respecting completion, never an error —
  ///                    an already-expired deadline yields the pure greedy
  ///                    mapping immediately.
  /// Returns InvalidArgument on shape mismatch. When every complete
  /// assignment violates a hard constraint the search falls back to the
  /// unconstrained argmax assignment with `truncated` set.
  StatusOr<SearchResult> Search(const std::vector<Prediction>& predictions,
                                const ConstraintSet& constraints,
                                const LabelSpace& labels,
                                const ConstraintContext& context,
                                const Deadline& deadline = Deadline()) const;

  /// The tag processing order: indices into `context.tags()` sorted by
  /// decreasing structure score (DescendantCount), ties by index.
  /// Exposed for tests and for the feedback loop's question ordering.
  static std::vector<size_t> TagOrder(const ConstraintContext& context);

 private:
  AStarOptions options_;
};

}  // namespace lsd

#endif  // LSD_CONSTRAINTS_ASTAR_SEARCHER_H_
