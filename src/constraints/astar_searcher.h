#ifndef LSD_CONSTRAINTS_ASTAR_SEARCHER_H_
#define LSD_CONSTRAINTS_ASTAR_SEARCHER_H_

#include <cstddef>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "constraints/constraint.h"
#include "ml/prediction.h"

namespace lsd {

/// Options for `AStarSearcher`.
struct AStarOptions {
  /// Scaling coefficient α of the -log prob(m) term in
  /// cost(m) = Σ γ_i cost(m, T_i) - α log prob(m) (Section 4.2). Soft
  /// constraints carry their γ in their own weights.
  double alpha = 1.0;
  /// Per-tag branching: only the top `beam_width` labels by converter
  /// score are considered for each tag (OTHER is always included).
  /// 0 = consider every label.
  size_t beam_width = 8;
  /// Confidence floor: scores are clamped up to this before taking logs so
  /// a zero score stays assignable (hard constraints may force it).
  double score_floor = 1e-6;
  /// Abort after this many node expansions and fall back to greedy
  /// argmax completion (keeps the matcher interactive; Section 7 notes
  /// the constraint handler can take minutes unoptimized).
  size_t max_expansions = 200000;
  /// Record every expanded state with the heuristic value used for it
  /// (`SearchResult::trace`). Test-only: materializes one Assignment per
  /// expansion, exactly what the node pool exists to avoid.
  bool record_trace = false;
};

/// One expanded node, recorded when `AStarOptions::record_trace` is set.
struct ExpandedState {
  Assignment assignment;
  /// Cost-so-far and the admissible remaining-cost bound at expansion.
  double g = 0.0;
  double h = 0.0;
};

/// Result of a constraint-handler search.
struct SearchResult {
  Assignment assignment;
  double cost = 0.0;
  size_t expanded = 0;
  /// True when the search exhausted `max_expansions` (or its deadline) and
  /// completed greedily instead of optimally.
  bool truncated = false;
  /// True when the budget that ended the search was the deadline.
  bool deadline_hit = false;
  /// Expanded states in pop order; empty unless
  /// `AStarOptions::record_trace` was set.
  std::vector<ExpandedState> trace;
};

/// A* search over the space of candidate 1-1 mappings (Section 4.2).
/// States are partial assignments in a fixed tag order (most-structured
/// tags first, the Section 6.3 ordering); successors extend the next tag
/// with each candidate label. g = accumulated -α·log s(label|tag) plus
/// soft-constraint costs; hard violations prune.
///
/// The hot path is incremental throughout: extending a node evaluates
/// only the constraints relevant to the new (tag, label) via
/// `Constraint::DeltaCost` against a `SearchState` that is walked between
/// popped nodes through parent pointers, never copied. Nodes live in an
/// arena pool (32 bytes each) with the open list holding (f, g, index)
/// entries; the goal assignment is reconstructed from parent pointers.
///
/// h = Σ over unassigned tags of -α·log(best score), tightened with cap
/// regrets: when a capped label (declared via `Constraint::CountCap`) is
/// the best candidate of more remaining tags than its cap admits, the
/// overflow tags must pay at least their switch regret. Both terms lower-
/// bound the true remaining cost, so the heuristic stays admissible and
/// the first goal popped is optimal. A greedy constraint-respecting
/// completion computed up front serves as the anytime answer and as an
/// incumbent upper bound that prunes the open list; a visited-state table
/// keyed by (depth, assignment hash) discards dominated duplicates.
class AStarSearcher {
 public:
  explicit AStarSearcher(AStarOptions options = AStarOptions())
      : options_(options) {}

  /// Finds the minimum-cost complete assignment.
  ///   predictions[i] — the prediction-converter distribution for tag i
  ///                    (indexed per `context.tags()`);
  ///   constraints    — the domain constraints (may be empty);
  ///   deadline       — anytime budget: when it expires mid-search (checked
  ///                    every few expansions) the result is the greedy
  ///                    constraint-respecting completion, never an error —
  ///                    an already-expired deadline yields the pure greedy
  ///                    mapping immediately.
  /// Returns InvalidArgument on shape mismatch. When every complete
  /// assignment violates a hard constraint the search falls back to the
  /// unconstrained argmax assignment with `truncated` set.
  StatusOr<SearchResult> Search(const std::vector<Prediction>& predictions,
                                const ConstraintSet& constraints,
                                const LabelSpace& labels,
                                const ConstraintContext& context,
                                const Deadline& deadline = Deadline()) const;

  /// The tag processing order: indices into `context.tags()` sorted by
  /// decreasing structure score (DescendantCount), ties by index.
  /// Exposed for tests and for the feedback loop's question ordering.
  static std::vector<size_t> TagOrder(const ConstraintContext& context);

 private:
  AStarOptions options_;
};

}  // namespace lsd

#endif  // LSD_CONSTRAINTS_ASTAR_SEARCHER_H_
