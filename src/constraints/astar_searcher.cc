#include "constraints/astar_searcher.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/metrics.h"
#include "common/trace.h"

namespace lsd {
namespace {

struct Node {
  Assignment assignment;
  /// Number of tags (in search order) already assigned.
  size_t level = 0;
  /// Accumulated -α·log s(label|tag) over assigned tags.
  double prob_cost = 0.0;
  /// Accumulated soft-constraint cost of the partial assignment.
  double soft_cost = 0.0;
  /// g = prob_cost + soft_cost.
  double g = 0.0;
  double f = 0.0;
};

struct NodeCompare {
  bool operator()(const Node& a, const Node& b) const { return a.f > b.f; }
};

}  // namespace

std::vector<size_t> AStarSearcher::TagOrder(const ConstraintContext& context) {
  const std::vector<std::string>& tags = context.tags();
  std::vector<size_t> order(tags.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<size_t> scores(tags.size());
  for (size_t i = 0; i < tags.size(); ++i) {
    scores[i] = context.schema().DescendantCount(tags[i]);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&scores](size_t a, size_t b) { return scores[a] > scores[b]; });
  return order;
}

StatusOr<SearchResult> AStarSearcher::Search(
    const std::vector<Prediction>& predictions, const ConstraintSet& constraints,
    const LabelSpace& labels, const ConstraintContext& context,
    const Deadline& deadline) const {
  TraceSpan span("astar/search");
  const size_t n_tags = context.tags().size();
  if (predictions.size() != n_tags) {
    return Status::InvalidArgument("AStarSearcher: one prediction per tag required");
  }
  const size_t n_labels = labels.size();
  for (const Prediction& p : predictions) {
    if (p.size() != n_labels) {
      return Status::InvalidArgument("AStarSearcher: label-count mismatch");
    }
  }

  // -α log s, floored.
  auto label_cost = [&](size_t tag, int label) {
    double score = std::max(predictions[tag].scores[static_cast<size_t>(label)],
                            options_.score_floor);
    return -options_.alpha * std::log(score);
  };

  // Candidate labels per tag: top beam_width by score plus OTHER.
  std::vector<std::vector<int>> candidates(n_tags);
  for (size_t t = 0; t < n_tags; ++t) {
    std::vector<int> all(n_labels);
    for (size_t c = 0; c < n_labels; ++c) all[c] = static_cast<int>(c);
    std::sort(all.begin(), all.end(), [&](int a, int b) {
      return predictions[t].scores[static_cast<size_t>(a)] >
             predictions[t].scores[static_cast<size_t>(b)];
    });
    size_t width = options_.beam_width == 0
                       ? n_labels
                       : std::min(options_.beam_width, n_labels);
    candidates[t].assign(all.begin(), all.begin() + static_cast<long>(width));
    int other = labels.other_index();
    if (other >= 0 &&
        std::find(candidates[t].begin(), candidates[t].end(), other) ==
            candidates[t].end()) {
      candidates[t].push_back(other);
    }
  }

  // Per-tag admissible lower bound on the probability term.
  std::vector<double> best_label_cost(n_tags, 0.0);
  for (size_t t = 0; t < n_tags; ++t) {
    double best = kInfiniteCost;
    for (int label : candidates[t]) {
      best = std::min(best, label_cost(t, label));
    }
    best_label_cost[t] = best;
  }

  // Incremental constraint evaluation: index constraints by the labels
  // that can affect them, so extending a partial assignment with (tag,
  // label) only re-checks the constraints triggered by that label (plus
  // the few that must always be re-checked). Constraint costs are
  // monotone, so untouched constraints stay satisfied.
  std::vector<std::vector<size_t>> by_label(n_labels);
  std::vector<size_t> always;
  for (size_t i = 0; i < constraints.size(); ++i) {
    std::vector<std::string> triggers = constraints.at(i).TriggerLabels();
    if (triggers.empty()) {
      always.push_back(i);
      continue;
    }
    bool any_known = false;
    for (const std::string& name : triggers) {
      int label = labels.IndexOf(name);
      if (label >= 0) {
        by_label[static_cast<size_t>(label)].push_back(i);
        any_known = true;
      }
    }
    // Constraints whose labels are all outside the label space are inert.
    (void)any_known;
  }
  // Dedupe per-label lists (a constraint may list a label twice).
  for (auto& list : by_label) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  std::vector<size_t> order = TagOrder(context);
  // Suffix sums of best costs along the search order.
  std::vector<double> heuristic(n_tags + 1, 0.0);
  for (size_t i = n_tags; i-- > 0;) {
    heuristic[i] = heuristic[i + 1] + best_label_cost[order[i]];
  }

  // Search-shape counters. Each Search call is single-threaded and the
  // inputs are fixed before it starts, so these are deterministic for a
  // given match run regardless of how calls are spread across the pool.
  size_t pruned = 0;
  size_t frontier_peak = 0;
  auto flush_metrics = [&](size_t expanded, bool greedy, bool deadline_hit) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("astar.searches")->Increment();
    registry.GetCounter("astar.expanded")->Increment(expanded);
    registry.GetCounter("astar.pruned")->Increment(pruned);
    registry.GetGauge("astar.frontier_peak")->RecordMax(frontier_peak);
    if (greedy) registry.GetCounter("astar.greedy_fallbacks")->Increment();
    if (deadline_hit) registry.GetCounter("astar.deadline_hits")->Increment();
  };

  // Constraint-respecting greedy completion, used when A* exhausts its
  // expansion budget or no feasible completion exists: assign tags in
  // search order, picking each tag's cheapest candidate that keeps the
  // partial assignment feasible; when no candidate is feasible, prefer
  // OTHER (it participates in no hard constraints), else the argmax.
  auto greedy_fallback = [&](size_t expanded, bool deadline_hit) {
    flush_metrics(expanded, /*greedy=*/true, deadline_hit);
    SearchResult result;
    result.deadline_hit = deadline_hit;
    result.assignment = Assignment(n_tags);
    double total = 0.0;
    for (size_t t : order) {
      int chosen = -1;
      double chosen_cost = kInfiniteCost;
      for (int label : candidates[t]) {
        result.assignment.labels[t] = label;
        if (constraints.TotalCost(result.assignment, labels, context) ==
            kInfiniteCost) {
          continue;
        }
        double cost = label_cost(t, label);
        if (cost < chosen_cost) {
          chosen = label;
          chosen_cost = cost;
        }
      }
      if (chosen < 0) {
        chosen = labels.other_index() >= 0 ? labels.other_index()
                                           : predictions[t].Best();
        chosen_cost = label_cost(t, chosen);
      }
      result.assignment.labels[t] = chosen;
      total += chosen_cost;
    }
    double soft = constraints.TotalCost(result.assignment, labels, context);
    result.cost = soft == kInfiniteCost ? kInfiniteCost : total + soft;
    result.expanded = expanded;
    result.truncated = true;
    return result;
  };

  // Anytime behavior: an expired deadline (even one that arrived already
  // expired) yields the greedy constraint-respecting completion instead of
  // an error. The in-loop check is amortized over 64 expansions so the
  // clock read never dominates the search.
  if (deadline.expired()) return greedy_fallback(0, /*deadline_hit=*/true);

  std::priority_queue<Node, std::vector<Node>, NodeCompare> open;
  Node root;
  root.assignment = Assignment(n_tags);
  // One full evaluation at the root; everything after is incremental.
  double root_cost = constraints.TotalCost(root.assignment, labels, context);
  if (root_cost == kInfiniteCost) return greedy_fallback(0, false);
  root.soft_cost = root_cost;
  root.g = root.soft_cost;
  root.f = root.g + heuristic[0];
  open.push(std::move(root));
  frontier_peak = open.size();

  size_t expanded = 0;
  while (!open.empty()) {
    Node node = open.top();
    open.pop();
    if (node.level == n_tags) {
      flush_metrics(expanded, /*greedy=*/false, /*deadline_hit=*/false);
      SearchResult result;
      result.assignment = std::move(node.assignment);
      result.cost = node.g;
      result.expanded = expanded;
      result.truncated = false;
      return result;
    }
    if (++expanded > options_.max_expansions) {
      return greedy_fallback(expanded, false);
    }
    if ((expanded & 63) == 0 && deadline.expired()) {
      return greedy_fallback(expanded, /*deadline_hit=*/true);
    }
    size_t tag = order[node.level];
    for (int label : candidates[tag]) {
      Node child;
      child.assignment = node.assignment;
      child.assignment.labels[tag] = label;
      child.level = node.level + 1;
      // Re-check only constraints this label (or "always" constraints) can
      // affect. Hard violations prune; soft deltas accumulate into g.
      bool feasible = true;
      double soft_delta = 0.0;
      auto check = [&](size_t index) {
        const Constraint& c = constraints.at(index);
        double child_cost = c.Cost(child.assignment, labels, context);
        if (child_cost == kInfiniteCost) {
          feasible = false;
          return;
        }
        if (!c.IsHard()) {
          soft_delta +=
              child_cost - c.Cost(node.assignment, labels, context);
        }
      };
      for (size_t index : by_label[static_cast<size_t>(label)]) {
        check(index);
        if (!feasible) break;
      }
      if (feasible) {
        for (size_t index : always) {
          check(index);
          if (!feasible) break;
        }
      }
      if (!feasible) {
        ++pruned;
        continue;
      }
      child.prob_cost = node.prob_cost + label_cost(tag, label);
      child.soft_cost = node.soft_cost + soft_delta;
      child.g = child.prob_cost + child.soft_cost;
      child.f = child.g + heuristic[child.level];
      open.push(std::move(child));
      frontier_peak = std::max(frontier_peak, open.size());
    }
  }
  // Every completion violated a hard constraint: fall back to greedy.
  return greedy_fallback(expanded, false);
}

}  // namespace lsd
