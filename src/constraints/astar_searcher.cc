#include "constraints/astar_searcher.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <utility>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"

namespace lsd {
namespace {

/// Fixed seed for the per-search Zobrist table: the hash must be identical
/// across searches, runs, and thread counts for the dominance table (and
/// the determinism guarantees built on it) to be reproducible.
constexpr uint64_t kZobristSeed = 0x5eac4c0de0a57a12ULL;

/// Arena node: 32 bytes, parent-pointer path reconstruction instead of a
/// full Assignment per open-list entry. Nodes are only ever appended, so
/// indices stay stable for the whole search.
struct PoolNode {
  double g = 0.0;
  /// Zobrist hash of the partial assignment (XOR over (tag, label)).
  uint64_t hash = 0;
  int32_t parent = -1;
  int32_t tag = -1;
  int32_t label = -1;
  uint32_t level = 0;
};

/// Open-list entry: priority data plus the arena index.
struct HeapEntry {
  double f = 0.0;
  double g = 0.0;
  uint32_t node = 0;
};

/// Orders the open list: lowest f first; ties prefer the deeper node
/// (higher g means more of f is real cost, not estimate), then the older
/// arena index. The full tie-break keeps pop order — and therefore the
/// returned assignment — deterministic.
struct HeapCompare {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.f != b.f) return a.f > b.f;
    if (a.g != b.g) return a.g < b.g;
    return a.node > b.node;
  }
};

}  // namespace

std::vector<size_t> AStarSearcher::TagOrder(const ConstraintContext& context) {
  const std::vector<std::string>& tags = context.tags();
  std::vector<size_t> order(tags.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<size_t> scores(tags.size());
  for (size_t i = 0; i < tags.size(); ++i) {
    scores[i] = context.schema().DescendantCount(tags[i]);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&scores](size_t a, size_t b) { return scores[a] > scores[b]; });
  return order;
}

StatusOr<SearchResult> AStarSearcher::Search(
    const std::vector<Prediction>& predictions, const ConstraintSet& constraints,
    const LabelSpace& labels, const ConstraintContext& context,
    const Deadline& deadline) const {
  TraceSpan span("astar/search");
  const size_t n_tags = context.tags().size();
  if (predictions.size() != n_tags) {
    return Status::InvalidArgument("AStarSearcher: one prediction per tag required");
  }
  const size_t n_labels = labels.size();
  for (const Prediction& p : predictions) {
    if (p.size() != n_labels) {
      return Status::InvalidArgument("AStarSearcher: label-count mismatch");
    }
  }

  // -α log s, floored.
  auto label_cost = [&](size_t tag, int label) {
    double score = std::max(predictions[tag].scores[static_cast<size_t>(label)],
                            options_.score_floor);
    return -options_.alpha * std::log(score);
  };

  // Candidate labels per tag: top beam_width by score plus OTHER.
  std::vector<std::vector<int>> candidates(n_tags);
  for (size_t t = 0; t < n_tags; ++t) {
    std::vector<int> all(n_labels);
    for (size_t c = 0; c < n_labels; ++c) all[c] = static_cast<int>(c);
    std::sort(all.begin(), all.end(), [&](int a, int b) {
      return predictions[t].scores[static_cast<size_t>(a)] >
             predictions[t].scores[static_cast<size_t>(b)];
    });
    size_t width = options_.beam_width == 0
                       ? n_labels
                       : std::min(options_.beam_width, n_labels);
    candidates[t].assign(all.begin(), all.begin() + static_cast<long>(width));
    int other = labels.other_index();
    if (other >= 0 &&
        std::find(candidates[t].begin(), candidates[t].end(), other) ==
            candidates[t].end()) {
      candidates[t].push_back(other);
    }
  }

  // Relevance index: extending with (tag, label) only re-evaluates
  //   - constraints pinned to that tag (user feedback),
  //   - constraints triggered by that label,
  //   - constraints that must always be re-checked (minimum counts).
  // Constraints whose tags/labels are all unknown are inert. Costs are
  // monotone, so untouched constraints cannot newly violate.
  std::vector<std::vector<size_t>> by_tag(n_tags);
  std::vector<std::vector<size_t>> by_label(n_labels);
  std::vector<size_t> always;
  for (size_t i = 0; i < constraints.size(); ++i) {
    const Constraint& c = constraints.at(i);
    std::vector<std::string> tags = c.RelevantTags();
    if (!tags.empty()) {
      for (const std::string& name : tags) {
        int tag = context.TagIndex(name);
        if (tag >= 0) by_tag[static_cast<size_t>(tag)].push_back(i);
      }
      continue;
    }
    std::vector<std::string> triggers = c.TriggerLabels();
    if (triggers.empty()) {
      always.push_back(i);
      continue;
    }
    for (const std::string& name : triggers) {
      int label = labels.IndexOf(name);
      if (label >= 0) by_label[static_cast<size_t>(label)].push_back(i);
    }
  }
  for (auto& list : by_label) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  for (auto& list : by_tag) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  // Soft delta of extending `state` by (tag, label), or kInfiniteCost when
  // a hard constraint rejects the extension. Evaluation order (tag-pinned,
  // label-triggered, always) is fixed so the float accumulation is
  // deterministic.
  auto delta_total = [&](size_t tag, int label,
                         const SearchState& state) -> double {
    double soft = 0.0;
    auto apply = [&](size_t index) {
      const Constraint& c = constraints.at(index);
      double delta = c.DeltaCost(static_cast<int>(tag), label, state, labels,
                                 context);
      if (delta == kInfiniteCost) return false;
      if (!c.IsHard()) soft += delta;
      return true;
    };
    for (size_t index : by_tag[tag]) {
      if (!apply(index)) return kInfiniteCost;
    }
    for (size_t index : by_label[static_cast<size_t>(label)]) {
      if (!apply(index)) return kInfiniteCost;
    }
    for (size_t index : always) {
      if (!apply(index)) return kInfiniteCost;
    }
    return soft;
  };

  // Drop candidates that are infeasible on their own (key violations,
  // feedback pins): costs are monotone, so no feasible assignment can
  // ever contain them. This shrinks the branching factor and tightens
  // every per-tag bound below.
  if (n_tags > 1) {
    SearchState probe(n_tags, n_labels);
    for (size_t t = 0; t < n_tags; ++t) {
      std::vector<int> kept;
      kept.reserve(candidates[t].size());
      for (int label : candidates[t]) {
        if (delta_total(t, label, probe) != kInfiniteCost) {
          kept.push_back(label);
        }
      }
      candidates[t] = std::move(kept);
    }
  }

  // Per-tag admissible lower bound on the probability term, plus the
  // cheapest alternative ("regret") used by the cap penalties below.
  std::vector<double> best_cost(n_tags, 0.0);
  std::vector<int> best_label(n_tags, -1);
  std::vector<double> regret(n_tags, kInfiniteCost);
  for (size_t t = 0; t < n_tags; ++t) {
    double best = kInfiniteCost;
    int best_l = -1;
    for (int label : candidates[t]) {
      double cost = label_cost(t, label);
      if (cost < best) {
        best = cost;
        best_l = label;
      }
    }
    best_cost[t] = best;
    best_label[t] = best_l;
    double second = kInfiniteCost;
    for (int label : candidates[t]) {
      if (label == best_l) continue;
      second = std::min(second, label_cost(t, label));
    }
    regret[t] = second == kInfiniteCost ? kInfiniteCost : second - best;
  }

  // Caps declared by the constraints (hard frequency maxima, soft count
  // limits), folded into the heuristic's collision penalties.
  std::vector<std::vector<std::pair<size_t, double>>> caps_by_label(n_labels);
  {
    std::string cap_label;
    size_t cap_count = 0;
    double cap_weight = 0.0;
    for (size_t i = 0; i < constraints.size(); ++i) {
      if (!constraints.at(i).CountCap(&cap_label, &cap_count, &cap_weight)) {
        continue;
      }
      int label = labels.IndexOf(cap_label);
      if (label >= 0) {
        caps_by_label[static_cast<size_t>(label)].emplace_back(cap_count,
                                                               cap_weight);
      }
    }
  }

  std::vector<size_t> order = TagOrder(context);

  // Static admissible heuristic, the searcher's floor bound. Base: suffix
  // sums of each remaining tag's best-candidate cost. Tightening: when a
  // capped label is the best candidate of more remaining tags than its
  // cap admits, the extra tags must switch and pay at least their regret
  // (hard caps), or at least min(regret, weight) each (soft count limits:
  // stay over the cap and pay the weight, or switch). Assuming the full
  // cap is still available — prefix assignments can only consume it —
  // keeps this a lower bound.
  std::vector<double> h_static(n_tags + 1, 0.0);
  for (size_t i = n_tags; i-- > 0;) {
    h_static[i] = h_static[i + 1] + best_cost[order[i]];
  }
  {
    std::vector<std::vector<double>> group(n_labels);
    for (size_t i = 0; i < n_tags; ++i) {
      for (auto& g : group) g.clear();
      for (size_t p = i; p < n_tags; ++p) {
        size_t t = order[p];
        if (best_label[t] >= 0) {
          group[static_cast<size_t>(best_label[t])].push_back(regret[t]);
        }
      }
      double penalty = 0.0;
      for (size_t label = 0; label < n_labels; ++label) {
        if (caps_by_label[label].empty() || group[label].size() <= 1) continue;
        std::sort(group[label].begin(), group[label].end());
        double label_penalty = 0.0;
        for (const auto& [cap, weight] : caps_by_label[label]) {
          if (group[label].size() <= cap) continue;
          size_t extra = group[label].size() - cap;
          double pen = 0.0;
          for (size_t j = 0; j < extra; ++j) {
            pen += weight == kInfiniteCost ? group[label][j]
                                           : std::min(group[label][j], weight);
          }
          label_penalty = std::max(label_penalty, pen);
        }
        penalty += label_penalty;
      }
      h_static[i] += penalty;
    }
  }

  // One full evaluation at the root; everything after is incremental.
  Assignment empty(n_tags);
  double root_cost = constraints.TotalCost(empty, labels, context);

  // Constraint-respecting greedy completion, computed up front: it is both
  // the anytime answer (budget/deadline truncation, infeasible search) and
  // the incumbent upper bound that prunes the open list. Assign tags in
  // search order, picking each tag's cheapest candidate that keeps the
  // partial assignment feasible; when no candidate is feasible, prefer
  // OTHER (it participates in no hard constraints), else the argmax —
  // after which the assignment is poisoned and feasibility checks are
  // moot, exactly as a full re-evaluation would report.
  SearchResult greedy;
  {
    SearchState state(n_tags, n_labels);
    bool poisoned = root_cost == kInfiniteCost;
    double total = 0.0;
    for (size_t t : order) {
      int chosen = -1;
      double chosen_cost = kInfiniteCost;
      if (!poisoned) {
        for (int label : candidates[t]) {
          if (delta_total(t, label, state) == kInfiniteCost) continue;
          double cost = label_cost(t, label);
          if (cost < chosen_cost) {
            chosen = label;
            chosen_cost = cost;
          }
        }
      }
      if (chosen < 0) {
        chosen = labels.other_index() >= 0 ? labels.other_index()
                                           : predictions[t].Best();
        chosen_cost = label_cost(t, chosen);
        poisoned = true;
      }
      state.Assign(static_cast<int>(t), chosen);
      total += chosen_cost;
    }
    greedy.assignment = state.assignment();
    double soft = constraints.TotalCost(greedy.assignment, labels, context);
    greedy.cost = soft == kInfiniteCost ? kInfiniteCost : total + soft;
    greedy.truncated = true;
  }

  // Search-shape counters. Each Search call is single-threaded and the
  // inputs are fixed before it starts, so these are deterministic for a
  // given match run regardless of how calls are spread across the pool.
  size_t pruned = 0;
  size_t bound_pruned = 0;
  size_t dominated = 0;
  size_t frontier_peak = 0;
  size_t heap_peak = 0;
  auto flush_metrics = [&](size_t expanded, bool greedy_returned,
                           bool deadline_hit, bool truncated) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("astar.searches")->Increment();
    registry.GetCounter("astar.expanded")->Increment(expanded);
    registry.GetCounter("astar.pruned")->Increment(pruned);
    registry.GetCounter("astar.bound_pruned")->Increment(bound_pruned);
    registry.GetCounter("astar.dominated")->Increment(dominated);
    registry.GetCounter("astar.truncated")->Increment(truncated ? 1 : 0);
    registry.GetCounter("astar.greedy_fallbacks")
        ->Increment(greedy_returned ? 1 : 0);
    registry.GetCounter("astar.deadline_hits")
        ->Increment(deadline_hit ? 1 : 0);
    registry.GetGauge("astar.frontier_peak")->RecordMax(frontier_peak);
    registry.GetGauge("astar.heap_peak")->RecordMax(heap_peak);
  };
  auto greedy_result = [&](size_t expanded, bool deadline_hit) {
    flush_metrics(expanded, /*greedy_returned=*/true, deadline_hit,
                  /*truncated=*/true);
    SearchResult result = greedy;
    result.expanded = expanded;
    result.deadline_hit = deadline_hit;
    return result;
  };

  // Anytime behavior: an expired deadline (even one that arrived already
  // expired) yields the greedy constraint-respecting completion instead of
  // an error. The in-loop check is amortized over 64 expansions so the
  // clock read never dominates the search.
  if (deadline.expired()) return greedy_result(0, /*deadline_hit=*/true);
  if (root_cost == kInfiniteCost) return greedy_result(0, false);

  // Incumbent bound: a goal must beat the greedy completion, so any node
  // whose admissible f exceeds it can never lead to a better goal. The
  // epsilon absorbs last-ulp differences between the greedy cost (summed
  // per full evaluation) and the same assignment's incremental g.
  double bound = kInfiniteCost;
  if (greedy.cost != kInfiniteCost) {
    bound = greedy.cost + 1e-9 * (1.0 + std::abs(greedy.cost));
  }

  // -------------------------------------------------------------------
  // Forward checking: a per-search pairwise conflict matrix. Two
  // candidate picks conflict when the two-tag assignment {t→l, t'→l'}
  // already violates a hard constraint; by monotonicity no completion can
  // contain a conflicting pair. Each pick owns a bitset row over all
  // picks; OR-ing the rows of the assigned picks (once per pop, a few
  // hundred word ops) yields the set of blocked candidates under the
  // current partial assignment. The per-tag minimum over surviving
  // candidates is a far tighter admissible bound than the static
  // best-cost: it sees, at the moment a subtree is entered, which tags
  // have been forced off their preferred labels (and onto OTHER's -log
  // floor cost), and it detects dead ends — a tag with no surviving
  // candidate — before expanding a single node below them.
  // -------------------------------------------------------------------
  std::vector<size_t> cand_offset(n_tags + 1, 0);
  for (size_t t = 0; t < n_tags; ++t) {
    cand_offset[t + 1] = cand_offset[t] + candidates[t].size();
  }
  const size_t n_cands = cand_offset[n_tags];
  std::vector<double> cand_cost(n_cands, 0.0);
  for (size_t t = 0; t < n_tags; ++t) {
    for (size_t k = 0; k < candidates[t].size(); ++k) {
      cand_cost[cand_offset[t] + k] = label_cost(t, candidates[t][k]);
    }
  }
  auto ci_of = [&](size_t t, int label) -> int {
    const std::vector<int>& c = candidates[t];
    for (size_t k = 0; k < c.size(); ++k) {
      if (c[k] == label) return static_cast<int>(k);
    }
    return -1;
  };
  // Word-aligned row per pick so rows can be OR-ed wholesale.
  const size_t row_words = n_cands == 0 ? 1 : (n_cands + 63) / 64;
  std::vector<uint64_t> conflict_rows(n_cands * row_words, 0);
  auto conflicts = [&](size_t a, size_t b) -> bool {
    return (conflict_rows[a * row_words + (b >> 6)] >> (b & 63)) & 1u;
  };
  {
    auto set_conflict = [&](size_t a, size_t b) {
      conflict_rows[a * row_words + (b >> 6)] |= uint64_t{1} << (b & 63);
      conflict_rows[b * row_words + (a >> 6)] |= uint64_t{1} << (a & 63);
    };
    SearchState probe(n_tags, n_labels);
    for (size_t t = 0; t + 1 < n_tags; ++t) {
      for (size_t k = 0; k < candidates[t].size(); ++k) {
        probe.Assign(static_cast<int>(t), candidates[t][k]);
        for (size_t t2 = t + 1; t2 < n_tags; ++t2) {
          for (size_t k2 = 0; k2 < candidates[t2].size(); ++k2) {
            if (delta_total(t2, candidates[t2][k2], probe) == kInfiniteCost) {
              set_conflict(cand_offset[t] + k, cand_offset[t2] + k2);
            }
          }
        }
        probe.Unassign(static_cast<int>(t), candidates[t][k]);
      }
    }
  }

  // Zobrist table for the dominance hash, seeded identically per search.
  std::vector<uint64_t> zobrist(n_tags * n_labels);
  {
    Rng rng(kZobristSeed);
    for (uint64_t& z : zobrist) z = rng.Next();
  }

  std::vector<PoolNode> pool;
  pool.reserve(1024);
  pool.push_back(PoolNode{root_cost, 0, -1, -1, -1, 0});
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> open;

  // The incremental state tracks one node's partial assignment at a time;
  // switching to another popped node walks the tree between them via
  // parent pointers (unassign up to the common ancestor, reassign down).
  // The stack of assigned pick indices rides along so the blocked bitset
  // can be rebuilt from their conflict rows after each move.
  SearchState state(n_tags, n_labels);
  std::vector<size_t> assigned_picks;
  assigned_picks.reserve(n_tags);
  std::vector<uint64_t> blocked(row_words, 0);
  auto is_blocked = [&](size_t pick) -> bool {
    return (blocked[pick >> 6] >> (pick & 63)) & 1u;
  };
  auto rebuild_blocked = [&]() {
    std::fill(blocked.begin(), blocked.end(), 0);
    for (size_t pick : assigned_picks) {
      const uint64_t* row = &conflict_rows[pick * row_words];
      for (size_t w = 0; w < row_words; ++w) blocked[w] |= row[w];
    }
  };
  uint32_t state_node = 0;
  std::vector<uint32_t> walk;
  auto move_state_to = [&](uint32_t target) {
    uint32_t a = state_node;
    uint32_t b = target;
    walk.clear();
    while (pool[a].level > pool[b].level) {
      state.Unassign(pool[a].tag, pool[a].label);
      assigned_picks.pop_back();
      a = static_cast<uint32_t>(pool[a].parent);
    }
    while (pool[b].level > pool[a].level) {
      walk.push_back(b);
      b = static_cast<uint32_t>(pool[b].parent);
    }
    while (a != b) {
      state.Unassign(pool[a].tag, pool[a].label);
      assigned_picks.pop_back();
      a = static_cast<uint32_t>(pool[a].parent);
      walk.push_back(b);
      b = static_cast<uint32_t>(pool[b].parent);
    }
    for (auto it = walk.rbegin(); it != walk.rend(); ++it) {
      const PoolNode& step = pool[*it];
      state.Assign(step.tag, step.label);
      assigned_picks.push_back(
          cand_offset[static_cast<size_t>(step.tag)] +
          static_cast<size_t>(ci_of(static_cast<size_t>(step.tag), step.label)));
    }
    state_node = target;
    rebuild_blocked();
  };

  // Per-expansion forward-checking scan over the unassigned suffix:
  // cheapest and second-cheapest surviving candidate per tag, refreshed
  // once per pop and adjusted per child against the child's own pick.
  std::vector<double> fc_min(n_tags, 0.0);
  std::vector<double> fc_second(n_tags, 0.0);
  std::vector<int> fc_min_ci(n_tags, -1);
  auto scan_suffix = [&](size_t from_q) {
    for (size_t q = from_q; q < n_tags; ++q) {
      size_t t = order[q];
      size_t base = cand_offset[t];
      double m1 = kInfiniteCost, m2 = kInfiniteCost;
      int mi = -1;
      for (size_t k = 0; k < candidates[t].size(); ++k) {
        if (is_blocked(base + k)) continue;
        double cost = cand_cost[base + k];
        if (cost < m1) {
          m2 = m1;
          m1 = cost;
          mi = static_cast<int>(k);
        } else if (cost < m2) {
          m2 = cost;
        }
      }
      fc_min[q] = m1;
      fc_second[q] = m2;
      fc_min_ci[q] = mi;
    }
  };

  // Admissible bound on the cost of completing the suffix order[from_q..)
  // given the current state plus (optionally) one extra pick `a`
  // (candidate bit index; kNoPick for none) of `new_label`. Per tag:
  // cheapest surviving candidate, recomputed under `a`'s conflicts when
  // they hit the cached minimum. On top, cap-collision penalties: tags
  // whose surviving best is the same capped label beyond the cap's
  // remaining headroom must switch and pay their regret (hard caps) or
  // min(regret, weight) (soft count limits). Infinite when some tag has
  // no surviving candidate — a proven dead end.
  constexpr size_t kNoPick = static_cast<size_t>(-1);
  std::vector<std::vector<double>> pen_group(n_labels);
  std::vector<size_t> pen_touched;
  auto suffix_bound = [&](size_t from_q, size_t a, int new_label) -> double {
    double total = 0.0;
    pen_touched.clear();
    for (size_t q = from_q; q < n_tags; ++q) {
      size_t t = order[q];
      size_t base = cand_offset[t];
      double m1 = fc_min[q];
      double m2 = fc_second[q];
      int mi = fc_min_ci[q];
      if (a != kNoPick && (mi < 0 || conflicts(a, base + static_cast<size_t>(mi)))) {
        m1 = kInfiniteCost;
        m2 = kInfiniteCost;
        mi = -1;
        for (size_t k = 0; k < candidates[t].size(); ++k) {
          if (is_blocked(base + k) || conflicts(a, base + k)) continue;
          double cost = cand_cost[base + k];
          if (cost < m1) {
            m2 = m1;
            m1 = cost;
            mi = static_cast<int>(k);
          } else if (cost < m2) {
            m2 = cost;
          }
        }
      }
      if (mi < 0) return kInfiniteCost;
      total += m1;
      size_t label = static_cast<size_t>(candidates[t][static_cast<size_t>(mi)]);
      if (!caps_by_label[label].empty()) {
        if (pen_group[label].empty()) pen_touched.push_back(label);
        // m2 may itself conflict with `a`; using it anyway only lowers
        // the regret, which keeps the bound admissible.
        pen_group[label].push_back(m2 == kInfiniteCost ? kInfiniteCost
                                                       : m2 - m1);
      }
    }
    for (size_t label : pen_touched) {
      std::vector<double>& regrets = pen_group[label];
      size_t used = state.CountOf(static_cast<int>(label)) +
                    (new_label >= 0 && static_cast<size_t>(new_label) == label
                         ? 1
                         : 0);
      std::sort(regrets.begin(), regrets.end());
      double label_penalty = 0.0;
      for (const auto& [cap, weight] : caps_by_label[label]) {
        size_t avail = cap > used ? cap - used : 0;
        if (regrets.size() <= avail) continue;
        size_t extra = regrets.size() - avail;
        double pen = 0.0;
        for (size_t j = 0; j < extra; ++j) {
          pen += weight == kInfiniteCost ? regrets[j]
                                         : std::min(regrets[j], weight);
        }
        label_penalty = std::max(label_penalty, pen);
      }
      total += label_penalty;
      regrets.clear();
    }
    return total;
  };

  scan_suffix(0);
  {
    double h_root = std::max(suffix_bound(0, kNoPick, -1), h_static[0]);
    open.push(HeapEntry{root_cost + h_root, root_cost, 0});
  }
  frontier_peak = open.size();
  heap_peak = pool.size();

  // Dominance table keyed by (depth, assignment hash). On a key hit the
  // stored node's assignment is compared exactly (walking both parent
  // chains), so a hash collision can never prune a distinct state.
  std::unordered_map<uint64_t, std::pair<uint32_t, double>> visited;
  auto states_equal = [&](uint32_t a, uint32_t b) {
    while (a != b) {
      if (pool[a].tag != pool[b].tag || pool[a].label != pool[b].label) {
        return false;
      }
      a = static_cast<uint32_t>(pool[a].parent);
      b = static_cast<uint32_t>(pool[b].parent);
    }
    return true;
  };

  std::vector<ExpandedState> trace;
  size_t expanded = 0;
  while (!open.empty()) {
    HeapEntry top = open.top();
    open.pop();
    PoolNode node = pool[top.node];
    if (node.level == n_tags) {
      flush_metrics(expanded, /*greedy_returned=*/false,
                    /*deadline_hit=*/false, /*truncated=*/false);
      SearchResult result;
      result.assignment = Assignment(n_tags);
      for (uint32_t cur = top.node; pool[cur].level > 0;
           cur = static_cast<uint32_t>(pool[cur].parent)) {
        result.assignment.labels[static_cast<size_t>(pool[cur].tag)] =
            pool[cur].label;
      }
      result.cost = top.g;
      result.expanded = expanded;
      result.truncated = false;
      result.trace = std::move(trace);
      return result;
    }
    // Exact budget: a search never expands more than max_expansions nodes.
    if (expanded >= options_.max_expansions) {
      return greedy_result(expanded, false);
    }
    ++expanded;
    if ((expanded & 63) == 0 && deadline.expired()) {
      return greedy_result(expanded, /*deadline_hit=*/true);
    }
    move_state_to(top.node);
    if (options_.record_trace) {
      trace.push_back(ExpandedState{state.assignment(), top.g, top.f - top.g});
    }
    scan_suffix(node.level + 1);
    size_t tag = order[node.level];
    for (size_t k = 0; k < candidates[tag].size(); ++k) {
      int label = candidates[tag][k];
      size_t pick = cand_offset[tag] + k;
      if (is_blocked(pick)) {
        ++pruned;
        continue;
      }
      double soft_delta = delta_total(tag, label, state);
      if (soft_delta == kInfiniteCost) {
        ++pruned;
        continue;
      }
      double h_child = suffix_bound(node.level + 1, pick, label);
      if (h_child == kInfiniteCost) {
        // Forward checking proved some unassigned tag has no label
        // compatible with this extension: a dead subtree.
        ++pruned;
        continue;
      }
      double g = top.g + cand_cost[pick] + soft_delta;
      double f = g + std::max(h_child, h_static[node.level + 1]);
      if (f > bound) {
        ++bound_pruned;
        continue;
      }
      uint64_t hash =
          node.hash ^
          zobrist[tag * n_labels + static_cast<size_t>(label)];
      uint64_t key =
          hash + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(node.level + 1);
      pool.push_back(PoolNode{g, hash, static_cast<int32_t>(top.node),
                              static_cast<int32_t>(tag), label,
                              node.level + 1});
      uint32_t child = static_cast<uint32_t>(pool.size() - 1);
      auto it = visited.find(key);
      if (it != visited.end() &&
          pool[it->second.first].level == node.level + 1 &&
          states_equal(it->second.first, child)) {
        if (it->second.second <= g) {
          ++dominated;
          pool.pop_back();
          continue;
        }
        it->second = {child, g};
      } else if (it == visited.end()) {
        visited.emplace(key, std::make_pair(child, g));
      }
      open.push(HeapEntry{f, g, child});
      frontier_peak = std::max(frontier_peak, open.size());
      heap_peak = std::max(heap_peak, pool.size());
    }
  }
  // Every completion violated a hard constraint: fall back to greedy.
  return greedy_result(expanded, false);
}

}  // namespace lsd
