#include "constraints/constraint.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace lsd {
namespace {

constexpr int kDisconnectedDistance = 1000;

// Collects element names referenced by a particle in declaration order
// (unlike ContentParticle::CollectElementNames, which sorts).
void CollectOrdered(const ContentParticle& particle,
                    std::vector<std::string>* out) {
  if (particle.kind == ParticleKind::kElement) {
    out->push_back(particle.element_name);
  }
  for (const ContentParticle& child : particle.children) {
    CollectOrdered(child, out);
  }
}

}  // namespace

ConstraintContext::ConstraintContext(const Dtd* schema,
                                     const std::vector<Column>* columns)
    : schema_(schema), columns_(columns) {
  tags_ = schema_->AllTags();
  for (size_t i = 0; i < tags_.size(); ++i) {
    tag_index_[tags_[i]] = static_cast<int>(i);
  }
  parent_.assign(tags_.size(), -1);
  sibling_rank_.assign(tags_.size(), -1);
  // First declaring parent wins; declaration order gives sibling ranks.
  for (size_t p = 0; p < tags_.size(); ++p) {
    const ElementDecl* decl = schema_->Find(tags_[p]);
    if (decl == nullptr) continue;
    std::vector<std::string> ordered;
    CollectOrdered(decl->content, &ordered);
    std::set<std::string> seen;
    int rank = 0;
    for (const std::string& child : ordered) {
      if (!seen.insert(child).second) continue;
      int ci = TagIndex(child);
      if (ci >= 0 && parent_[static_cast<size_t>(ci)] < 0 &&
          child != tags_[p]) {
        parent_[static_cast<size_t>(ci)] = static_cast<int>(p);
        sibling_rank_[static_cast<size_t>(ci)] = rank;
      }
      ++rank;
    }
  }
  depth_.assign(tags_.size(), 0);
  for (size_t i = 0; i < tags_.size(); ++i) {
    int d = 0;
    int cur = static_cast<int>(i);
    while (parent_[static_cast<size_t>(cur)] >= 0 && d < kDisconnectedDistance) {
      cur = parent_[static_cast<size_t>(cur)];
      ++d;
    }
    depth_[i] = d;
  }
  values_.assign(tags_.size(), {});
  if (columns_ != nullptr) {
    for (const Column& column : *columns_) {
      int ti = TagIndex(column.tag);
      if (ti < 0) continue;
      auto& bucket = values_[static_cast<size_t>(ti)];
      for (const Instance& instance : column.instances) {
        bucket.emplace_back(instance.listing_index, instance.content);
      }
    }
  }
}

int ConstraintContext::TagIndex(const std::string& tag) const {
  auto it = tag_index_.find(tag);
  return it == tag_index_.end() ? -1 : it->second;
}

bool ConstraintContext::IsNestedIn(int inner_tag, int outer_tag) const {
  int cur = inner_tag;
  int steps = 0;
  while (cur >= 0 && steps < kDisconnectedDistance) {
    cur = parent_[static_cast<size_t>(cur)];
    if (cur == outer_tag) return true;
    ++steps;
  }
  return false;
}

bool ConstraintContext::AreSiblings(int a, int b) const {
  if (a == b) return false;
  int pa = parent_[static_cast<size_t>(a)];
  int pb = parent_[static_cast<size_t>(b)];
  return pa >= 0 && pa == pb;
}

std::vector<int> ConstraintContext::TagsBetween(int a, int b) const {
  std::vector<int> out;
  if (!AreSiblings(a, b)) return out;
  int parent = parent_[static_cast<size_t>(a)];
  int ra = sibling_rank_[static_cast<size_t>(a)];
  int rb = sibling_rank_[static_cast<size_t>(b)];
  if (ra > rb) std::swap(ra, rb);
  for (size_t i = 0; i < tags_.size(); ++i) {
    if (parent_[i] == parent && sibling_rank_[i] > ra &&
        sibling_rank_[i] < rb) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

int ConstraintContext::TreeDistance(int a, int b) const {
  if (a == b) return 0;
  // Walk both chains to the root, find the lowest common ancestor.
  std::vector<int> chain_a;
  int cur = a;
  while (cur >= 0) {
    chain_a.push_back(cur);
    cur = parent_[static_cast<size_t>(cur)];
    if (chain_a.size() > tags_.size()) break;  // cycle guard
  }
  int dist_b = 0;
  cur = b;
  while (cur >= 0) {
    auto it = std::find(chain_a.begin(), chain_a.end(), cur);
    if (it != chain_a.end()) {
      return dist_b + static_cast<int>(it - chain_a.begin());
    }
    cur = parent_[static_cast<size_t>(cur)];
    ++dist_b;
    if (dist_b > static_cast<int>(tags_.size())) break;
  }
  return kDisconnectedDistance;
}

const std::vector<std::pair<int, std::string>>& ConstraintContext::ValuesOf(
    int tag) const {
  return values_[static_cast<size_t>(tag)];
}

bool ConstraintContext::ColumnLooksLikeKey(int tag) const {
  if (columns_ == nullptr) return true;
  if (key_cache_.empty()) key_cache_.assign(tags_.size(), -1);
  int8_t& cached = key_cache_[static_cast<size_t>(tag)];
  if (cached >= 0) return cached != 0;
  const auto& values = values_[static_cast<size_t>(tag)];
  std::set<std::string> seen;
  bool is_key = true;
  for (const auto& [listing, value] : values) {
    if (!seen.insert(value).second) {
      is_key = false;
      break;
    }
  }
  cached = is_key ? 1 : 0;
  return is_key;
}

bool ConstraintContext::FunctionalDependencyHolds(int a, int b, int c) const {
  if (columns_ == nullptr) return true;
  auto key = std::make_tuple(a, b, c);
  auto it = fd_cache_.find(key);
  if (it != fd_cache_.end()) return it->second;
  bool holds = ComputeFunctionalDependency(a, b, c);
  fd_cache_.emplace(key, holds);
  return holds;
}

bool ConstraintContext::ComputeFunctionalDependency(int a, int b, int c) const {
  // Align values by listing index, taking the first instance per listing.
  auto by_listing = [](const std::vector<std::pair<int, std::string>>& values) {
    std::map<int, std::string> out;
    for (const auto& [listing, value] : values) {
      out.emplace(listing, value);  // keeps the first
    }
    return out;
  };
  std::map<int, std::string> va = by_listing(ValuesOf(a));
  std::map<int, std::string> vb = by_listing(ValuesOf(b));
  std::map<int, std::string> vc = by_listing(ValuesOf(c));
  std::map<std::pair<std::string, std::string>, std::string> determined;
  for (const auto& [listing, value_a] : va) {
    auto itb = vb.find(listing);
    auto itc = vc.find(listing);
    if (itb == vb.end() || itc == vc.end()) continue;
    auto key = std::make_pair(value_a, itb->second);
    auto [it, inserted] = determined.emplace(key, itc->second);
    if (!inserted && it->second != itc->second) return false;
  }
  return true;
}

double Constraint::DeltaCost(int tag, int label, const SearchState& state,
                             const LabelSpace& labels,
                             const ConstraintContext& context) const {
  // Conservative fallback: two full evaluations. Callers guarantee the
  // state itself is feasible (finite cost), so `after - before` is well
  // defined. Hard constraints only ever move 0 -> inf, so their finite
  // delta is always 0 and the `before` evaluation can be skipped.
  Assignment extended = state.assignment();
  extended.labels[static_cast<size_t>(tag)] = label;
  double after = Cost(extended, labels, context);
  if (after == kInfiniteCost) return kInfiniteCost;
  if (IsHard()) return 0.0;
  return after - Cost(state.assignment(), labels, context);
}

double ConstraintSet::TotalCost(const Assignment& assignment,
                                const LabelSpace& labels,
                                const ConstraintContext& context) const {
  double total = 0.0;
  for (const auto& constraint : constraints_) {
    double cost = constraint->Cost(assignment, labels, context);
    if (cost == kInfiniteCost) return kInfiniteCost;
    total += cost;
  }
  return total;
}

std::vector<const Constraint*> ConstraintSet::All() const {
  std::vector<const Constraint*> out;
  out.reserve(constraints_.size());
  for (const auto& constraint : constraints_) out.push_back(constraint.get());
  return out;
}

std::vector<const Constraint*> ConstraintSet::HardConstraints() const {
  std::vector<const Constraint*> out;
  for (const auto& constraint : constraints_) {
    if (constraint->IsHard()) out.push_back(constraint.get());
  }
  return out;
}

std::vector<const Constraint*> ConstraintSet::SoftConstraints() const {
  std::vector<const Constraint*> out;
  for (const auto& constraint : constraints_) {
    if (!constraint->IsHard()) out.push_back(constraint.get());
  }
  return out;
}

// ---------------------------------------------------------------------------
// FrequencyConstraint
// ---------------------------------------------------------------------------

std::string FrequencyConstraint::Describe() const {
  return StrFormat("between %zu and %zu source elements match %s", min_count_,
                   max_count_, label_.c_str());
}

std::string FrequencyConstraint::ToConfigLine() const {
  return StrFormat("frequency %s %zu %zu", label_.c_str(), min_count_,
                   max_count_);
}

double FrequencyConstraint::Cost(const Assignment& assignment,
                                 const LabelSpace& labels,
                                 const ConstraintContext& context) const {
  (void)context;
  int label = labels.IndexOf(label_);
  if (label < 0) return 0.0;
  size_t count = 0;
  size_t unassigned = 0;
  for (int l : assignment.labels) {
    if (l == Assignment::kUnassigned) {
      ++unassigned;
    } else if (l == label) {
      ++count;
    }
  }
  if (count > max_count_) return kInfiniteCost;
  if (count + unassigned < min_count_) return kInfiniteCost;
  return 0.0;
}

double FrequencyConstraint::DeltaCost(int tag, int label,
                                      const SearchState& state,
                                      const LabelSpace& labels,
                                      const ConstraintContext& context) const {
  (void)tag;
  (void)context;
  int target = labels.IndexOf(label_);
  if (target < 0) return 0.0;
  size_t count_after = state.CountOf(target) + (label == target ? 1 : 0);
  size_t unassigned_after = state.unassigned_count() - 1;
  if (count_after > max_count_) return kInfiniteCost;
  // Even an unrelated assignment shrinks the pool of tags that could
  // still satisfy a minimum count.
  if (count_after + unassigned_after < min_count_) return kInfiniteCost;
  return 0.0;
}

// ---------------------------------------------------------------------------
// NestingConstraint
// ---------------------------------------------------------------------------

std::string NestingConstraint::Describe() const {
  return StrFormat("elements matching %s %s be nested in elements matching %s",
                   inner_label_.c_str(), required_ ? "must" : "must not",
                   outer_label_.c_str());
}

std::string NestingConstraint::ToConfigLine() const {
  return StrFormat("nesting %s %s %s", outer_label_.c_str(),
                   inner_label_.c_str(), required_ ? "required" : "forbidden");
}

double NestingConstraint::Cost(const Assignment& assignment,
                               const LabelSpace& labels,
                               const ConstraintContext& context) const {
  int outer = labels.IndexOf(outer_label_);
  int inner = labels.IndexOf(inner_label_);
  if (outer < 0 || inner < 0) return 0.0;
  // Collect matched tags first: one linear scan, then (tiny) pair checks.
  std::vector<size_t> outers, inners;
  for (size_t i = 0; i < assignment.labels.size(); ++i) {
    if (assignment.labels[i] == outer) outers.push_back(i);
    if (assignment.labels[i] == inner) inners.push_back(i);
  }
  for (size_t i : outers) {
    for (size_t j : inners) {
      if (i == j) continue;
      bool nested = context.IsNestedIn(static_cast<int>(j), static_cast<int>(i));
      if (required_ && !nested) return kInfiniteCost;
      if (!required_ && nested) return kInfiniteCost;
    }
  }
  return 0.0;
}

double NestingConstraint::DeltaCost(int tag, int label,
                                    const SearchState& state,
                                    const LabelSpace& labels,
                                    const ConstraintContext& context) const {
  int outer = labels.IndexOf(outer_label_);
  int inner = labels.IndexOf(inner_label_);
  if (outer < 0 || inner < 0) return 0.0;
  // Only pairs involving the newly assigned tag can newly violate.
  if (label == outer) {
    for (int j : state.TagsWith(inner)) {
      if (j == tag) continue;
      bool nested = context.IsNestedIn(j, tag);
      if (required_ != nested) return kInfiniteCost;
    }
  }
  if (label == inner) {
    for (int i : state.TagsWith(outer)) {
      if (i == tag) continue;
      bool nested = context.IsNestedIn(tag, i);
      if (required_ != nested) return kInfiniteCost;
    }
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// ContiguityConstraint
// ---------------------------------------------------------------------------

std::string ContiguityConstraint::Describe() const {
  return StrFormat(
      "elements matching %s and %s must be siblings with only OTHER between",
      label_a_.c_str(), label_b_.c_str());
}

std::string ContiguityConstraint::ToConfigLine() const {
  return StrFormat("contiguity %s %s", label_a_.c_str(), label_b_.c_str());
}

double ContiguityConstraint::Cost(const Assignment& assignment,
                                  const LabelSpace& labels,
                                  const ConstraintContext& context) const {
  int la = labels.IndexOf(label_a_);
  int lb = labels.IndexOf(label_b_);
  if (la < 0 || lb < 0) return 0.0;
  int other = labels.other_index();
  std::vector<size_t> as, bs;
  for (size_t i = 0; i < assignment.labels.size(); ++i) {
    if (assignment.labels[i] == la) as.push_back(i);
    if (assignment.labels[i] == lb) bs.push_back(i);
  }
  for (size_t i : as) {
    for (size_t j : bs) {
      if (!context.AreSiblings(static_cast<int>(i), static_cast<int>(j))) {
        return kInfiniteCost;
      }
      for (int between : context.TagsBetween(static_cast<int>(i),
                                             static_cast<int>(j))) {
        int l = assignment.labels[static_cast<size_t>(between)];
        if (l != Assignment::kUnassigned && l != other) return kInfiniteCost;
      }
    }
  }
  return 0.0;
}

double ContiguityConstraint::DeltaCost(int tag, int label,
                                       const SearchState& state,
                                       const LabelSpace& labels,
                                       const ConstraintContext& context) const {
  int la = labels.IndexOf(label_a_);
  int lb = labels.IndexOf(label_b_);
  if (la < 0 || lb < 0) return 0.0;
  int other = labels.other_index();
  const std::vector<int>& as = state.TagsWith(la);
  const std::vector<int>& bs = state.TagsWith(lb);
  // A pair (a_tag, b_tag) read against the *extended* assignment.
  auto pair_violated = [&](int a_tag, int b_tag) {
    if (!context.AreSiblings(a_tag, b_tag)) return true;
    for (int between : context.TagsBetween(a_tag, b_tag)) {
      int l = between == tag
                  ? label
                  : state.assignment().labels[static_cast<size_t>(between)];
      if (l != Assignment::kUnassigned && l != other) return true;
    }
    return false;
  };
  // New pairs where the new tag is an endpoint. Mirrors Cost's full
  // cross product: with label_a == label_b the degenerate (tag, tag)
  // pair is checked too (and fails, since a tag is not its own sibling).
  if (label == la) {
    if (label == lb && pair_violated(tag, tag)) return kInfiniteCost;
    for (int b : bs) {
      if (pair_violated(tag, b)) return kInfiniteCost;
    }
  }
  if (label == lb) {
    for (int a : as) {
      if (pair_violated(a, tag)) return kInfiniteCost;
    }
  }
  // The new tag may land *between* an existing pair with a non-OTHER
  // label, violating a pair that was previously fine.
  if (label != other) {
    for (int a : as) {
      for (int b : bs) {
        for (int between : context.TagsBetween(a, b)) {
          if (between == tag) return kInfiniteCost;
        }
      }
    }
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// ExclusivityConstraint
// ---------------------------------------------------------------------------

std::string ExclusivityConstraint::Describe() const {
  return StrFormat("%s and %s cannot both be matched", label_a_.c_str(),
                   label_b_.c_str());
}

std::string ExclusivityConstraint::ToConfigLine() const {
  return StrFormat("exclusivity %s %s", label_a_.c_str(), label_b_.c_str());
}

double ExclusivityConstraint::Cost(const Assignment& assignment,
                                   const LabelSpace& labels,
                                   const ConstraintContext& context) const {
  (void)context;
  int la = labels.IndexOf(label_a_);
  int lb = labels.IndexOf(label_b_);
  if (la < 0 || lb < 0) return 0.0;
  bool has_a = false, has_b = false;
  for (int l : assignment.labels) {
    if (l == la) has_a = true;
    if (l == lb) has_b = true;
  }
  return (has_a && has_b) ? kInfiniteCost : 0.0;
}

double ExclusivityConstraint::DeltaCost(int tag, int label,
                                        const SearchState& state,
                                        const LabelSpace& labels,
                                        const ConstraintContext& context) const {
  (void)tag;
  (void)context;
  int la = labels.IndexOf(label_a_);
  int lb = labels.IndexOf(label_b_);
  if (la < 0 || lb < 0) return 0.0;
  bool has_a = label == la || state.CountOf(la) > 0;
  bool has_b = label == lb || state.CountOf(lb) > 0;
  return (has_a && has_b) ? kInfiniteCost : 0.0;
}

// ---------------------------------------------------------------------------
// KeyConstraint
// ---------------------------------------------------------------------------

std::string KeyConstraint::Describe() const {
  return StrFormat("the element matching %s must be a key", label_.c_str());
}

std::string KeyConstraint::ToConfigLine() const {
  return StrFormat("key %s", label_.c_str());
}

double KeyConstraint::Cost(const Assignment& assignment,
                           const LabelSpace& labels,
                           const ConstraintContext& context) const {
  int label = labels.IndexOf(label_);
  if (label < 0) return 0.0;
  for (size_t i = 0; i < assignment.labels.size(); ++i) {
    if (assignment.labels[i] == label &&
        !context.ColumnLooksLikeKey(static_cast<int>(i))) {
      return kInfiniteCost;
    }
  }
  return 0.0;
}

double KeyConstraint::DeltaCost(int tag, int label, const SearchState& state,
                                const LabelSpace& labels,
                                const ConstraintContext& context) const {
  (void)state;
  int target = labels.IndexOf(label_);
  if (target < 0 || label != target) return 0.0;
  return context.ColumnLooksLikeKey(tag) ? 0.0 : kInfiniteCost;
}

// ---------------------------------------------------------------------------
// FunctionalDependencyConstraint
// ---------------------------------------------------------------------------

std::string FunctionalDependencyConstraint::Describe() const {
  return StrFormat("%s, %s functionally determine %s", label_a_.c_str(),
                   label_b_.c_str(), label_c_.c_str());
}

std::string FunctionalDependencyConstraint::ToConfigLine() const {
  return StrFormat("fd %s %s %s", label_a_.c_str(), label_b_.c_str(),
                   label_c_.c_str());
}

double FunctionalDependencyConstraint::Cost(
    const Assignment& assignment, const LabelSpace& labels,
    const ConstraintContext& context) const {
  int la = labels.IndexOf(label_a_);
  int lb = labels.IndexOf(label_b_);
  int lc = labels.IndexOf(label_c_);
  if (la < 0 || lb < 0 || lc < 0) return 0.0;
  std::vector<size_t> as, bs, cs;
  for (size_t i = 0; i < assignment.labels.size(); ++i) {
    if (assignment.labels[i] == la) as.push_back(i);
    if (assignment.labels[i] == lb) bs.push_back(i);
    if (assignment.labels[i] == lc) cs.push_back(i);
  }
  for (size_t i : as) {
    for (size_t j : bs) {
      for (size_t k : cs) {
        if (!context.FunctionalDependencyHolds(static_cast<int>(i),
                                               static_cast<int>(j),
                                               static_cast<int>(k))) {
          return kInfiniteCost;
        }
      }
    }
  }
  return 0.0;
}

double FunctionalDependencyConstraint::DeltaCost(
    int tag, int label, const SearchState& state, const LabelSpace& labels,
    const ConstraintContext& context) const {
  int la = labels.IndexOf(label_a_);
  int lb = labels.IndexOf(label_b_);
  int lc = labels.IndexOf(label_c_);
  if (la < 0 || lb < 0 || lc < 0) return 0.0;
  if (label != la && label != lb && label != lc) return 0.0;
  // Enumerate the extended role sets but keep only triples the new tag
  // participates in — everything else was checked when `state` was built.
  auto extended = [&](int role_label) {
    std::vector<int> out = state.TagsWith(role_label);
    if (label == role_label) out.push_back(tag);
    return out;
  };
  std::vector<int> as = extended(la);
  std::vector<int> bs = extended(lb);
  std::vector<int> cs = extended(lc);
  for (int i : as) {
    for (int j : bs) {
      for (int k : cs) {
        if (i != tag && j != tag && k != tag) continue;
        if (!context.FunctionalDependencyHolds(i, j, k)) return kInfiniteCost;
      }
    }
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// CountLimitSoftConstraint
// ---------------------------------------------------------------------------

std::string CountLimitSoftConstraint::Describe() const {
  return StrFormat("prefer at most %zu elements matching %s", max_count_,
                   label_.c_str());
}

std::string CountLimitSoftConstraint::ToConfigLine() const {
  return StrFormat("count-limit %s %zu %g", label_.c_str(), max_count_,
                   weight_);
}

double CountLimitSoftConstraint::Cost(const Assignment& assignment,
                                      const LabelSpace& labels,
                                      const ConstraintContext& context) const {
  (void)context;
  int label = labels.IndexOf(label_);
  if (label < 0) return 0.0;
  size_t count = 0;
  for (int l : assignment.labels) {
    if (l == label) ++count;
  }
  if (count <= max_count_) return 0.0;
  return weight_ * static_cast<double>(count - max_count_);
}

double CountLimitSoftConstraint::DeltaCost(
    int tag, int label, const SearchState& state, const LabelSpace& labels,
    const ConstraintContext& context) const {
  (void)tag;
  (void)context;
  int target = labels.IndexOf(label_);
  if (target < 0 || label != target) return 0.0;
  size_t count = state.CountOf(target);
  size_t count_after = count + 1;
  if (count_after <= max_count_) return 0.0;
  double before =
      count > max_count_ ? weight_ * static_cast<double>(count - max_count_)
                         : 0.0;
  return weight_ * static_cast<double>(count_after - max_count_) - before;
}

// ---------------------------------------------------------------------------
// ProximitySoftConstraint
// ---------------------------------------------------------------------------

std::string ProximitySoftConstraint::Describe() const {
  return StrFormat("prefer elements matching %s and %s to be close",
                   label_a_.c_str(), label_b_.c_str());
}

std::string ProximitySoftConstraint::ToConfigLine() const {
  return StrFormat("proximity %s %s %g", label_a_.c_str(), label_b_.c_str(),
                   weight_);
}

double ProximitySoftConstraint::Cost(const Assignment& assignment,
                                     const LabelSpace& labels,
                                     const ConstraintContext& context) const {
  int la = labels.IndexOf(label_a_);
  int lb = labels.IndexOf(label_b_);
  if (la < 0 || lb < 0) return 0.0;
  double total = 0.0;
  std::vector<size_t> as, bs;
  for (size_t i = 0; i < assignment.labels.size(); ++i) {
    if (assignment.labels[i] == la) as.push_back(i);
    if (assignment.labels[i] == lb) bs.push_back(i);
  }
  for (size_t i : as) {
    for (size_t j : bs) {
      int distance =
          context.TreeDistance(static_cast<int>(i), static_cast<int>(j));
      // Siblings sit at distance 2; anything closer is impossible for
      // distinct leaves, anything farther accrues cost.
      if (distance > 2) total += weight_ * static_cast<double>(distance - 2);
    }
  }
  return total;
}

double ProximitySoftConstraint::DeltaCost(
    int tag, int label, const SearchState& state, const LabelSpace& labels,
    const ConstraintContext& context) const {
  int la = labels.IndexOf(label_a_);
  int lb = labels.IndexOf(label_b_);
  if (la < 0 || lb < 0) return 0.0;
  double delta = 0.0;
  // New pairs with the new tag as either endpoint; when the labels
  // coincide both orderings accrue, matching Cost's cross product. The
  // degenerate (tag, tag) pair has distance 0 and contributes nothing.
  if (label == la) {
    for (int j : state.TagsWith(lb)) {
      int distance = context.TreeDistance(tag, j);
      if (distance > 2) delta += weight_ * static_cast<double>(distance - 2);
    }
  }
  if (label == lb) {
    for (int i : state.TagsWith(la)) {
      int distance = context.TreeDistance(i, tag);
      if (distance > 2) delta += weight_ * static_cast<double>(distance - 2);
    }
  }
  return delta;
}

// ---------------------------------------------------------------------------
// FeedbackConstraint
// ---------------------------------------------------------------------------

std::string FeedbackConstraint::Describe() const {
  return StrFormat("%s %s match %s", tag_.c_str(),
                   must_equal_ ? "must" : "must not", label_.c_str());
}

double FeedbackConstraint::Cost(const Assignment& assignment,
                                const LabelSpace& labels,
                                const ConstraintContext& context) const {
  int tag = context.TagIndex(tag_);
  int label = labels.IndexOf(label_);
  if (tag < 0) return 0.0;
  if (label < 0) return must_equal_ ? kInfiniteCost : 0.0;
  int assigned = assignment.labels[static_cast<size_t>(tag)];
  if (assigned == Assignment::kUnassigned) return 0.0;
  if (must_equal_ && assigned != label) return kInfiniteCost;
  if (!must_equal_ && assigned == label) return kInfiniteCost;
  return 0.0;
}

double FeedbackConstraint::DeltaCost(int tag, int label,
                                     const SearchState& state,
                                     const LabelSpace& labels,
                                     const ConstraintContext& context) const {
  (void)state;
  int my_tag = context.TagIndex(tag_);
  int target = labels.IndexOf(label_);
  if (my_tag < 0) return 0.0;
  // A must-equal on a label absent from the space is unsatisfiable no
  // matter what gets assigned (mirrors Cost).
  if (target < 0) return must_equal_ ? kInfiniteCost : 0.0;
  if (tag != my_tag) return 0.0;
  if (must_equal_ && label != target) return kInfiniteCost;
  if (!must_equal_ && label == target) return kInfiniteCost;
  return 0.0;
}

}  // namespace lsd
