#ifndef LSD_CONSTRAINTS_HANDLER_H_
#define LSD_CONSTRAINTS_HANDLER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "constraints/astar_searcher.h"
#include "constraints/constraint.h"
#include "ml/prediction.h"
#include "schema/schema.h"

namespace lsd {

/// Output of the constraint handler: the chosen 1-1 mapping and search
/// diagnostics.
struct HandlerResult {
  Mapping mapping;
  double cost = 0.0;
  size_t expanded = 0;
  bool truncated = false;
  /// True when the search deadline expired and the mapping is the greedy
  /// anytime completion.
  bool deadline_hit = false;
};

/// The constraint handler of Section 4.2: takes the prediction converter's
/// per-tag distributions plus the domain constraints (and any user-feedback
/// constraints) and emits the least-cost 1-1 mapping via A* search. With
/// no constraints it reduces to per-tag argmax, exactly as the paper
/// specifies.
class ConstraintHandler {
 public:
  explicit ConstraintHandler(AStarOptions options = AStarOptions())
      : searcher_(options) {}

  /// Computes the mapping for the target source.
  ///   predictions[i] corresponds to context.tags()[i].
  ///   domain     — the domain's standing constraints (borrowed; must
  ///                outlive the call);
  ///   feedback   — per-source user feedback constraints (may be empty);
  ///   deadline   — anytime search budget; on expiry the result is the
  ///                greedy constraint-respecting mapping, never an error.
  StatusOr<HandlerResult> ComputeMapping(
      const std::vector<Prediction>& predictions,
      const std::vector<const Constraint*>& domain,
      const std::vector<FeedbackConstraint>& feedback, const LabelSpace& labels,
      const ConstraintContext& context,
      const Deadline& deadline = Deadline()) const;

 private:
  AStarSearcher searcher_;
};

/// Per-tag argmax mapping — the "no constraints" baseline of Section 3.2
/// step 3 and the handler-lesion configuration of Section 6.2.
StatusOr<Mapping> ArgmaxMapping(const std::vector<Prediction>& predictions,
                                const LabelSpace& labels,
                                const ConstraintContext& context);

}  // namespace lsd

#endif  // LSD_CONSTRAINTS_HANDLER_H_
