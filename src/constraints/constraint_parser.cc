#include "constraints/constraint_parser.h"

#include <cstdlib>

#include "common/strings.h"

namespace lsd {
namespace {

Status LineError(size_t line, const std::string& what) {
  return Status::ParseError(
      StrFormat("constraint line %zu: %s", line, what.c_str()));
}

bool ParseSize(const std::string& token, size_t* out) {
  if (!IsAllDigits(token)) return false;
  *out = static_cast<size_t>(std::strtoull(token.c_str(), nullptr, 10));
  return true;
}

}  // namespace

StatusOr<std::vector<std::unique_ptr<Constraint>>> ParseConstraints(
    std::string_view text) {
  std::vector<std::unique_ptr<Constraint>> out;
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string> tokens = SplitAny(line, " \t");
    const std::string& kind = tokens[0];

    if (kind == "frequency") {
      size_t min_count, max_count;
      if (tokens.size() != 4 || !ParseSize(tokens[2], &min_count) ||
          !ParseSize(tokens[3], &max_count)) {
        return LineError(line_number, "expected: frequency LABEL MIN MAX");
      }
      if (min_count > max_count) {
        return LineError(line_number, "MIN exceeds MAX");
      }
      out.push_back(std::make_unique<FrequencyConstraint>(tokens[1], min_count,
                                                          max_count));
    } else if (kind == "nesting") {
      if (tokens.size() != 4 ||
          (tokens[3] != "required" && tokens[3] != "forbidden")) {
        return LineError(line_number,
                         "expected: nesting OUTER INNER required|forbidden");
      }
      out.push_back(std::make_unique<NestingConstraint>(
          tokens[1], tokens[2], tokens[3] == "required"));
    } else if (kind == "contiguity") {
      if (tokens.size() != 3) {
        return LineError(line_number, "expected: contiguity A B");
      }
      out.push_back(
          std::make_unique<ContiguityConstraint>(tokens[1], tokens[2]));
    } else if (kind == "exclusivity") {
      if (tokens.size() != 3) {
        return LineError(line_number, "expected: exclusivity A B");
      }
      out.push_back(
          std::make_unique<ExclusivityConstraint>(tokens[1], tokens[2]));
    } else if (kind == "key") {
      if (tokens.size() != 2) {
        return LineError(line_number, "expected: key LABEL");
      }
      out.push_back(std::make_unique<KeyConstraint>(tokens[1]));
    } else if (kind == "fd") {
      if (tokens.size() != 4) {
        return LineError(line_number, "expected: fd A B C");
      }
      out.push_back(std::make_unique<FunctionalDependencyConstraint>(
          tokens[1], tokens[2], tokens[3]));
    } else if (kind == "count-limit") {
      size_t max_count;
      double weight;
      if (tokens.size() != 4 || !ParseSize(tokens[2], &max_count) ||
          !ParseDouble(tokens[3], &weight)) {
        return LineError(line_number,
                         "expected: count-limit LABEL MAX WEIGHT");
      }
      out.push_back(std::make_unique<CountLimitSoftConstraint>(
          tokens[1], max_count, weight));
    } else if (kind == "proximity") {
      double weight;
      if (tokens.size() != 4 || !ParseDouble(tokens[3], &weight)) {
        return LineError(line_number, "expected: proximity A B WEIGHT");
      }
      out.push_back(std::make_unique<ProximitySoftConstraint>(
          tokens[1], tokens[2], weight));
    } else {
      return LineError(line_number, "unknown constraint kind '" + kind + "'");
    }
  }
  return out;
}

}  // namespace lsd
