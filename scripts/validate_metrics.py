#!/usr/bin/env python3
"""Validates a --metrics-out snapshot against scripts/metrics_schema.json.

Usage: validate_metrics.py [--profile NAME] METRICS_JSON [SCHEMA_JSON]

Checks that the snapshot is well-formed (the three sections with the value
shapes metrics.cc emits) and that every name the schema requires is
present. With --profile NAME the requirement lists come from the schema's
"profiles" entry of that name instead of the top level — e.g.
`--profile service` checks an lsd_serve snapshot for the service.*
counters rather than the full-pipeline set. Exits nonzero with one line
per problem. Stdlib only.
"""

import json
import os
import sys


def fail(errors):
    for error in errors:
        print("validate_metrics: " + error, file=sys.stderr)
    return 1


def main(argv):
    profile = None
    args = list(argv[1:])
    if args and args[0] == "--profile":
        if len(args) < 2:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        profile = args[1]
        args = args[2:]
    if len(args) < 1 or len(args) > 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    metrics_path = args[0]
    schema_path = (
        args[1]
        if len(args) == 2
        else os.path.join(os.path.dirname(argv[0]), "metrics_schema.json")
    )
    with open(metrics_path, encoding="utf-8") as f:
        snapshot = json.load(f)
    with open(schema_path, encoding="utf-8") as f:
        schema = json.load(f)
    if profile is not None:
        profiles = schema.get("profiles", {})
        if profile not in profiles:
            return fail(["unknown profile: " + profile])
        schema = profiles[profile]

    errors = []

    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            errors.append("missing or non-object section: " + section)
    if errors:
        return fail(errors)

    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    histograms = snapshot["histograms"]

    for name, value in list(counters.items()) + list(gauges.items()):
        if not isinstance(value, int) or value < 0:
            errors.append("non-negative integer expected: %s=%r" % (name, value))
    for name, value in histograms.items():
        if not isinstance(value, dict):
            errors.append("histogram is not an object: " + name)
            continue
        for key in ("count", "sum", "max", "buckets"):
            if key not in value:
                errors.append("histogram %s lacks %r" % (name, key))
        if isinstance(value.get("buckets"), list):
            total = sum(b for b in value["buckets"] if isinstance(b, int))
            if total != value.get("count"):
                errors.append(
                    "histogram %s: bucket total %d != count %r"
                    % (name, total, value.get("count"))
                )

    for name in schema.get("required_counters", []):
        if name not in counters:
            errors.append("required counter absent: " + name)
    for name in schema.get("required_gauges", []):
        if name not in gauges:
            errors.append("required gauge absent: " + name)
    for name in schema.get("required_histograms", []):
        if name not in histograms:
            errors.append("required histogram absent: " + name)
    for prefix in schema.get("required_histogram_prefixes", []):
        if not any(name.startswith(prefix) for name in histograms):
            errors.append("no histogram with required prefix: " + prefix)

    if errors:
        return fail(errors)
    print(
        "validate_metrics: OK (%d counters, %d gauges, %d histograms)"
        % (len(counters), len(gauges), len(histograms))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
