#!/usr/bin/env bash
# Full verification sweep: plain build + tests, then the same tree under
# AddressSanitizer + UndefinedBehaviorSanitizer. Usage:
#
#   scripts/check.sh [JOBS]
#
# Exits nonzero on the first failing step. The sanitizer tree lives in
# build-asan/ so it never disturbs the primary build/.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

echo "== plain build =="
cmake -S . -B build >/dev/null
cmake --build build -j "$JOBS"

echo "== plain tests =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== ASan/UBSan build =="
cmake -S . -B build-asan -DLSD_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS"

echo "== ASan/UBSan tests =="
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "check.sh: all green"
