#!/usr/bin/env bash
# Full verification sweep: plain build + tests, the same tree under
# AddressSanitizer + UndefinedBehaviorSanitizer, a ThreadSanitizer pass
# over the threaded metrics/runtime tests, and a bench_match smoke run
# whose emitted metrics JSON is validated against the checked-in schema.
# Usage:
#
#   scripts/check.sh [JOBS]
#
# Exits nonzero on the first failing step. Sanitizer trees live in
# build-asan/ and build-tsan/ so they never disturb the primary build/.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

echo "== plain build =="
cmake -S . -B build >/dev/null
cmake --build build -j "$JOBS"

echo "== plain tests =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== ASan/UBSan build =="
cmake -S . -B build-asan -DLSD_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS"

echo "== ASan/UBSan tests =="
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== TSan build =="
cmake -S . -B build-tsan -DLSD_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "$JOBS" --target metrics_test parallel_test

echo "== TSan tests (threaded metrics + runtime) =="
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'MetricsTest|TraceTest|ThreadPool|Parallel'

echo "== bench_match smoke (metrics schema) =="
cmake --build build -j "$JOBS" --target bench_match
METRICS_TMP="$(mktemp)"
trap 'rm -f "$METRICS_TMP"' EXIT
./build/bench/bench_match --quick --out= --metrics-out="$METRICS_TMP"
if command -v python3 >/dev/null 2>&1; then
    python3 scripts/validate_metrics.py "$METRICS_TMP"
else
    echo "python3 unavailable; skipping metrics JSON validation"
fi

echo "check.sh: all green"
