#!/usr/bin/env bash
# Full verification sweep: plain build + tests, the same tree under
# AddressSanitizer + UndefinedBehaviorSanitizer, a ThreadSanitizer pass
# over the threaded metrics/runtime/network tests plus the loopback soak,
# an ASan loopback transport smoke (lsd_serve --listen + concurrent
# lsd_clients, net.* metrics validated), a bench_match smoke run whose
# emitted metrics JSON is validated against the checked-in schema, and a
# constraint-search perf-regression smoke (real-estate-2 must stay
# optimally solvable under the expansion ceiling; validate_bench.py).
# Usage:
#
#   scripts/check.sh [JOBS]
#
# Exits nonzero on the first failing step. Sanitizer trees live in
# build-asan/ and build-tsan/ so they never disturb the primary build/.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

echo "== plain build =="
cmake -S . -B build >/dev/null
cmake --build build -j "$JOBS"

echo "== plain tests =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== ASan/UBSan build =="
cmake -S . -B build-asan -DLSD_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS"

echo "== ASan/UBSan tests =="
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== crash-recovery fuzz (ASan/UBSan loader) =="
if command -v python3 >/dev/null 2>&1; then
    cmake --build build-asan -j "$JOBS" --target lsd_generate lsd_match
    FUZZ_DIR="$(mktemp -d)"
    trap 'rm -rf "${FUZZ_DIR:-}"; rm -f "${METRICS_TMP:-}"' EXIT
    ./build-asan/tools/lsd_generate --domain real-estate-1 \
        --out "$FUZZ_DIR" --listings 30 --seed 7 >/dev/null
    MATCH_ARGS=(--mediated "$FUZZ_DIR/mediated.dtd"
                --target "$FUZZ_DIR/source-4.dtd" "$FUZZ_DIR/source-4.xml")
    ./build-asan/tools/lsd_match "${MATCH_ARGS[@]}" \
        --train "$FUZZ_DIR/source-0.dtd" "$FUZZ_DIR/source-0.xml" \
                "$FUZZ_DIR/source-0.mapping" \
        --train "$FUZZ_DIR/source-1.dtd" "$FUZZ_DIR/source-1.xml" \
                "$FUZZ_DIR/source-1.mapping" \
        --save-model "$FUZZ_DIR/model" >/dev/null
    # Each seeded corruption of the model must yield a *classified* outcome
    # from the sanitizer-instrumented loader: clean load (0), hard failure
    # (1), degraded (2), or last-good recovery (3) -- never a crash.
    for mode in truncate bitflip; do
        for seed in 1 2 3 4 5 6 7 8; do
            python3 scripts/corrupt_artifact.py "$FUZZ_DIR/model" \
                --mode "$mode" --seed "$seed" \
                --out "$FUZZ_DIR/corrupt.model" >/dev/null
            rc=0
            ./build-asan/tools/lsd_match "${MATCH_ARGS[@]}" \
                --load-model "$FUZZ_DIR/corrupt.model" \
                >/dev/null 2>&1 || rc=$?
            if [ "$rc" -gt 3 ]; then
                echo "crash-recovery fuzz: $mode seed=$seed exited $rc" >&2
                exit 1
            fi
        done
        # With a last-good generation beside it, every corruption of the
        # primary must recover (exit 3) or load clean (exit 0).
        cp "$FUZZ_DIR/model" "$FUZZ_DIR/corrupt.model.lastgood"
        for seed in 1 2 3 4; do
            python3 scripts/corrupt_artifact.py "$FUZZ_DIR/model" \
                --mode "$mode" --seed "$seed" \
                --out "$FUZZ_DIR/corrupt.model" >/dev/null
            rc=0
            ./build-asan/tools/lsd_match "${MATCH_ARGS[@]}" \
                --load-model "$FUZZ_DIR/corrupt.model" \
                >/dev/null 2>&1 || rc=$?
            if [ "$rc" -ne 0 ] && [ "$rc" -ne 3 ]; then
                echo "crash-recovery fuzz: $mode seed=$seed with last-good" \
                     "exited $rc (want 0 or 3)" >&2
                exit 1
            fi
        done
        rm -f "$FUZZ_DIR/corrupt.model.lastgood"
    done
else
    echo "python3 unavailable; skipping crash-recovery fuzz"
fi

echo "== TSan build =="
cmake -S . -B build-tsan -DLSD_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "$JOBS" --target metrics_test parallel_test \
    pred_cache_test service_test service_soak net_test

echo "== TSan tests (threaded metrics + runtime + model lifecycle + net) =="
# The ServiceTest filter pins the hot-reload machinery (shadow validation,
# epoch swap, probation rollback) and the Submit/Stop race under TSan; the
# Net filters put the epoll I/O thread, the response router, and the
# worker-thread response callbacks under it.
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'MetricsTest|TraceTest|ThreadPool|Parallel|PredCache|ServiceTest.Reload|ServiceTest.Shadow|ServiceTest.Probation|ServiceTest.Swap|ServiceTest.Concurrent|NetLoopbackTest|NetFrameDecoderTest'

echo "== TSan loopback soak (concurrent clients + mid-flight reloads) =="
./build-tsan/tests/net_test --gtest_filter='NetSoakTest.*' \
    --gtest_also_run_disabled_tests

echo "== TSan service chaos soak =="
# The full service stack — queue, workers, admission, retries, breakers,
# hot reload and rollback — under ThreadSanitizer, with outputs
# byte-compared across worker counts.
./build-tsan/tests/service_soak --quick

echo "== TSan reload-under-load smoke (lsd_serve RELOAD) =="
# End-to-end hot swap through the CLI under ThreadSanitizer: requests in
# flight on both sides of a RELOAD directive, golden-gated through the
# on-disk registry. Training is deterministic, so the re-loaded model is
# byte-identical to the serving baseline and the swap must be adopted.
cmake --build build-tsan -j "$JOBS" --target lsd_serve lsd_match lsd_generate
TSAN_DIR="$(mktemp -d)"
trap 'rm -rf "${FUZZ_DIR:-}" "${TSAN_DIR:-}"; rm -f "${METRICS_TMP:-}"' EXIT
./build-tsan/tools/lsd_generate --domain real-estate-1 \
    --out "$TSAN_DIR" --listings 30 --seed 7 >/dev/null
TSAN_TRAIN=(--train "$TSAN_DIR/source-0.dtd" "$TSAN_DIR/source-0.xml"
                    "$TSAN_DIR/source-0.mapping"
            --train "$TSAN_DIR/source-1.dtd" "$TSAN_DIR/source-1.xml"
                    "$TSAN_DIR/source-1.mapping")
./build-tsan/tools/lsd_match --mediated "$TSAN_DIR/mediated.dtd" \
    "${TSAN_TRAIN[@]}" \
    --target "$TSAN_DIR/source-4.dtd" "$TSAN_DIR/source-4.xml" \
    --save-model "$TSAN_DIR/same.model" >/dev/null
printf 'golden-3 %s/source-3.dtd %s/source-3.xml\n' \
    "$TSAN_DIR" "$TSAN_DIR" > "$TSAN_DIR/golden.txt"
{
    for i in 0 1 2 3; do
        printf 'pre-%s %s/source-4.dtd %s/source-4.xml\n' \
            "$i" "$TSAN_DIR" "$TSAN_DIR"
    done
    printf 'RELOAD %s/same.model\n' "$TSAN_DIR"
    for i in 0 1 2 3; do
        printf 'post-%s %s/source-4.dtd %s/source-4.xml\n' \
            "$i" "$TSAN_DIR" "$TSAN_DIR"
    done
} > "$TSAN_DIR/stream.txt"
./build-tsan/tools/lsd_serve --mediated "$TSAN_DIR/mediated.dtd" \
    "${TSAN_TRAIN[@]}" \
    --requests "$TSAN_DIR/stream.txt" --golden "$TSAN_DIR/golden.txt" \
    --registry "$TSAN_DIR/registry" --workers 2 > "$TSAN_DIR/outcomes.txt"
grep -q "swapped version=2 golden=1/1" "$TSAN_DIR/outcomes.txt"

echo "== bench_match smoke (metrics schema) =="
cmake --build build -j "$JOBS" --target bench_match
METRICS_TMP="$(mktemp)"
BENCH_TMP="$(mktemp)"
trap 'rm -rf "${FUZZ_DIR:-}" "${TSAN_DIR:-}"; rm -f "${METRICS_TMP:-}" "${BENCH_TMP:-}"' EXIT
./build/bench/bench_match --quick --out= --metrics-out="$METRICS_TMP"
if command -v python3 >/dev/null 2>&1; then
    python3 scripts/validate_metrics.py "$METRICS_TMP"
else
    echo "python3 unavailable; skipping metrics JSON validation"
fi

echo "== lsd_serve smoke (service metrics schema) =="
cmake --build build -j "$JOBS" --target lsd_serve lsd_generate
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "${FUZZ_DIR:-}" "${TSAN_DIR:-}" "${SERVE_DIR:-}"; rm -f "${METRICS_TMP:-}" "${BENCH_TMP:-}"' EXIT
./build/tools/lsd_generate --domain real-estate-1 \
    --out "$SERVE_DIR" --listings 30 --seed 7 >/dev/null
printf 'req-3 %s/source-3.dtd %s/source-3.xml\nreq-4 %s/source-4.dtd %s/source-4.xml 60000\n' \
    "$SERVE_DIR" "$SERVE_DIR" "$SERVE_DIR" "$SERVE_DIR" > "$SERVE_DIR/stream.txt"
./build/tools/lsd_serve --mediated "$SERVE_DIR/mediated.dtd" \
    --train "$SERVE_DIR/source-0.dtd" "$SERVE_DIR/source-0.xml" \
            "$SERVE_DIR/source-0.mapping" \
    --train "$SERVE_DIR/source-1.dtd" "$SERVE_DIR/source-1.xml" \
            "$SERVE_DIR/source-1.mapping" \
    --requests "$SERVE_DIR/stream.txt" --workers 2 \
    --metrics-out "$SERVE_DIR/metrics.json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 scripts/validate_metrics.py --profile service "$SERVE_DIR/metrics.json"
else
    echo "python3 unavailable; skipping service metrics validation"
fi

echo "== ASan loopback transport smoke (lsd_serve --listen + lsd_client) =="
# The epoll server and blocking client end to end under ASan/UBSan:
# concurrent clients against an ephemeral-port server, outcome lines
# byte-compared between the two clients, clean SIGTERM shutdown, and the
# exported net.* counters validated against the schema.
cmake --build build-asan -j "$JOBS" --target lsd_serve lsd_client lsd_generate
NET_DIR="$(mktemp -d)"
trap 'rm -rf "${FUZZ_DIR:-}" "${TSAN_DIR:-}" "${SERVE_DIR:-}" "${NET_DIR:-}"; rm -f "${METRICS_TMP:-}" "${BENCH_TMP:-}"' EXIT
./build-asan/tools/lsd_generate --domain real-estate-1 \
    --out "$NET_DIR" --listings 30 --seed 7 >/dev/null
printf 'req-3 %s/source-3.dtd %s/source-3.xml\nreq-4 %s/source-4.dtd %s/source-4.xml 60000\n' \
    "$NET_DIR" "$NET_DIR" "$NET_DIR" "$NET_DIR" > "$NET_DIR/stream.txt"
./build-asan/tools/lsd_serve --mediated "$NET_DIR/mediated.dtd" \
    --train "$NET_DIR/source-0.dtd" "$NET_DIR/source-0.xml" \
            "$NET_DIR/source-0.mapping" \
    --train "$NET_DIR/source-1.dtd" "$NET_DIR/source-1.xml" \
            "$NET_DIR/source-1.mapping" \
    --listen 0 --workers 2 --metrics-out "$NET_DIR/net-metrics.json" \
    > "$NET_DIR/server.txt" 2>/dev/null &
SERVE_PID=$!
NET_PORT=""
for _ in $(seq 1 600); do
    NET_PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
        "$NET_DIR/server.txt" 2>/dev/null || true)"
    [ -n "$NET_PORT" ] && break
    sleep 0.1
done
[ -n "$NET_PORT" ] || { echo "lsd_serve --listen never printed its port" >&2; exit 1; }
./build-asan/tools/lsd_client --port "$NET_PORT" \
    --requests "$NET_DIR/stream.txt" > "$NET_DIR/client-1.txt" 2>/dev/null &
CLIENT_PID=$!
./build-asan/tools/lsd_client --port "$NET_PORT" \
    --requests "$NET_DIR/stream.txt" > "$NET_DIR/client-2.txt" 2>/dev/null
wait "$CLIENT_PID"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q 'req-3 ok' "$NET_DIR/client-1.txt"
grep -q 'req-4 ok' "$NET_DIR/client-1.txt"
# Concurrent clients saw identical outcomes (latency is wall clock).
cmp <(sed 's/latency_ms=[0-9]*/latency_ms=X/' "$NET_DIR/client-1.txt") \
    <(sed 's/latency_ms=[0-9]*/latency_ms=X/' "$NET_DIR/client-2.txt")
if command -v python3 >/dev/null 2>&1; then
    python3 scripts/validate_metrics.py --profile net "$NET_DIR/net-metrics.json"
else
    echo "python3 unavailable; skipping net metrics validation"
fi

echo "== prediction-cache parity smoke (cache on/off byte-compare) =="
# The same match run with and without --pred-cache must print identical
# bytes: the cache may change when predictions happen, never the result.
cmake --build build -j "$JOBS" --target lsd_match
MATCH_SMOKE_ARGS=(--mediated "$SERVE_DIR/mediated.dtd"
                  --train "$SERVE_DIR/source-0.dtd" "$SERVE_DIR/source-0.xml"
                          "$SERVE_DIR/source-0.mapping"
                  --train "$SERVE_DIR/source-1.dtd" "$SERVE_DIR/source-1.xml"
                          "$SERVE_DIR/source-1.mapping"
                  --target "$SERVE_DIR/source-4.dtd" "$SERVE_DIR/source-4.xml")
./build/tools/lsd_match "${MATCH_SMOKE_ARGS[@]}" > "$SERVE_DIR/match-off.txt"
./build/tools/lsd_match "${MATCH_SMOKE_ARGS[@]}" --pred-cache 4096 \
    > "$SERVE_DIR/match-on.txt"
cmp "$SERVE_DIR/match-off.txt" "$SERVE_DIR/match-on.txt"

echo "== constraint-search perf regression smoke =="
# The incremental searcher must keep the hardest standing domain
# (real-estate-2) optimally solvable well under the expansion ceiling;
# see scripts/validate_bench.py for what is enforced.
./build/bench/bench_match --domains=real-estate-2 --out="$BENCH_TMP"
if command -v python3 >/dev/null 2>&1; then
    python3 scripts/validate_bench.py "$BENCH_TMP"
else
    echo "python3 unavailable; skipping bench trajectory validation"
fi

echo "check.sh: all green"
