#!/usr/bin/env python3
"""Deterministically damage an artifact file for crash-recovery fuzzing.

Simulates the two physical failure modes the validating loader
(src/common/artifact_io.h) must classify instead of crashing on:

  truncate  -- keep only a prefix, as a torn write or a crash mid-write
               would leave behind;
  bitflip   -- flip one bit at a seeded offset, as silent media corruption
               would.

The damage location is a pure function of --seed, so a failing case can be
replayed exactly. Used by scripts/check.sh, which corrupts a trained model
across a sweep of seeds and asserts that the (sanitizer-instrumented)
loader always exits with a classified code -- never a signal.
"""

import argparse
import pathlib
import random
import sys


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Deterministically truncate or bit-flip a file.")
    parser.add_argument("path", help="file to damage")
    parser.add_argument("--mode", choices=["truncate", "bitflip"],
                        required=True)
    parser.add_argument("--seed", type=int, required=True,
                        help="selects the damage offset deterministically")
    parser.add_argument("--out", default=None,
                        help="write the damaged copy here (default: in place)")
    args = parser.parse_args()

    data = bytearray(pathlib.Path(args.path).read_bytes())
    if not data:
        sys.exit(f"corrupt_artifact: {args.path} is empty")

    rng = random.Random(args.seed)
    if args.mode == "truncate":
        keep = rng.randrange(0, len(data))
        data = data[:keep]
        where = f"kept {keep}"
    else:
        at = rng.randrange(0, len(data))
        bit = rng.randrange(8)
        data[at] ^= 1 << bit
        where = f"flipped bit {bit} of byte {at}"

    out = pathlib.Path(args.out if args.out else args.path)
    out.write_bytes(bytes(data))
    print(f"corrupt_artifact: {args.mode} seed={args.seed}: {where} "
          f"-> {out} ({len(data)} bytes)")


if __name__ == "__main__":
    main()
