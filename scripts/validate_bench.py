#!/usr/bin/env python3
"""Validates a bench_match trajectory JSON (BENCH_match.json).

Usage: validate_bench.py BENCH_JSON [--max-expanded=N] [--domain=NAME]

Guards the constraint-search performance envelope in CI:

  * every row is well-formed and bit-identical to the serial run
    (identical_to_serial and counters_identical both true),
  * no row in the guarded domain truncated its A* search
    (astar_truncated == 0 — the search proved optimality), and
  * the guarded domain's astar_expanded stays under a checked-in ceiling,
    so a heuristic or pruning regression that re-inflates the search
    space fails loudly instead of just running slower.

The default ceiling (80000) is ~4x the current real-estate-2 expansion
count (~19k) — generous headroom for datagen drift, far below the 400k+
the pre-incremental searcher needed. Exits nonzero with one line per
problem. Stdlib only.
"""

import json
import sys

DEFAULT_DOMAIN = "real-estate-2"
DEFAULT_MAX_EXPANDED = 80000

ROW_FIELDS = (
    "domain",
    "threads",
    "match_seconds",
    "astar_expanded",
    "astar_truncated",
    "identical_to_serial",
    "counters_identical",
)


def fail(errors):
    for error in errors:
        print("validate_bench: " + error, file=sys.stderr)
    return 1


def main(argv):
    path = None
    domain = DEFAULT_DOMAIN
    max_expanded = DEFAULT_MAX_EXPANDED
    for arg in argv[1:]:
        if arg.startswith("--max-expanded="):
            max_expanded = int(arg.split("=", 1)[1])
        elif arg.startswith("--domain="):
            domain = arg.split("=", 1)[1]
        elif arg.startswith("--"):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        elif path is None:
            path = arg
        else:
            print(__doc__.strip(), file=sys.stderr)
            return 2
    if path is None:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    with open(path, encoding="utf-8") as f:
        bench = json.load(f)

    errors = []
    rows = bench.get("results")
    if not isinstance(rows, list) or not rows:
        return fail(["missing or empty 'results' array"])

    guarded = []
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append("row %d is not an object" % i)
            continue
        missing = [key for key in ROW_FIELDS if key not in row]
        if missing:
            errors.append("row %d lacks fields: %s" % (i, ", ".join(missing)))
            continue
        where = "%s@%s threads" % (row["domain"], row["threads"])
        if row["identical_to_serial"] is not True:
            errors.append(where + ": output differs from the serial run")
        if row["counters_identical"] is not True:
            errors.append(where + ": counters differ from the serial run")
        if row["domain"] == domain:
            guarded.append(row)

    if not guarded:
        errors.append("no rows for guarded domain %r" % domain)
    for row in guarded:
        where = "%s@%s threads" % (row["domain"], row["threads"])
        if row["astar_truncated"] != 0:
            errors.append(
                where + ": astar_truncated=%s — search did not prove "
                "optimality" % row["astar_truncated"]
            )
        if row["astar_expanded"] > max_expanded:
            errors.append(
                where + ": astar_expanded=%s exceeds ceiling %d — "
                "heuristic/pruning regression" % (row["astar_expanded"], max_expanded)
            )

    if errors:
        return fail(errors)
    print(
        "validate_bench: OK (%d rows; %s expanded max %s <= %d, never truncated)"
        % (
            len(rows),
            domain,
            max(row["astar_expanded"] for row in guarded),
            max_expanded,
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
