// Ablation bench: design choices in the stacking meta-learner.
//
// DESIGN.md calls out three deviations/knobs around the paper's
// least-squares stacking: per-label weight normalization, shrinkage toward
// uniform weights, and class-balanced regression. This bench scores each
// combination (plus a plain unweighted average and the hindsight-best
// single base learner) under the standard protocol so the defaults are
// justified by measurement, not taste.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"

namespace {

struct MetaAblation {
  const char* name;
  lsd::MetaLearnerOptions options;
  /// When false, use the plain average instead of the meta-learner.
  bool use_meta = true;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lsd;
  bool quick = bench::BoolFlag(argc, argv, "quick");
  ExperimentConfig base_config;
  base_config.samples =
      static_cast<size_t>(bench::IntFlag(argc, argv, "samples", 1));
  base_config.num_listings = static_cast<size_t>(
      bench::IntFlag(argc, argv, "listings", quick ? 40 : 60));

  MetaLearnerOptions raw;
  raw.normalize_per_label = false;
  raw.uniform_shrinkage = 0.0;
  MetaLearnerOptions normalized;
  normalized.normalize_per_label = true;
  normalized.uniform_shrinkage = 0.0;
  MetaLearnerOptions shrunk;  // the default
  MetaLearnerOptions balanced = shrunk;
  balanced.balance_classes = true;

  const MetaAblation kAblations[] = {
      {"raw-least-squares", raw, true},
      {"normalized", normalized, true},
      {"normalized+shrinkage", shrunk, true},
      {"+balanced-classes", balanced, true},
      {"plain-average", shrunk, false},
  };

  std::printf(
      "Stacking ablation: accuracy (%%) of the meta stage (no constraint "
      "handler)\n(samples=%zu, listings/source=%zu)\n",
      base_config.samples, base_config.num_listings);
  bench::Rule(118);
  std::printf("%-18s | %10s |", "Domain", "BestBase");
  for (const MetaAblation& ablation : kAblations) {
    std::printf(" %20s", ablation.name);
  }
  std::printf("\n");
  bench::Rule(118);

  for (const std::string& domain :
       {std::string("real-estate-1"), std::string("time-schedule")}) {
    bool county = ConfigForDomain(domain, base_config.lsd).use_county_recognizer;
    std::printf("%-18s |", domain.c_str());
    // Best base learner (shared across ablations; uses default options).
    {
      auto stats = RunDomainExperiment(domain, base_config,
                                       BaseLearnerVariants(county));
      if (!stats.ok()) {
        std::printf("error: %s\n", stats.status().ToString().c_str());
        return 1;
      }
      double best = 0;
      for (const auto& [name, stat] : *stats) best = std::max(best, stat.mean());
      std::printf(" %9.1f |", 100.0 * best);
    }
    for (const MetaAblation& ablation : kAblations) {
      ExperimentConfig config = base_config;
      config.lsd.meta_options = ablation.options;
      SystemVariant variant;
      variant.name = "meta";
      // Same roster as Figure 8a's "meta" bar: every learner except the
      // XML learner, so the comparison against BestBase is like for like.
      variant.options.learners = {kNameMatcherName, kContentMatcherName,
                                  kNaiveBayesName};
      if (county) variant.options.learners.push_back(kCountyRecognizerName);
      variant.options.use_meta_learner = ablation.use_meta;
      variant.options.use_constraint_handler = false;
      auto stats = RunDomainExperiment(domain, config, {variant});
      if (!stats.ok()) {
        std::printf("error: %s\n", stats.status().ToString().c_str());
        return 1;
      }
      std::printf(" %20.1f", 100.0 * stats->at("meta").mean());
    }
    std::printf("\n");
  }
  bench::Rule(118);
  return 0;
}
