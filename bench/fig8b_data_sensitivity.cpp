// Reproduces Figure 8b: accuracy vs. listings per source on Real Estate I.
//
// Paper shape: accuracy climbs steeply between 5 and 20 listings, changes
// minimally from 20 to 200, and levels off after 200.

#include "data_sensitivity.h"

int main(int argc, char** argv) {
  return lsd::bench::RunDataSensitivity("real-estate-1", argc, argv);
}
