// Exercises the observability layer end-to-end and verifies its central
// contract: counters in the metrics registry are bit-identical for any
// thread count, because they count work (folds trained, nodes expanded,
// instances predicted) and the parallel runtime keeps the work itself
// invariant.
//
// The pipeline is deliberately the full product path: generate a domain,
// serialize every source to DTD/XML text, corrupt the text slightly, parse
// it back with the lenient parsers (populating the parse-recovery
// counters), train with stacking, then match under the standing domain
// constraints (populating the A* counters) — at 1/2/4/8 threads, resetting
// the registry between runs and comparing both the result fingerprint and
// the counter snapshot against the serial run.
//
// Flags:
//   --listings=N       listings per source (default 60)
//   --quick            30 listings, real-estate-1 only
//   --domains=A,B      run only the named evaluation domains
//   --out=PATH         trajectory JSON (BENCH_match.json; "" disables)
//   --metrics-out=PATH also dump the serial run's metrics JSON snapshot

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/file_util.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "core/lsd_system.h"
#include "datagen/domains.h"
#include "eval/experiment.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace {

using namespace lsd;

std::string StringFlag(int argc, char** argv, const char* key,
                       const std::string& fallback) {
  std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

/// Round-trips one generated source through text + the lenient parsers,
/// with a deterministic blemish in each format so recovery actually runs:
/// a stray close tag in the XML, an unknown declaration keyword in the
/// DTD. Recovery skips both without touching the real content, so the
/// rebuilt source is semantically identical to the generated one.
StatusOr<DataSource> RoundTripLeniently(const GeneratedSource& gen) {
  std::string dtd_text =
      gen.source.schema.ToString() + "<!BOGUS not-a-declaration>\n";
  XmlNode wrapper("listings");
  for (const XmlDocument& listing : gen.source.listings) {
    wrapper.children.push_back(listing.root);
  }
  std::string xml_text = WriteXml(wrapper);
  size_t after_open = xml_text.find('>');
  if (after_open != std::string::npos) {
    xml_text.insert(after_open + 1, "</stray>");
  }

  DataSource source;
  source.name = gen.source.name;
  LSD_ASSIGN_OR_RETURN(DtdParseReport dtd_report, ParseDtdLenient(dtd_text));
  source.schema = std::move(dtd_report.dtd);
  LSD_ASSIGN_OR_RETURN(XmlParseReport xml_report, ParseXmlLenient(xml_text));
  for (XmlNode& listing : xml_report.document.root.children) {
    source.listings.emplace_back(std::move(listing));
  }
  return source;
}

struct RunResult {
  double train_seconds = 0.0;
  double match_seconds = 0.0;
  /// Mapping + prediction bytes, as in bench_parallel.
  std::string fingerprint;
  /// "name=value" lines for every counter in the final snapshot. Gauges
  /// and histograms are excluded by design: high-water marks depend on
  /// scheduling and timings depend on the clock.
  std::string counters;
  MetricsSnapshot snapshot;
  Status status;
};

RunResult RunDomain(const Domain& domain, const std::string& domain_name,
                    size_t listings, size_t num_threads) {
  RunResult result;
  MetricsRegistry::Global().Reset();

  LsdConfig config;
  config = ConfigForDomain(domain_name, config);
  config.num_threads = num_threads;
  LsdSystem system(domain.mediated, config);
  for (auto& constraint : MakeDomainConstraints(domain)) {
    system.AddConstraint(std::move(constraint));
  }

  // Sources must outlive Train().
  std::vector<DataSource> sources;
  sources.reserve(domain.sources.size());
  for (const GeneratedSource& gen : domain.sources) {
    auto round_tripped = RoundTripLeniently(gen);
    if (!round_tripped.ok()) {
      result.status = round_tripped.status();
      return result;
    }
    sources.push_back(std::move(*round_tripped));
  }

  const size_t train_count = 3;
  auto t0 = std::chrono::steady_clock::now();
  for (size_t s = 0; s < train_count && s < sources.size(); ++s) {
    result.status =
        system.AddTrainingSource(sources[s], domain.sources[s].gold);
    if (!result.status.ok()) return result;
  }
  result.status = system.Train();
  if (!result.status.ok()) return result;
  auto t1 = std::chrono::steady_clock::now();
  result.train_seconds = Seconds(t0, t1);

  result.fingerprint = system.meta_learner().Serialize();
  for (size_t s = train_count; s < sources.size(); ++s) {
    auto match = system.MatchSource(sources[s]);
    if (!match.ok()) {
      result.status = match.status();
      return result;
    }
    result.fingerprint += match->mapping.ToString();
    for (const Prediction& p : match->tag_predictions) {
      for (double score : p.scores) {
        result.fingerprint += StrFormat("%.17g,", score);
      }
    }
  }
  auto t2 = std::chrono::steady_clock::now();
  result.match_seconds = Seconds(t1, t2);

  result.snapshot = MetricsRegistry::Global().Snapshot();
  for (const auto& counter : result.snapshot.counters) {
    result.counters +=
        counter.name + "=" + std::to_string(counter.value) + "\n";
  }
  (void)listings;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = bench::BoolFlag(argc, argv, "quick");
  size_t listings = static_cast<size_t>(
      bench::IntFlag(argc, argv, "listings", quick ? 30 : 60));
  std::string out_path = StringFlag(argc, argv, "out", "BENCH_match.json");
  std::string metrics_out = StringFlag(argc, argv, "metrics-out", "");
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  std::vector<std::string> domains =
      quick ? std::vector<std::string>{"real-estate-1"}
            : EvaluationDomainNames();
  std::string domains_flag = StringFlag(argc, argv, "domains", "");
  if (!domains_flag.empty()) {
    domains.clear();
    for (const std::string& name : Split(domains_flag, ',')) {
      if (!name.empty()) domains.push_back(name);
    }
  }

  std::printf(
      "bench_match: observability pipeline, counter determinism vs threads\n"
      "(listings/source=%zu, 3 train / 2 match, lenient round-trip, "
      "hardware threads: %u)\n",
      listings, std::thread::hardware_concurrency());
  bench::Rule(96);
  std::printf("%-16s | %7s | %8s %8s | %9s %8s %8s | %9s %9s\n", "Domain",
              "Threads", "Train s", "Match s", "Expanded", "Tasks",
              "Recov", "Identical", "Counters");
  bench::Rule(96);

  std::string json = "{\n  \"bench\": \"bench_match\",\n";
  json += StrFormat("  \"listings\": %zu,\n", listings);
  json += StrFormat("  \"hardware_concurrency\": %u,\n",
                    std::thread::hardware_concurrency());
  json += "  \"results\": [\n";

  bool all_identical = true;
  bool first_row = true;
  for (const std::string& name : domains) {
    auto domain = MakeEvaluationDomain(name, /*num_sources=*/5, listings,
                                       /*seed=*/7);
    if (!domain.ok()) {
      std::fprintf(stderr, "error: %s\n", domain.status().ToString().c_str());
      return 1;
    }
    std::string serial_fingerprint, serial_counters;
    std::string serial_metrics_json;
    for (size_t threads : thread_counts) {
      RunResult run = RunDomain(*domain, name, listings, threads);
      if (!run.status.ok()) {
        std::fprintf(stderr, "error: %s\n", run.status.ToString().c_str());
        return 1;
      }
      bool identical = true, counters_identical = true;
      if (threads == 1) {
        serial_fingerprint = run.fingerprint;
        serial_counters = run.counters;
        // Deferred to after the loop: writing the file here would register
        // the artifact-layer counters in the very registry under test, and
        // they'd survive Reset() as zero-valued lines in later snapshots.
        serial_metrics_json = run.snapshot.ToJson();
      } else {
        identical = run.fingerprint == serial_fingerprint;
        counters_identical = run.counters == serial_counters;
        all_identical = all_identical && identical && counters_identical;
        if (!counters_identical) {
          std::fprintf(stderr,
                       "counter mismatch at %zu threads (serial vs parallel):\n"
                       "--- serial\n%s--- %zu threads\n%s",
                       threads, serial_counters.c_str(), threads,
                       run.counters.c_str());
        }
      }
      uint64_t expanded = run.snapshot.CounterOf("astar.expanded");
      uint64_t pruned = run.snapshot.CounterOf("astar.pruned") +
                        run.snapshot.CounterOf("astar.bound_pruned");
      uint64_t truncated = run.snapshot.CounterOf("astar.truncated");
      uint64_t heap_peak = run.snapshot.GaugeOf("astar.heap_peak");
      double convert_seconds =
          static_cast<double>(run.snapshot.HistogramSumOf(
              "match.convert_micros")) / 1e6;
      double search_seconds =
          static_cast<double>(run.snapshot.HistogramSumOf(
              "match.search_micros")) / 1e6;
      uint64_t tasks = run.snapshot.CounterOf("pool.tasks_run");
      uint64_t recovered = run.snapshot.CounterOf("xml.parse.recovered") +
                           run.snapshot.CounterOf("dtd.parse.recovered");
      std::printf(
          "%-16s | %7zu | %8.3f %8.3f | %9llu %8llu %8llu | %9s %9s\n",
          name.c_str(), threads, run.train_seconds, run.match_seconds,
          static_cast<unsigned long long>(expanded),
          static_cast<unsigned long long>(tasks),
          static_cast<unsigned long long>(recovered),
          identical ? "yes" : "NO", counters_identical ? "yes" : "NO");
      if (!first_row) json += ",\n";
      first_row = false;
      json += StrFormat(
          "    {\"domain\": \"%s\", \"threads\": %zu, "
          "\"train_seconds\": %.4f, \"match_seconds\": %.4f, "
          "\"convert_seconds\": %.4f, \"search_seconds\": %.4f, "
          "\"astar_expanded\": %llu, \"astar_pruned\": %llu, "
          "\"astar_truncated\": %llu, \"astar_heap_peak\": %llu, "
          "\"pool_tasks_run\": %llu, "
          "\"parse_recovered\": %llu, "
          "\"identical_to_serial\": %s, \"counters_identical\": %s}",
          name.c_str(), threads, run.train_seconds, run.match_seconds,
          convert_seconds, search_seconds,
          static_cast<unsigned long long>(expanded),
          static_cast<unsigned long long>(pruned),
          static_cast<unsigned long long>(truncated),
          static_cast<unsigned long long>(heap_peak),
          static_cast<unsigned long long>(tasks),
          static_cast<unsigned long long>(recovered),
          identical ? "true" : "false",
          counters_identical ? "true" : "false");
    }
    if (!metrics_out.empty()) {
      Status written = WriteStringToFile(metrics_out, serial_metrics_json);
      if (!written.ok()) {
        std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
        return 1;
      }
    }
  }
  json += "\n  ]\n}\n";
  bench::Rule(96);
  std::printf("counters and outputs bit-identical across thread counts: %s\n",
              all_identical ? "yes" : "NO — determinism bug");

  if (!out_path.empty()) {
    Status status = WriteStringToFile(out_path, json);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return all_identical ? 0 : 1;
}
