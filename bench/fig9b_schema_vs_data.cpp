// Reproduces Figure 9b: the relative contribution of learning from schema
// information versus data instances. Schema-only = name matcher plus
// schema-verifiable constraints; data-only = content learners (content
// matcher, Naive Bayes, XML learner, recognizers) plus data-verifiable
// (column) constraints.
//
// Paper shape: both clearly below the combined system; both contribute.

#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace lsd;
  bool quick = bench::BoolFlag(argc, argv, "quick");
  ExperimentConfig config;
  config.samples =
      static_cast<size_t>(bench::IntFlag(argc, argv, "samples", quick ? 1 : 2));
  config.num_listings = static_cast<size_t>(
      bench::IntFlag(argc, argv, "listings", quick ? 60 : 120));

  std::printf(
      "Figure 9b: schema information vs. data instances — accuracy (%%)\n"
      "(samples=%zu, listings/source=%zu)\n",
      config.samples, config.num_listings);
  bench::Rule(72);
  std::printf("%-18s | %12s %10s %10s\n", "Domain", "SchemaOnly", "DataOnly",
              "Both");
  bench::Rule(72);

  for (const std::string& name : EvaluationDomainNames()) {
    bool county = ConfigForDomain(name, config.lsd).use_county_recognizer;
    auto stats =
        RunDomainExperiment(name, config, SchemaVsDataVariants(county));
    if (!stats.ok()) {
      std::printf("error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%-18s | %12.1f %10.1f %10.1f\n", name.c_str(),
                100.0 * stats->at("schema-only").mean(),
                100.0 * stats->at("data-only").mean(),
                100.0 * stats->at("full").mean());
  }
  bench::Rule(72);
  std::printf(
      "Paper shape: both sources of information contribute; the complete\n"
      "system beats either alone.\n");
  return 0;
}
