// Loopback sweep for the network transport: concurrent NetClients hammer a
// NetServer in front of a bounded MatchService and we record what the wire
// adds — client-observed round-trip latency percentiles, end-to-end
// throughput, the shed rate once the offered load exceeds the queue, and
// the transport's own counters (bytes moved, read throttles).
//
// Latencies here are *client* clocks (connect + frame + queue + match +
// response), unlike bench_service whose latencies are the service's
// submit-to-terminal clock: the delta between the two tables is the
// transport overhead.
//
// Flags:
//   --listings=N     listings per generated source (default 60)
//   --quick          30 listings, smallest sweep
//   --queue-depth=N  admission cap (default 32)
//   --out=PATH       JSON output path, BENCH_net.json by default
//                    ("" disables)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/file_util.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "core/lsd_system.h"
#include "datagen/domains.h"
#include "net/client.h"
#include "net/server.h"
#include "service/match_service.h"
#include "xml/xml_writer.h"

namespace {

using namespace lsd;

std::string StringFlag(int argc, char** argv, const char* key,
                       const std::string& fallback) {
  std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

struct Cell {
  size_t clients = 0;
  size_t per_client = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  size_t ok = 0, degraded = 0, shed = 0, failed = 0, transport_errors = 0;
  uint64_t bytes_read = 0, bytes_written = 0, read_throttles = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = bench::BoolFlag(argc, argv, "quick");
  size_t listings = static_cast<size_t>(
      bench::IntFlag(argc, argv, "listings", quick ? 30 : 60));
  size_t queue_depth =
      static_cast<size_t>(bench::IntFlag(argc, argv, "queue-depth", 32));
  std::string out_path = StringFlag(argc, argv, "out", "BENCH_net.json");

  auto domain = MakeEvaluationDomain("real-estate-1", /*num_sources=*/5,
                                     listings, /*seed=*/7);
  if (!domain.ok()) {
    std::fprintf(stderr, "error: %s\n", domain.status().ToString().c_str());
    return 1;
  }

  struct Payload {
    std::string dtd_text, xml_text;
  };
  std::vector<Payload> payloads;
  for (size_t s = 3; s < domain->sources.size(); ++s) {
    const DataSource& source = domain->sources[s].source;
    Payload payload;
    payload.dtd_text = source.schema.ToString();
    XmlNode wrapper("listings");
    for (const XmlDocument& listing : source.listings) {
      wrapper.children.push_back(listing.root);
    }
    payload.xml_text = WriteXml(wrapper);
    payloads.push_back(std::move(payload));
  }

  auto factory = [&]() -> StatusOr<std::unique_ptr<LsdSystem>> {
    auto system = std::make_unique<LsdSystem>(domain->mediated, LsdConfig());
    for (size_t s = 0; s < 3; ++s) {
      LSD_RETURN_IF_ERROR(system->AddTrainingSource(
          domain->sources[s].source, domain->sources[s].gold));
    }
    LSD_RETURN_IF_ERROR(system->Train());
    return StatusOr<std::unique_ptr<LsdSystem>>(std::move(system));
  };

  const std::vector<size_t> client_counts =
      quick ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4};
  const size_t per_client = quick ? 6 : 12;

  std::printf(
      "bench_net: loopback offered-load sweep (listings/source=%zu, "
      "queue-depth=%zu, workers=2)\n",
      listings, queue_depth);
  bench::Rule(110);
  std::printf(
      "%7s | %7s | %8s %9s | %8s %8s %8s | %4s %4s %4s | %9s %9s | %5s\n",
      "Clients", "Req/cli", "Wall s", "req/s", "p50 ms", "p95 ms", "p99 ms",
      "OK", "Shed", "Xerr", "B read", "B written", "Thrtl");
  bench::Rule(110);

  std::vector<Cell> cells;
  for (size_t clients : client_counts) {
    MatchServiceOptions options;
    options.workers = 2;
    options.max_queue_depth = queue_depth;
    auto service = MatchService::Create(factory, options);
    if (!service.ok()) {
      std::fprintf(stderr, "error: %s\n", service.status().ToString().c_str());
      return 1;
    }
    auto server = net::NetServer::Create(service->get(), net::NetServerOptions());
    if (!server.ok()) {
      std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
      return 1;
    }

    MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
    Cell cell;
    cell.clients = clients;
    cell.per_client = per_client;
    std::atomic<size_t> ok{0}, degraded{0}, shed{0}, failed{0}, xerr{0};
    std::vector<std::vector<uint64_t>> latencies(clients);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        net::NetClientOptions client_options;
        client_options.port = (*server)->port();
        client_options.backoff_seed = c + 1;
        net::NetClient client(client_options);
        for (size_t i = 0; i < per_client; ++i) {
          net::WireRequest request;
          request.id = "c" + std::to_string(c) + "-" + std::to_string(i);
          const Payload& payload = payloads[(c + i) % payloads.size()];
          request.dtd_text = payload.dtd_text;
          request.xml_text = payload.xml_text;
          auto w0 = std::chrono::steady_clock::now();
          auto response = client.Call(request);
          auto w1 = std::chrono::steady_clock::now();
          if (!response.ok()) {
            ++xerr;
            continue;
          }
          switch (response->outcome) {
            case net::WireOutcome::kOk:
              ++ok;
              break;
            case net::WireOutcome::kDegraded:
              ++degraded;
              break;
            case net::WireOutcome::kShed:
              ++shed;
              continue;  // Immediate answers would skew the percentiles.
            default:
              ++failed;
              continue;
          }
          latencies[c].push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(w1 - w0)
                  .count()));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    auto t1 = std::chrono::steady_clock::now();
    (*server)->Stop();
    (*service)->Stop();
    MetricsSnapshot after = MetricsRegistry::Global().Snapshot();

    cell.ok = ok;
    cell.degraded = degraded;
    cell.shed = shed;
    cell.failed = failed;
    cell.transport_errors = xerr;
    cell.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    size_t answered = cell.ok + cell.degraded;
    cell.throughput_rps =
        cell.wall_seconds > 0.0 ? answered / cell.wall_seconds : 0.0;
    std::vector<uint64_t> merged;
    for (const auto& per_thread : latencies) {
      merged.insert(merged.end(), per_thread.begin(), per_thread.end());
    }
    std::sort(merged.begin(), merged.end());
    cell.p50_ms = bench::PercentileMs(merged, 0.50);
    cell.p95_ms = bench::PercentileMs(merged, 0.95);
    cell.p99_ms = bench::PercentileMs(merged, 0.99);
    cell.bytes_read =
        after.CounterOf("net.bytes_read") - before.CounterOf("net.bytes_read");
    cell.bytes_written = after.CounterOf("net.bytes_written") -
                         before.CounterOf("net.bytes_written");
    cell.read_throttles = after.CounterOf("net.read_throttles") -
                          before.CounterOf("net.read_throttles");
    if (cell.failed != 0 || cell.transport_errors != 0) {
      std::fprintf(stderr,
                   "error: loopback run not clean: %zu failed, %zu "
                   "transport errors\n",
                   cell.failed, cell.transport_errors);
      return 1;
    }
    std::printf(
        "%7zu | %7zu | %8.3f %9.1f | %8.1f %8.1f %8.1f | %4zu %4zu %4zu | "
        "%9llu %9llu | %5llu\n",
        cell.clients, cell.per_client, cell.wall_seconds, cell.throughput_rps,
        cell.p50_ms, cell.p95_ms, cell.p99_ms, cell.ok, cell.shed,
        cell.transport_errors, (unsigned long long)cell.bytes_read,
        (unsigned long long)cell.bytes_written,
        (unsigned long long)cell.read_throttles);
    cells.push_back(cell);
  }
  bench::Rule(110);

  std::string json = "{\n  \"bench\": \"bench_net\",\n";
  json += StrFormat("  \"listings\": %zu,\n", listings);
  json += StrFormat("  \"queue_depth\": %zu,\n", queue_depth);
  json += "  \"results\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    json += StrFormat(
        "    {\"clients\": %zu, \"requests_per_client\": %zu, "
        "\"wall_seconds\": %.4f, \"throughput_rps\": %.2f, "
        "\"p50_ms\": %.2f, \"p95_ms\": %.2f, \"p99_ms\": %.2f, "
        "\"ok\": %zu, \"degraded\": %zu, \"shed\": %zu, "
        "\"transport_errors\": %zu, \"bytes_read\": %llu, "
        "\"bytes_written\": %llu, \"read_throttles\": %llu}%s",
        cell.clients, cell.per_client, cell.wall_seconds, cell.throughput_rps,
        cell.p50_ms, cell.p95_ms, cell.p99_ms, cell.ok, cell.degraded,
        cell.shed, cell.transport_errors,
        (unsigned long long)cell.bytes_read,
        (unsigned long long)cell.bytes_written,
        (unsigned long long)cell.read_throttles,
        i + 1 < cells.size() ? ",\n" : "\n");
  }
  json += "  ]\n}\n";
  if (!out_path.empty()) {
    Status status = WriteStringToFile(out_path, json);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
