// Reproduces Figure 8c: accuracy vs. listings per source on Time Schedule.
//
// Paper shape: same as Figure 8b — steep climb to ~20 listings, flat past
// 200.

#include "data_sensitivity.h"

int main(int argc, char** argv) {
  return lsd::bench::RunDataSensitivity("time-schedule", argc, argv);
}
