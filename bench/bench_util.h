#ifndef LSD_BENCH_BENCH_UTIL_H_
#define LSD_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace lsd::bench {

/// Reads "--key=value" style flags from argv; returns `fallback` when the
/// flag is absent. A malformed value (non-numeric, trailing junk, out of
/// int range) exits with code 2 — a bench silently running with the wrong
/// size would publish misleading numbers. Benches accept a few flags so
/// the full paper-scale protocol and a quick smoke run use the same
/// binary:
///   --samples=N     data samples per domain (paper: 3)
///   --listings=N    listings per source (paper: 300)
///   --quick         shrink everything for a fast sanity pass
inline int IntFlag(int argc, char** argv, const char* key, int fallback) {
  std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      const char* value = argv[i] + prefix.size();
      char* end = nullptr;
      errno = 0;
      long parsed = std::strtol(value, &end, 10);
      if (*value == '\0' || *end != '\0' || errno == ERANGE ||
          parsed < INT_MIN || parsed > INT_MAX) {
        std::fprintf(stderr, "--%s expects an integer, got: %s\n", key,
                     value);
        std::exit(2);
      }
      return static_cast<int>(parsed);
    }
  }
  return fallback;
}

/// Nearest-rank percentile of an ascending-sorted latency vector, in
/// milliseconds. `p` is clamped to [0, 1]; an empty vector reads 0.
inline double PercentileMs(const std::vector<uint64_t>& sorted_micros,
                           double p) {
  if (sorted_micros.empty()) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  size_t rank = static_cast<size_t>(p * (sorted_micros.size() - 1) + 0.5);
  return static_cast<double>(
             sorted_micros[std::min(rank, sorted_micros.size() - 1)]) /
         1000.0;
}

inline bool BoolFlag(int argc, char** argv, const char* key) {
  std::string flag = std::string("--") + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Prints a horizontal rule sized to `width`.
inline void Rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace lsd::bench

#endif  // LSD_BENCH_BENCH_UTIL_H_
