#ifndef LSD_BENCH_BENCH_UTIL_H_
#define LSD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace lsd::bench {

/// Reads "--key=value" style flags from argv; returns `fallback` when the
/// flag is absent. Benches accept a few flags so the full paper-scale
/// protocol and a quick smoke run use the same binary:
///   --samples=N     data samples per domain (paper: 3)
///   --listings=N    listings per source (paper: 300)
///   --quick         shrink everything for a fast sanity pass
inline int IntFlag(int argc, char** argv, const char* key, int fallback) {
  std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoi(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline bool BoolFlag(int argc, char** argv, const char* key) {
  std::string flag = std::string("--") + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Prints a horizontal rule sized to `width`.
inline void Rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace lsd::bench

#endif  // LSD_BENCH_BENCH_UTIL_H_
