// Section 7 ("Overlapping of Schemas") exploration.
//
// The paper's domains are aggregators: 84-100% of source tags match the
// mediated schema. Section 7 predicts that on low-overlap domains LSD's
// performance "will depend largely on its ability to recognize that a
// certain source-schema tag matches none of the mediated-schema tags".
// This bench lowers the overlap of the Real Estate I domain by scaling
// concept presence down and filler-tag presence up, then measures the
// complete system with and without the reject-option threshold
// (MatchOptions::other_threshold) this library adds for exactly that
// situation. Reported per configuration: accuracy on matchable tags and
// recall on unmatchable (OTHER) tags.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/lsd_system.h"
#include "datagen/domains.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace {

using namespace lsd;

// Scales every non-root concept's presence toward `overlap` and makes the
// filler (OTHER) concepts near-certain, producing a domain where a
// substantial fraction of source tags matches nothing.
void LowerOverlap(ConceptSpec* node, double overlap) {
  for (ConceptSpec& child : node->children) {
    child.presence_prob *= overlap;
    LowerOverlap(&child, overlap);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = bench::BoolFlag(argc, argv, "quick");
  size_t listings =
      static_cast<size_t>(bench::IntFlag(argc, argv, "listings", quick ? 40 : 80));

  std::printf(
      "Section 7 exploration: low-overlap matching with a reject option\n"
      "(real-estate-1 variant, listings/source=%zu)\n",
      listings);
  bench::Rule(96);
  std::printf("%-22s | %10s | %18s %12s | %18s %12s\n", "", "", "-- no threshold --",
              "", "-- threshold 0.3 --", "");
  std::printf("%-22s | %10s | %18s %12s | %18s %12s\n", "Overlap scaling",
              "Match %", "Accuracy", "OTHER recall", "Accuracy",
              "OTHER recall");
  bench::Rule(96);

  for (double overlap : {1.0, 0.75, 0.5}) {
    auto spec = GetDomainSpec("real-estate-1");
    if (!spec.ok()) return 1;
    LowerOverlap(&spec->root, overlap);
    for (OtherConceptSpec& other : spec->other_concepts) {
      other.presence_prob = overlap < 1.0 ? 0.9 : other.presence_prob;
    }
    Domain domain = RealizeDomain(*spec, 5, listings, /*seed=*/7);

    double matchable_pct = 0;
    RunningStat accuracy[2], other_recall[2];
    for (const auto& split : Combinations(5, 3)) {
      LsdConfig config = ConfigForDomain(domain.name, LsdConfig());
      LsdSystem system(domain.mediated, config, &domain.synonyms);
      for (auto& c : MakeDomainConstraints(domain)) {
        system.AddConstraint(std::move(c));
      }
      for (size_t s : split) {
        if (!system
                 .AddTrainingSource(domain.sources[s].source,
                                    domain.sources[s].gold)
                 .ok()) {
          return 1;
        }
      }
      if (!system.Train().ok()) return 1;
      for (size_t test = 0; test < domain.sources.size(); ++test) {
        if (std::find(split.begin(), split.end(), test) != split.end()) {
          continue;
        }
        const GeneratedSource& held_out = domain.sources[test];
        size_t matchable = 0;
        for (const auto& [tag, label] : held_out.gold.entries()) {
          if (label != "OTHER") ++matchable;
        }
        matchable_pct = 100.0 * static_cast<double>(matchable) /
                        static_cast<double>(held_out.gold.size());
        auto preds = system.PredictSource(held_out.source);
        if (!preds.ok()) return 1;
        for (int mode = 0; mode < 2; ++mode) {
          MatchOptions options;
          options.other_threshold = mode == 0 ? 0.0 : 0.3;
          auto result = system.MatchWithPredictions(*preds, held_out.source,
                                                    options);
          if (!result.ok()) return 1;
          AccuracyBreakdown score =
              ScoreMapping(result->mapping, held_out.gold);
          accuracy[mode].Add(score.accuracy());
          if (score.other_total > 0) {
            other_recall[mode].Add(static_cast<double>(score.other_correct) /
                                   static_cast<double>(score.other_total));
          }
        }
      }
    }
    std::printf("%-22.2f | %9.0f%% | %18.1f %12.1f | %18.1f %12.1f\n", overlap,
                matchable_pct, 100.0 * accuracy[0].mean(),
                100.0 * other_recall[0].mean(), 100.0 * accuracy[1].mean(),
                100.0 * other_recall[1].mean());
  }
  bench::Rule(96);
  std::printf(
      "Expected shape: as overlap falls, the no-threshold system mislabels\n"
      "unmatchable tags (low OTHER recall); the reject option recovers OTHER\n"
      "recall at a modest cost in matchable-tag accuracy.\n");
  return 0;
}
