// Reproduces Figure 8a: average matching accuracy per domain for the four
// LSD configurations — best single base learner, + meta-learner,
// + constraint handler, + XML learner (the complete system).
//
// Paper shape: best base learner 42-72%; meta adds 5-22 points; the
// constraint handler adds 7-13 more; the XML learner adds 0.8-6 (largest
// on Real Estate II); the complete system lands at 71-92% across domains.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace lsd;
  bool quick = bench::BoolFlag(argc, argv, "quick");
  ExperimentConfig config;
  config.samples =
      static_cast<size_t>(bench::IntFlag(argc, argv, "samples", quick ? 1 : 2));
  config.num_listings = static_cast<size_t>(
      bench::IntFlag(argc, argv, "listings", quick ? 60 : 120));

  std::printf(
      "Figure 8a: average matching accuracy (%%) by configuration\n"
      "(samples=%zu, listings/source=%zu, 3-train/2-test over all 10 splits)\n",
      config.samples, config.num_listings);
  bench::Rule(96);
  std::printf("%-18s | %14s %8s %18s %12s\n", "Domain", "BestBaseLearner",
              "+Meta", "+ConstraintHandler", "+XmlLearner");
  bench::Rule(96);

  for (const std::string& name : EvaluationDomainNames()) {
    bool county = ConfigForDomain(name, config.lsd).use_county_recognizer;
    auto stats = RunDomainExperiment(name, config, Figure8aVariants(county));
    if (!stats.ok()) {
      std::printf("error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    double best_base = 0.0;
    for (const auto& [variant, stat] : *stats) {
      if (variant.rfind("base:", 0) == 0) {
        best_base = std::max(best_base, stat.mean());
      }
    }
    std::printf("%-18s | %14.1f %8.1f %18.1f %12.1f\n", name.c_str(),
                100.0 * best_base, 100.0 * stats->at("meta").mean(),
                100.0 * stats->at("meta+constraints").mean(),
                100.0 * stats->at("full").mean());
  }
  bench::Rule(96);
  std::printf(
      "Paper shape: monotone gains left to right; complete system 71-92%%;\n"
      "best base learner 42-72%%.\n");
  return 0;
}
