// Shared driver for Figures 8b and 8c: accuracy as a function of the
// number of data listings available per source, for the four cumulative
// configurations.

#ifndef LSD_BENCH_DATA_SENSITIVITY_H_
#define LSD_BENCH_DATA_SENSITIVITY_H_

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "eval/experiment.h"

namespace lsd::bench {

inline int RunDataSensitivity(const std::string& domain_name, int argc, char** argv) {
  bool quick = BoolFlag(argc, argv, "quick");
  std::vector<size_t> listing_counts =
      quick ? std::vector<size_t>{5, 20, 60}
            : std::vector<size_t>{5, 10, 20, 50, 100, 200};

  ExperimentConfig config;
  config.samples =
      static_cast<size_t>(IntFlag(argc, argv, "samples", quick ? 1 : 2));

  std::printf(
      "Accuracy vs. data listings per source — %s (samples=%zu)\n",
      domain_name.c_str(), config.samples);
  Rule(86);
  std::printf("%9s | %14s %8s %18s %12s\n", "Listings", "BestBaseLearner",
              "+Meta", "+ConstraintHandler", "+XmlLearner");
  Rule(86);

  bool county = ConfigForDomain(domain_name, config.lsd).use_county_recognizer;
  for (size_t listings : listing_counts) {
    config.num_listings = listings;
    auto stats =
        RunDomainExperiment(domain_name, config, Figure8aVariants(county));
    if (!stats.ok()) {
      std::printf("error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    double best_base = 0.0;
    for (const auto& [variant, stat] : *stats) {
      if (variant.rfind("base:", 0) == 0) {
        best_base = std::max(best_base, stat.mean());
      }
    }
    std::printf("%9zu | %14.1f %8.1f %18.1f %12.1f\n", listings,
                100.0 * best_base, 100.0 * stats->at("meta").mean(),
                100.0 * stats->at("meta+constraints").mean(),
                100.0 * stats->at("full").mean());
  }
  Rule(86);
  std::printf(
      "Paper shape: steep climb 5-20 listings, minimal change 20-200, flat "
      "after 200.\n");
  return 0;
}

}  // namespace lsd::bench


#endif  // LSD_BENCH_DATA_SENSITIVITY_H_
