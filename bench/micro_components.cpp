// Engineering microbenchmarks (google-benchmark) for LSD's substrates:
// tokenizer and stemmer throughput, TF/IDF vectorization, Naive Bayes and
// Whirl train/predict, XML and DTD parsing, extraction, and the constraint
// handler's A* search. These are not paper experiments; they document the
// cost profile of the building blocks.

#include <benchmark/benchmark.h>

#include <cstring>

#include "constraints/astar_searcher.h"
#include "constraints/constraint.h"
#include "datagen/domains.h"
#include "ml/naive_bayes.h"
#include "ml/whirl.h"
#include "schema/extraction.h"
#include "text/stemmer.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace lsd {
namespace {

const char* kSampleText =
    "Fantastic craftsman house with hardwood floors, granite counters and a "
    "large backyard. Close to great schools; priced at $450,000. Contact "
    "Kate Richardson at (206) 523 4719 for showings.";

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tokenize(kSampleText));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(strlen(kSampleText)));
}
BENCHMARK(BM_Tokenize);

void BM_PorterStem(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(PorterStem("generalization"));
    benchmark::DoNotOptimize(PorterStem("fantastic"));
    benchmark::DoNotOptimize(PorterStem("listings"));
  }
}
BENCHMARK(BM_PorterStem);

std::vector<std::vector<std::string>> MakeCorpus(size_t docs) {
  Rng rng(99);
  static const std::vector<std::string> kWords = {
      "house", "great", "fantastic", "yard",  "seattle", "miami", "phone",
      "price", "granite", "kitchen", "school", "garage", "view",  "floor"};
  std::vector<std::vector<std::string>> corpus;
  for (size_t d = 0; d < docs; ++d) {
    std::vector<std::string> doc;
    size_t len = static_cast<size_t>(rng.UniformInt(4, 14));
    for (size_t w = 0; w < len; ++w) doc.push_back(rng.Pick(kWords));
    corpus.push_back(std::move(doc));
  }
  return corpus;
}

void BM_TfIdfVectorize(benchmark::State& state) {
  auto corpus = MakeCorpus(1000);
  TfIdfModel model;
  for (const auto& doc : corpus) model.AddDocument(doc);
  model.Finalize();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Vectorize(corpus[i++ % corpus.size()]));
  }
}
BENCHMARK(BM_TfIdfVectorize);

void BM_NaiveBayesTrain(benchmark::State& state) {
  auto corpus = MakeCorpus(static_cast<size_t>(state.range(0)));
  std::vector<int> labels(corpus.size());
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 8);
  for (auto _ : state) {
    NaiveBayesClassifier nb;
    benchmark::DoNotOptimize(nb.Train(corpus, labels, 8));
  }
}
BENCHMARK(BM_NaiveBayesTrain)->Arg(100)->Arg(1000)->Arg(5000);

void BM_NaiveBayesPredict(benchmark::State& state) {
  auto corpus = MakeCorpus(2000);
  std::vector<int> labels(corpus.size());
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 8);
  NaiveBayesClassifier nb;
  (void)nb.Train(corpus, labels, 8);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nb.Predict(corpus[i++ % corpus.size()]));
  }
}
BENCHMARK(BM_NaiveBayesPredict);

void BM_WhirlPredict(benchmark::State& state) {
  auto corpus = MakeCorpus(static_cast<size_t>(state.range(0)));
  std::vector<int> labels(corpus.size());
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 8);
  WhirlClassifier whirl;
  (void)whirl.Train(corpus, labels, 8);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(whirl.Predict(corpus[i++ % corpus.size()]));
  }
}
BENCHMARK(BM_WhirlPredict)->Arg(500)->Arg(5000);

void BM_XmlParse(benchmark::State& state) {
  std::string doc =
      "<house-listing><location>Seattle, WA</location><price>$70,000</price>"
      "<contact><name>Kate Richardson</name><phone>(206) 523 4719</phone>"
      "</contact><description>" +
      std::string(kSampleText) + "</description></house-listing>";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseXml(doc));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_XmlParse);

void BM_DtdParseAndValidate(benchmark::State& state) {
  const char* dtd_text = R"(
    <!ELEMENT house-listing (location?, price, contact)>
    <!ELEMENT location (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
    <!ELEMENT contact (name, phone)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT phone (#PCDATA)>
  )";
  auto doc = ParseXml(
      "<house-listing><location>x</location><price>1</price>"
      "<contact><name>k</name><phone>2</phone></contact></house-listing>");
  for (auto _ : state) {
    auto dtd = ParseDtd(dtd_text);
    benchmark::DoNotOptimize(dtd->ValidateDocument(doc->root));
  }
}
BENCHMARK(BM_DtdParseAndValidate);

void BM_ExtractColumns(benchmark::State& state) {
  auto domain = MakeEvaluationDomain("real-estate-1", 1,
                                     static_cast<size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractColumns(domain->sources[0].source));
  }
}
BENCHMARK(BM_ExtractColumns)->Arg(50)->Arg(300);

void BM_AStarSearch(benchmark::State& state) {
  auto domain = MakeEvaluationDomain("real-estate-1", 1, 30, 7);
  const GeneratedSource& gen = domain->sources[0];
  auto columns = ExtractColumns(gen.source).value();
  ConstraintContext context(&gen.source.schema, &columns);
  LabelSpace labels(domain->mediated.AllTags());
  // Gold-leaning noisy predictions.
  Rng rng(3);
  std::vector<Prediction> predictions;
  for (const std::string& tag : context.tags()) {
    Prediction p(labels.size());
    for (double& s : p.scores) s = rng.Uniform(0.0, 0.2);
    int gold = labels.IndexOf(gen.gold.LabelOrOther(tag));
    if (gold >= 0) p.scores[static_cast<size_t>(gold)] += 0.6;
    p.Normalize();
    predictions.push_back(std::move(p));
  }
  ConstraintSet constraints;
  for (auto& c : MakeDomainConstraints(*domain)) constraints.Add(std::move(c));
  AStarSearcher searcher;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        searcher.Search(predictions, constraints, labels, context));
  }
}
BENCHMARK(BM_AStarSearch);

void BM_GenerateDomain(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MakeEvaluationDomain("real-estate-2", 5,
                             static_cast<size_t>(state.range(0)), 7));
  }
}
BENCHMARK(BM_GenerateDomain)->Arg(50);

}  // namespace
}  // namespace lsd

BENCHMARK_MAIN();
