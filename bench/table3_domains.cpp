// Reproduces Table 3: "Domains and data sources for our experiments" —
// the structural characteristics of the four evaluation domains' mediated
// schemas and generated sources.
//
// Paper values for reference (mediated tags / non-leaf / depth; source
// tags; matchable %):
//   Real Estate I    20 / 4 / 3;  19-21 tags;  84-100%
//   Time Schedule    23 / 6 / 4;  15-19 tags;  95-100%
//   Faculty Listings 14 / 4 / 3;  13-14 tags;  100%
//   Real Estate II   66 / 13 / 4; 33-48 tags;  100%

#include <cstdio>

#include "bench_util.h"
#include "datagen/domains.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace lsd;
  int listings = bench::IntFlag(argc, argv, "listings",
                                bench::BoolFlag(argc, argv, "quick") ? 40 : 300);

  std::printf("Table 3: Domains and data sources (synthetic reproduction)\n");
  bench::Rule(100);
  std::printf("%-18s | %-22s | %-42s\n", "", "Mediated Schema",
              "Source Schemas (5 sources)");
  std::printf("%-18s | %5s %8s %6s | %9s %7s %8s %6s %10s\n", "Domain", "Tags",
              "NonLeaf", "Depth", "Listings", "Tags", "NonLeaf", "Depth",
              "Match %");
  bench::Rule(100);

  for (const std::string& name : EvaluationDomainNames()) {
    auto domain = MakeEvaluationDomain(name, /*num_sources=*/5,
                                       static_cast<size_t>(listings),
                                       /*seed=*/7);
    if (!domain.ok()) {
      std::printf("error: %s\n", domain.status().ToString().c_str());
      return 1;
    }
    DomainStats stats = ComputeDomainStats(*domain);
    std::printf(
        "%-18s | %5zu %8zu %6zu | %4zu-%-4zu %3zu-%-3zu %4zu-%-3zu %2zu-%-3zu "
        "%3.0f-%-3.0f%%\n",
        stats.name.c_str(), stats.mediated_tags, stats.mediated_non_leaf,
        stats.mediated_depth, stats.min_listings, stats.max_listings,
        stats.min_tags, stats.max_tags, stats.min_non_leaf, stats.max_non_leaf,
        stats.min_depth, stats.max_depth, stats.min_matchable_pct,
        stats.max_matchable_pct);
  }
  bench::Rule(100);
  std::printf(
      "Paper reference: RE-I 20/4/3 tags 19-21 84-100%%; TS 23/6/4 tags "
      "15-19 95-100%%;\n                 FL 14/4/3 tags 13-14 100%%; RE-II "
      "66/13/4 tags 33-48 100%%.\n");
  return 0;
}
