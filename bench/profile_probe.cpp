// Developer probe: times each stage of one train/match cycle so pipeline
// regressions are easy to localize. Not a paper experiment.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/lsd_system.h"
#include "datagen/domains.h"
#include "eval/metrics.h"
#include "eval/experiment.h"

using Clock = std::chrono::steady_clock;

static double Ms(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

int main(int argc, char** argv) {
  using namespace lsd;
  const char* domain_name = bench::BoolFlag(argc, argv, "re2")
                                ? "real-estate-2"
                                : "real-estate-1";
  size_t listings =
      static_cast<size_t>(bench::IntFlag(argc, argv, "listings", 40));

  auto t0 = Clock::now();
  auto domain = MakeEvaluationDomain(domain_name, 5, listings, 7);
  auto t1 = Clock::now();
  std::printf("generate domain: %.1f ms\n", Ms(t0, t1));

  LsdConfig config = ConfigForDomain(domain_name, LsdConfig());
  LsdSystem system(domain->mediated, config, &domain->synonyms);
  for (auto& c : MakeDomainConstraints(*domain)) system.AddConstraint(std::move(c));
  for (int s = 0; s < 3; ++s) {
    auto status = system.AddTrainingSource(domain->sources[static_cast<size_t>(s)].source,
                                           domain->sources[static_cast<size_t>(s)].gold);
    if (!status.ok()) { std::printf("%s\n", status.ToString().c_str()); return 1; }
  }
  auto t2 = Clock::now();
  std::printf("extract training: %.1f ms\n", Ms(t1, t2));
  auto status = system.Train();
  if (!status.ok()) { std::printf("%s\n", status.ToString().c_str()); return 1; }
  auto t3 = Clock::now();
  std::printf("train (CV + meta): %.1f ms\n", Ms(t2, t3));

  auto preds = system.PredictSource(domain->sources[3].source);
  if (!preds.ok()) { std::printf("%s\n", preds.status().ToString().c_str()); return 1; }
  auto t4 = Clock::now();
  std::printf("predict source: %.1f ms\n", Ms(t3, t4));

  MatchOptions options;
  auto result = system.MatchWithPredictions(*preds, domain->sources[3].source, options);
  if (!result.ok()) { std::printf("%s\n", result.status().ToString().c_str()); return 1; }
  auto t5 = Clock::now();
  std::printf("match w/ constraints: %.1f ms (expanded=%zu truncated=%d)\n",
              Ms(t4, t5), result->search_expanded, result->search_truncated);

  options.use_constraint_handler = false;
  auto argmax = system.MatchWithPredictions(*preds, domain->sources[3].source, options);
  auto t6 = Clock::now();
  std::printf("match argmax: %.1f ms\n", Ms(t5, t6));
  std::printf("accuracy (full): %.3f\n",
              MatchingAccuracy(result->mapping, domain->sources[3].gold));
  std::printf("accuracy (argmax): %.3f\n",
              MatchingAccuracy(argmax->mapping, domain->sources[3].gold));

  // Per-learner diagnostics.
  for (const std::string& learner : system.LearnerNames()) {
    MatchOptions solo;
    solo.learners = {learner};
    solo.use_meta_learner = false;
    solo.use_constraint_handler = false;
    auto solo_result =
        system.MatchWithPredictions(*preds, domain->sources[3].source, solo);
    std::printf("accuracy (%s alone): %.3f\n", learner.c_str(),
                MatchingAccuracy(solo_result->mapping, domain->sources[3].gold));
  }
  if (bench::BoolFlag(argc, argv, "weights")) {
    std::printf("meta weights:\n%s",
                system.meta_learner()
                    .WeightsToString(system.labels(), system.LearnerNames())
                    .c_str());
  }
  return 0;
}
