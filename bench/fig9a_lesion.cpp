// Reproduces Figure 9a: lesion studies — the average matching accuracy of
// LSD with one component removed at a time, against the complete system.
//
// Paper shape: every lesion hurts, and no single component dominates.

#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace lsd;
  bool quick = bench::BoolFlag(argc, argv, "quick");
  ExperimentConfig config;
  config.samples =
      static_cast<size_t>(bench::IntFlag(argc, argv, "samples", quick ? 1 : 2));
  config.num_listings = static_cast<size_t>(
      bench::IntFlag(argc, argv, "listings", quick ? 60 : 120));

  std::printf(
      "Figure 9a: lesion studies — accuracy (%%) with one component removed\n"
      "(samples=%zu, listings/source=%zu)\n",
      config.samples, config.num_listings);
  bench::Rule(110);
  std::printf("%-18s | %12s %12s %15s %17s %8s\n", "Domain", "-NameMatcher",
              "-NaiveBayes", "-ContentMatcher", "-ConstraintHandler", "Full");
  bench::Rule(110);

  for (const std::string& name : EvaluationDomainNames()) {
    bool county = ConfigForDomain(name, config.lsd).use_county_recognizer;
    auto stats = RunDomainExperiment(name, config, LesionVariants(county));
    if (!stats.ok()) {
      std::printf("error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%-18s | %12.1f %12.1f %15.1f %17.1f %8.1f\n", name.c_str(),
                100.0 * stats->at("without-name-matcher").mean(),
                100.0 * stats->at("without-naive-bayes").mean(),
                100.0 * stats->at("without-content-matcher").mean(),
                100.0 * stats->at("without-constraint-handler").mean(),
                100.0 * stats->at("full").mean());
  }
  bench::Rule(110);
  std::printf(
      "Paper shape: each component contributes; no clearly dominant one.\n");
  return 0;
}
