// Measures the deterministic parallel runtime: Train + Match wall-clock on
// the Table-3 domain workload at 1/2/4/8 threads, verifying along the way
// that every thread count produces bit-identical results (meta-learner
// weights, per-tag predictions, and the final mapping).
//
// Emits a machine-readable trajectory record (BENCH_parallel.json by
// default) so successive PRs accumulate comparable perf numbers:
//   --listings=N   listings per source (default 100)
//   --quick        40 listings, real-estate-1 only
//   --repeats=N    timed repetitions per cell, min taken (default 3)
//   --out=PATH     JSON output path ("" disables)
//
// Each (domain, threads) cell is run --repeats times and the minimum
// train/match time is reported: the minimum is the run least disturbed by
// the scheduler, so sub-second cells compare stably. Every repetition must
// reproduce the first one's fingerprint bit-for-bit (run-to-run
// determinism, not just thread-count determinism).
//
// Speedups are relative to --threads=1 (the serial path). Interpret them
// against "hardware_concurrency" in the JSON: a 1-core container will
// honestly report ~1.0x.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/file_util.h"
#include "common/strings.h"
#include "core/lsd_system.h"
#include "datagen/domains.h"
#include "eval/experiment.h"

namespace {

using namespace lsd;

/// String flag "--key=value"; returns `fallback` when absent.
std::string StringFlag(int argc, char** argv, const char* key,
                       const std::string& fallback) {
  std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

/// One timed Train+Match run of a realized domain: train on the first 3
/// sources, match the remaining ones.
struct RunResult {
  double train_seconds = 0.0;
  double match_seconds = 0.0;
  /// Fingerprint of everything determinism promises: meta weights plus,
  /// per target source, the mapping and the exact tag-prediction bytes.
  std::string fingerprint;
  Status status;
};

RunResult RunDomain(const Domain& domain, const std::string& domain_name,
                    size_t num_threads) {
  RunResult result;
  LsdConfig config;
  config = ConfigForDomain(domain_name, config);
  config.num_threads = num_threads;
  LsdSystem system(domain.mediated, config);

  const size_t train_count = 3;
  auto t0 = std::chrono::steady_clock::now();
  for (size_t s = 0; s < train_count && s < domain.sources.size(); ++s) {
    result.status = system.AddTrainingSource(domain.sources[s].source,
                                             domain.sources[s].gold);
    if (!result.status.ok()) return result;
  }
  result.status = system.Train();
  if (!result.status.ok()) return result;
  auto t1 = std::chrono::steady_clock::now();
  result.train_seconds = Seconds(t0, t1);

  result.fingerprint = system.meta_learner().Serialize();
  for (size_t s = train_count; s < domain.sources.size(); ++s) {
    auto match = system.MatchSource(domain.sources[s].source);
    if (!match.ok()) {
      result.status = match.status();
      return result;
    }
    result.fingerprint += match->mapping.ToString();
    for (const Prediction& p : match->tag_predictions) {
      for (double score : p.scores) {
        result.fingerprint += StrFormat("%.17g,", score);
      }
    }
  }
  auto t2 = std::chrono::steady_clock::now();
  result.match_seconds = Seconds(t1, t2);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = bench::BoolFlag(argc, argv, "quick");
  size_t listings = static_cast<size_t>(
      bench::IntFlag(argc, argv, "listings", quick ? 40 : 100));
  size_t repeats = std::max<size_t>(
      1, static_cast<size_t>(bench::IntFlag(argc, argv, "repeats", 3)));
  std::string out_path =
      StringFlag(argc, argv, "out", "BENCH_parallel.json");
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  std::vector<std::string> domains =
      quick ? std::vector<std::string>{"real-estate-1"}
            : EvaluationDomainNames();

  std::printf(
      "bench_parallel: Train+Match wall-clock vs. thread count\n"
      "(listings/source=%zu, 3 train / 2 match, hardware threads: %u)\n",
      listings, std::thread::hardware_concurrency());
  bench::Rule(84);
  std::printf("%-18s | %7s | %9s %9s %9s | %8s | %s\n", "Domain", "Threads",
              "Train s", "Match s", "Total s", "Speedup", "Identical");
  bench::Rule(84);

  std::string json = "{\n  \"bench\": \"bench_parallel\",\n";
  json += StrFormat("  \"listings\": %zu,\n", listings);
  json += StrFormat("  \"repeats\": %zu,\n", repeats);
  json += StrFormat("  \"hardware_concurrency\": %u,\n",
                    std::thread::hardware_concurrency());
  json += "  \"results\": [\n";

  bool all_identical = true;
  bool first_row = true;
  for (const std::string& name : domains) {
    auto domain = MakeEvaluationDomain(name, /*num_sources=*/5, listings,
                                       /*seed=*/7);
    if (!domain.ok()) {
      std::fprintf(stderr, "error: %s\n", domain.status().ToString().c_str());
      return 1;
    }
    // Repetitions interleave full thread sweeps (1,2,4,8, 1,2,4,8, ...)
    // rather than repeating one cell back-to-back, so slow drift in
    // machine load hits every thread count equally and the per-cell
    // minima stay comparable. Each sweep starts at a rotated offset so no
    // thread count systematically runs first (cold caches) or last
    // (accumulated heat/load) in every repetition.
    std::vector<RunResult> best(thread_counts.size());
    bool repeatable = true;
    for (size_t rep = 0; rep < repeats; ++rep) {
      for (size_t slot = 0; slot < thread_counts.size(); ++slot) {
        size_t t = (slot + rep) % thread_counts.size();
        RunResult run = RunDomain(*domain, name, thread_counts[t]);
        if (!run.status.ok()) {
          std::fprintf(stderr, "error: %s\n", run.status.ToString().c_str());
          return 1;
        }
        if (rep == 0) {
          best[t] = std::move(run);
          continue;
        }
        repeatable = repeatable && run.fingerprint == best[t].fingerprint;
        best[t].train_seconds =
            std::min(best[t].train_seconds, run.train_seconds);
        best[t].match_seconds =
            std::min(best[t].match_seconds, run.match_seconds);
      }
    }
    all_identical = all_identical && repeatable;
    double serial_total =
        best[0].train_seconds + best[0].match_seconds;
    const std::string& serial_fingerprint = best[0].fingerprint;
    for (size_t t = 0; t < thread_counts.size(); ++t) {
      size_t threads = thread_counts[t];
      const RunResult& run = best[t];
      double total = run.train_seconds + run.match_seconds;
      bool identical = repeatable;
      if (threads != 1) {
        identical = repeatable && run.fingerprint == serial_fingerprint;
        all_identical = all_identical && identical;
      }
      double speedup = total > 0.0 ? serial_total / total : 1.0;
      std::printf("%-18s | %7zu | %9.3f %9.3f %9.3f | %7.2fx | %s\n",
                  name.c_str(), threads, run.train_seconds, run.match_seconds,
                  total, speedup, identical ? "yes" : "NO");
      if (!first_row) json += ",\n";
      first_row = false;
      json += StrFormat(
          "    {\"domain\": \"%s\", \"threads\": %zu, "
          "\"train_seconds\": %.4f, \"match_seconds\": %.4f, "
          "\"total_seconds\": %.4f, \"speedup_vs_serial\": %.3f, "
          "\"identical_to_serial\": %s}",
          name.c_str(), threads, run.train_seconds, run.match_seconds, total,
          speedup, identical ? "true" : "false");
    }
  }
  json += "\n  ]\n}\n";
  bench::Rule(84);
  std::printf("outputs bit-identical across thread counts: %s\n",
              all_identical ? "yes" : "NO — determinism bug");

  if (!out_path.empty()) {
    Status status = WriteStringToFile(out_path, json);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return all_identical ? 0 : 1;
}
