// Offered-load sweep for the MatchService: bursts of match requests are
// pushed at a bounded service and we record what overload behavior costs —
// throughput, latency percentiles of admitted requests, and the shed rate
// once the burst exceeds the queue.
//
// Each (workers, burst) cell submits the whole burst at once (that IS the
// offered load; admission control decides what fits) and waits for every
// future. Latencies come from the service's own submit-to-terminal clock.
//
// A second table measures reload-under-load: a full-queue burst with one
// shadow-validated hot swap issued mid-drain, reporting the latency
// percentiles beside the Reload() wall time — the p99 delta against the
// plain burst is what a live model swap costs concurrent traffic.
//
// Flags:
//   --listings=N     listings per generated source (default 60)
//   --quick          30 listings, smallest sweep
//   --queue-depth=N  admission cap (default 32)
//   --out=PATH       JSON output path, BENCH_service.json by default
//                    ("" disables)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/file_util.h"
#include "common/strings.h"
#include "core/lsd_system.h"
#include "datagen/domains.h"
#include "service/match_service.h"
#include "xml/xml_writer.h"

namespace {

using namespace lsd;

std::string StringFlag(int argc, char** argv, const char* key,
                       const std::string& fallback) {
  std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

struct Cell {
  size_t workers = 0;
  size_t burst = 0;
  bool cache = false;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  size_t admitted = 0, shed = 0, failed = 0;
  /// Prediction-cache hit rate over the cell's traffic, percent.
  double hit_rate_pct = 0.0;
};

/// One reload-under-load measurement: the same burst, with one
/// shadow-validated hot swap issued while the burst is draining.
struct ReloadCell {
  size_t workers = 0;
  size_t burst = 0;
  double wall_seconds = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  /// Wall time of the Reload() call itself: candidate builds + shadow
  /// validation + epoch publication, all off the request hot path.
  double reload_ms = 0.0;
  size_t admitted = 0, shed = 0, failed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = bench::BoolFlag(argc, argv, "quick");
  size_t listings = static_cast<size_t>(
      bench::IntFlag(argc, argv, "listings", quick ? 30 : 60));
  size_t queue_depth = static_cast<size_t>(
      bench::IntFlag(argc, argv, "queue-depth", 32));
  std::string out_path = StringFlag(argc, argv, "out", "BENCH_service.json");

  auto domain = MakeEvaluationDomain("real-estate-1", /*num_sources=*/5,
                                     listings, /*seed=*/7);
  if (!domain.ok()) {
    std::fprintf(stderr, "error: %s\n", domain.status().ToString().c_str());
    return 1;
  }

  // Request payloads: the two held-out sources serialized back to text,
  // exactly what a front end would hand the service.
  struct Payload {
    std::string dtd_text, xml_text;
  };
  std::vector<Payload> payloads;
  for (size_t s = 3; s < domain->sources.size(); ++s) {
    const DataSource& source = domain->sources[s].source;
    Payload payload;
    payload.dtd_text = source.schema.ToString();
    XmlNode wrapper("listings");
    for (const XmlDocument& listing : source.listings) {
      wrapper.children.push_back(listing.root);
    }
    payload.xml_text = WriteXml(wrapper);
    payloads.push_back(std::move(payload));
  }

  auto factory = [&]() -> StatusOr<std::unique_ptr<LsdSystem>> {
    auto system = std::make_unique<LsdSystem>(domain->mediated, LsdConfig());
    for (size_t s = 0; s < 3; ++s) {
      LSD_RETURN_IF_ERROR(system->AddTrainingSource(
          domain->sources[s].source, domain->sources[s].gold));
    }
    LSD_RETURN_IF_ERROR(system->Train());
    return StatusOr<std::unique_ptr<LsdSystem>>(std::move(system));
  };

  const std::vector<size_t> worker_counts = quick ? std::vector<size_t>{1, 2}
                                                  : std::vector<size_t>{1, 2, 4};
  // The largest burst intentionally exceeds the queue so the table shows
  // the shed rate, not just service time.
  const std::vector<size_t> bursts =
      quick ? std::vector<size_t>{4, queue_depth + 8}
            : std::vector<size_t>{4, 16, queue_depth + 16};

  std::printf(
      "bench_service: offered-load sweep (listings/source=%zu, "
      "queue-depth=%zu)\n",
      listings, queue_depth);
  bench::Rule(100);
  std::printf("%7s | %6s | %5s | %8s %9s | %8s %8s %8s | %6s %5s | %5s\n",
              "Workers", "Burst", "Cache", "Wall s", "req/s", "p50 ms",
              "p95 ms", "p99 ms", "Admit", "Shed", "Hit%");
  bench::Rule(100);

  // The burst repeats the same two payloads, so a warm cache converts the
  // repeats into lookups — the cache=on rows show what that buys.
  std::vector<Cell> cells;
  for (size_t workers : worker_counts) {
    for (size_t burst : bursts) {
     for (bool cache : {false, true}) {
      MatchServiceOptions options;
      options.workers = workers;
      options.max_queue_depth = queue_depth;
      if (!cache) options.pred_cache_entries = 0;  // on = service default
      auto service = MatchService::Create(factory, options);
      if (!service.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     service.status().ToString().c_str());
        return 1;
      }

      auto t0 = std::chrono::steady_clock::now();
      std::vector<std::future<ServiceResponse>> futures;
      futures.reserve(burst);
      for (size_t i = 0; i < burst; ++i) {
        ServiceRequest request;
        request.id = "b" + std::to_string(i);
        request.dtd_text = payloads[i % payloads.size()].dtd_text;
        request.xml_text = payloads[i % payloads.size()].xml_text;
        futures.push_back((*service)->Submit(std::move(request)));
      }
      Cell cell;
      cell.workers = workers;
      cell.burst = burst;
      cell.cache = cache;
      std::vector<uint64_t> latencies;
      for (auto& future : futures) {
        ServiceResponse r = future.get();
        switch (r.outcome) {
          case RequestOutcome::kShed:
            ++cell.shed;
            break;
          case RequestOutcome::kFailed:
            ++cell.failed;
            break;
          default:
            ++cell.admitted;
            latencies.push_back(r.latency_micros);
        }
      }
      auto t1 = std::chrono::steady_clock::now();
      MatchService::Stats stats = (*service)->stats();
      (*service)->Stop();

      cell.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
      cell.throughput_rps =
          cell.wall_seconds > 0.0 ? cell.admitted / cell.wall_seconds : 0.0;
      std::sort(latencies.begin(), latencies.end());
      cell.p50_ms = bench::PercentileMs(latencies, 0.50);
      cell.p95_ms = bench::PercentileMs(latencies, 0.95);
      cell.p99_ms = bench::PercentileMs(latencies, 0.99);
      uint64_t lookups = stats.pred_cache_hits + stats.pred_cache_misses;
      cell.hit_rate_pct =
          lookups == 0 ? 0.0
                       : 100.0 * static_cast<double>(stats.pred_cache_hits) /
                             static_cast<double>(lookups);
      if (cell.failed != 0) {
        std::fprintf(stderr, "error: %zu requests failed outright\n",
                     cell.failed);
        return 1;
      }
      std::printf(
          "%7zu | %6zu | %5s | %8.3f %9.1f | %8.1f %8.1f %8.1f | %6zu %5zu "
          "| %5.1f\n",
          cell.workers, cell.burst, cell.cache ? "on" : "off",
          cell.wall_seconds, cell.throughput_rps, cell.p50_ms, cell.p95_ms,
          cell.p99_ms, cell.admitted, cell.shed, cell.hit_rate_pct);
      cells.push_back(cell);
     }
    }
  }
  bench::Rule(100);

  // Reload-under-load: one shadow-validated hot swap (identically trained
  // candidate, golden-gated) issued while a full-queue burst drains. The
  // p99 here against the cache-off row above is the latency price of a
  // live swap; admitted/shed must match the plain burst exactly — the
  // swap itself may never cost a request.
  std::vector<ReloadCell> reload_cells;
  const size_t reload_burst = queue_depth;
  std::printf("\nreload under load: one hot swap mid-burst (burst=%zu)\n",
              reload_burst);
  bench::Rule(100);
  std::printf("%7s | %6s | %8s | %8s %8s %8s | %9s | %6s %5s\n", "Workers",
              "Burst", "Wall s", "p50 ms", "p95 ms", "p99 ms", "Reload ms",
              "Admit", "Shed");
  bench::Rule(100);
  for (size_t workers : worker_counts) {
    MatchServiceOptions options;
    options.workers = workers;
    options.max_queue_depth = queue_depth;
    for (size_t g = 0; g < payloads.size(); ++g) {
      ServiceRequest golden;
      golden.id = "golden-" + std::to_string(g);
      golden.dtd_text = payloads[g].dtd_text;
      golden.xml_text = payloads[g].xml_text;
      options.golden_requests.push_back(std::move(golden));
    }
    auto service = MatchService::Create(factory, options);
    if (!service.ok()) {
      std::fprintf(stderr, "error: %s\n", service.status().ToString().c_str());
      return 1;
    }
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<ServiceResponse>> futures;
    futures.reserve(reload_burst);
    for (size_t i = 0; i < reload_burst; ++i) {
      ServiceRequest request;
      request.id = "r" + std::to_string(i);
      request.dtd_text = payloads[i % payloads.size()].dtd_text;
      request.xml_text = payloads[i % payloads.size()].xml_text;
      futures.push_back((*service)->Submit(std::move(request)));
    }
    MatchService::ReloadOptions reload;
    reload.factory = factory;
    auto r0 = std::chrono::steady_clock::now();
    auto report = (*service)->Reload(std::move(reload));
    auto r1 = std::chrono::steady_clock::now();
    if (!report.ok() || !report->swapped) {
      std::fprintf(stderr, "error: reload under load not adopted: %s\n",
                   report.ok() ? report->rejection.c_str()
                               : report.status().ToString().c_str());
      return 1;
    }
    ReloadCell cell;
    cell.workers = workers;
    cell.burst = reload_burst;
    cell.reload_ms =
        std::chrono::duration<double, std::milli>(r1 - r0).count();
    std::vector<uint64_t> latencies;
    for (auto& future : futures) {
      ServiceResponse r = future.get();
      switch (r.outcome) {
        case RequestOutcome::kShed:
          ++cell.shed;
          break;
        case RequestOutcome::kFailed:
          ++cell.failed;
          break;
        default:
          ++cell.admitted;
          latencies.push_back(r.latency_micros);
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    (*service)->Stop();
    if (cell.failed != 0 || cell.shed != 0) {
      std::fprintf(stderr,
                   "error: hot swap cost traffic: %zu failed, %zu shed\n",
                   cell.failed, cell.shed);
      return 1;
    }
    cell.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    std::sort(latencies.begin(), latencies.end());
    cell.p50_ms = bench::PercentileMs(latencies, 0.50);
    cell.p95_ms = bench::PercentileMs(latencies, 0.95);
    cell.p99_ms = bench::PercentileMs(latencies, 0.99);
    std::printf("%7zu | %6zu | %8.3f | %8.1f %8.1f %8.1f | %9.1f | %6zu %5zu\n",
                cell.workers, cell.burst, cell.wall_seconds, cell.p50_ms,
                cell.p95_ms, cell.p99_ms, cell.reload_ms, cell.admitted,
                cell.shed);
    reload_cells.push_back(cell);
  }
  bench::Rule(100);

  std::string json = "{\n  \"bench\": \"bench_service\",\n";
  json += StrFormat("  \"listings\": %zu,\n", listings);
  json += StrFormat("  \"queue_depth\": %zu,\n", queue_depth);
  json += "  \"results\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    json += StrFormat(
        "    {\"workers\": %zu, \"burst\": %zu, \"pred_cache\": %s, "
        "\"wall_seconds\": %.4f, "
        "\"throughput_rps\": %.2f, \"p50_ms\": %.2f, \"p95_ms\": %.2f, "
        "\"p99_ms\": %.2f, \"admitted\": %zu, \"shed\": %zu, "
        "\"hit_rate_pct\": %.1f}%s",
        cell.workers, cell.burst, cell.cache ? "true" : "false",
        cell.wall_seconds, cell.throughput_rps,
        cell.p50_ms, cell.p95_ms, cell.p99_ms, cell.admitted, cell.shed,
        cell.hit_rate_pct, i + 1 < cells.size() ? ",\n" : "\n");
  }
  json += "  ],\n  \"reload_results\": [\n";
  for (size_t i = 0; i < reload_cells.size(); ++i) {
    const ReloadCell& cell = reload_cells[i];
    json += StrFormat(
        "    {\"workers\": %zu, \"burst\": %zu, \"wall_seconds\": %.4f, "
        "\"p50_ms\": %.2f, \"p95_ms\": %.2f, \"p99_ms\": %.2f, "
        "\"reload_ms\": %.2f, \"admitted\": %zu, \"shed\": %zu}%s",
        cell.workers, cell.burst, cell.wall_seconds, cell.p50_ms, cell.p95_ms,
        cell.p99_ms, cell.reload_ms, cell.admitted, cell.shed,
        i + 1 < reload_cells.size() ? ",\n" : "\n");
  }
  json += "  ]\n}\n";
  if (!out_path.empty()) {
    Status status = WriteStringToFile(out_path, json);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
