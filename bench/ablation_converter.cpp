// Ablation bench: prediction-converter policy.
//
// The paper's converter "simply computes the average score of each label"
// (Section 3.2) and flags it as a design point. This bench compares the
// average against element-wise max and a product (log-sum) combiner on
// two domains, full system configuration.

#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace lsd;
  bool quick = bench::BoolFlag(argc, argv, "quick");
  ExperimentConfig base_config;
  base_config.samples =
      static_cast<size_t>(bench::IntFlag(argc, argv, "samples", 1));
  base_config.num_listings = static_cast<size_t>(
      bench::IntFlag(argc, argv, "listings", quick ? 40 : 60));

  struct Policy {
    const char* name;
    ConverterPolicy policy;
  };
  const Policy kPolicies[] = {
      {"average (paper)", ConverterPolicy::kAverage},
      {"max", ConverterPolicy::kMax},
      {"product", ConverterPolicy::kProduct},
  };

  std::printf(
      "Prediction-converter ablation: full-system accuracy (%%)\n"
      "(samples=%zu, listings/source=%zu)\n",
      base_config.samples, base_config.num_listings);
  bench::Rule(70);
  std::printf("%-18s |", "Domain");
  for (const Policy& policy : kPolicies) std::printf(" %16s", policy.name);
  std::printf("\n");
  bench::Rule(70);

  for (const std::string& domain :
       {std::string("real-estate-1"), std::string("time-schedule")}) {
    std::printf("%-18s |", domain.c_str());
    for (const Policy& policy : kPolicies) {
      ExperimentConfig config = base_config;
      config.lsd.converter_policy = policy.policy;
      SystemVariant variant;
      variant.name = "full";
      auto stats = RunDomainExperiment(domain, config, {variant});
      if (!stats.ok()) {
        std::printf("error: %s\n", stats.status().ToString().c_str());
        return 1;
      }
      std::printf(" %16.1f", 100.0 * stats->at("full").mean());
    }
    std::printf("\n");
  }
  bench::Rule(70);
  return 0;
}
