// Reproduces the Section 6.3 user-feedback experiment: how many correct
// labels must the user provide before LSD reaches a perfect matching of a
// held-out source? The protocol follows the paper: tags are reviewed in
// decreasing structure-score order; each round corrects the first wrong
// label and re-runs the constraint handler.
//
// Paper numbers: Time Schedule needed 3 corrections on average (17 tags in
// the test schemas); Real Estate II needed 6.3 (38.6 tags).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/feedback.h"
#include "core/lsd_system.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace lsd;
  bool quick = bench::BoolFlag(argc, argv, "quick");
  size_t runs = static_cast<size_t>(
      bench::IntFlag(argc, argv, "runs", quick ? 1 : 3));
  size_t listings = static_cast<size_t>(
      bench::IntFlag(argc, argv, "listings", quick ? 60 : 120));

  std::printf(
      "Section 6.3: user feedback needed for perfect matching "
      "(runs=%zu, listings/source=%zu)\n",
      runs, listings);
  bench::Rule(86);
  std::printf("%-18s | %12s %12s %14s %10s\n", "Domain", "AvgTags",
              "AvgFeedback", "AvgIterations", "Perfect");
  bench::Rule(86);

  for (const std::string& name : {std::string("time-schedule"),
                                  std::string("real-estate-2")}) {
    LsdConfig base_config;
    LsdConfig lsd_config = ConfigForDomain(name, base_config);
    double total_corrections = 0, total_tags = 0, total_iterations = 0;
    size_t perfect = 0, trials = 0;

    for (size_t run = 0; run < runs; ++run) {
      auto spec = GetDomainSpec(name);
      if (!spec.ok()) return 1;
      Domain domain = RealizeDomain(*spec, 5, listings, /*seed=*/7,
                                    /*data_seed=*/1000 + run);
      // Paper protocol: 3 random training sources, 1 test source per run.
      // We rotate the test source across runs deterministically.
      size_t test = run % domain.sources.size();
      LsdSystem system(domain.mediated, lsd_config, &domain.synonyms);
      for (auto& constraint : MakeDomainConstraints(domain)) {
        system.AddConstraint(std::move(constraint));
      }
      size_t trained = 0;
      for (size_t s = 0; s < domain.sources.size() && trained < 3; ++s) {
        if (s == test) continue;
        Status status = system.AddTrainingSource(domain.sources[s].source,
                                                 domain.sources[s].gold);
        if (!status.ok()) {
          std::printf("error: %s\n", status.ToString().c_str());
          return 1;
        }
        ++trained;
      }
      Status status = system.Train();
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
        return 1;
      }

      FeedbackSession session(&system, &domain.sources[test].source);
      status = session.Initialize();
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
        return 1;
      }
      auto stats = session.RunWithOracle(domain.sources[test].gold);
      if (!stats.ok()) {
        std::printf("error: %s\n", stats.status().ToString().c_str());
        return 1;
      }
      total_corrections += static_cast<double>(stats->corrections);
      total_tags += static_cast<double>(stats->tags_total);
      total_iterations += static_cast<double>(stats->iterations);
      if (stats->reached_perfect) ++perfect;
      ++trials;
    }
    std::printf("%-18s | %12.1f %12.1f %14.1f %7zu/%zu\n", name.c_str(),
                total_tags / static_cast<double>(trials),
                total_corrections / static_cast<double>(trials),
                total_iterations / static_cast<double>(trials), perfect,
                trials);
  }
  bench::Rule(86);
  std::printf(
      "Paper reference: Time Schedule 3.0 corrections of ~17 tags; Real "
      "Estate II 6.3 of ~38.6.\n");
  return 0;
}
