// lsd_serve: replay a match-request stream through the overload-safe
// MatchService and report per-request outcomes plus service metrics.
//
// Where lsd_match runs ONE match end to end, lsd_serve stands the trained
// system up behind the service layer — bounded queue, admission control,
// deadlines, retries, per-learner circuit breakers — and pushes a whole
// request stream through it, the way a mediator front end would.
//
// Usage:
//   lsd_serve --mediated mediated.dtd
//             --train src1.dtd src1.xml src1.mapping [--train ...]
//             --requests stream.txt | --listen PORT
//             [--workers N]        (service worker slots; default 2)
//             [--queue-depth N]    (admission cap; default 32)
//             [--deadline-ms N]    (default per-request budget; -1 = none)
//             [--grace-ms N]       (overrun slack; default 1000)
//             [--retries N]        (max retries per request; default 2)
//             [--breaker-threshold N] (consecutive failures to open; 0 = off)
//             [--breaker-skips N]  (free skips while open before a probe)
//             [--pred-cache N]     (shared prediction-cache capacity;
//                                   0 = off; default 65536)
//             [--seed N]           (backoff jitter seed; default 42)
//             [--strict]           (strict parsing; default is lenient)
//             [--print-mappings]   (dump each successful mapping to stdout)
//             [--metrics-out FILE] (write a metrics-registry JSON snapshot)
//             [--golden FILE]      (golden request set replayed to shadow-
//                                   validate every RELOAD candidate)
//             [--golden-floor F]   (accept a candidate when >= F of the
//                                   golden mappings match the baseline;
//                                   default: byte-identical fingerprints)
//             [--registry DIR]     (versioned model registry; RELOAD'ed
//                                   models are added, integrity-verified,
//                                   and tracked serving/last-good/
//                                   quarantined there)
//             [--probation N]      (post-swap probation window: N responses
//                                   from the new version with zero failures
//                                   or the service auto-rolls back; 0 = off)
//
// Network mode: `--listen PORT` (instead of `--requests`) stands the same
// trained service up behind the epoll TCP front end (src/net/server.h) on
// 127.0.0.1. PORT 0 binds an ephemeral port; either way the bound port is
// announced on stdout as "listening on 127.0.0.1:<port>" so scripts and
// tests can scrape it. The process serves until SIGINT/SIGTERM, then stops
// the server and service, prints the usual summary, and exits 0. File
// replay (`--requests`) is unchanged; the two modes are mutually exclusive.
//
// Request-stream format (one request per line, '#' comments and blank
// lines ignored):
//   <id> <target.dtd> <target.xml> [deadline_ms]
//   RELOAD <model-artifact-path>
// A per-line deadline overrides --deadline-ms; -1 means no deadline.
// A RELOAD directive hot-swaps the serving model at that point in the
// stream — earlier requests may still be in flight; none are disturbed.
// Malformed lines are counted, diagnosed on stderr, and skipped; they make
// the run imperfect (exit 2), never silent.
//
// Output: one line per request on stdout,
//   <id> <outcome> attempts=<n> retries=<n> latency_ms=<n> [note]
// where <outcome> is ok | degraded | failed | shed, and the note carries
// the error message for failed/shed requests. Each RELOAD directive also
// prints one line:
//   RELOAD <path> swapped version=<v> golden=<matched>/<total>
//   RELOAD <path> rejected: <why>        (candidate quarantined)
//   RELOAD <path> failed: <status>       (reload could not run)
// A service summary goes to stderr.
//
// Exit codes:
//   0  every request came back ok, no malformed lines, every RELOAD
//      swapped.
//   2  every request reached a terminal outcome but some were degraded,
//      failed, or shed — or the stream had malformed lines, or a RELOAD
//      was rejected/failed; the summary says which.
//   1  hard failure: bad usage, unreadable inputs, or training failed.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/metrics.h"
#include "common/serial.h"
#include "common/strings.h"
#include "net/server.h"
#include "core/lsd_system.h"
#include "service/match_service.h"
#include "service/model_registry.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace {

using namespace lsd;

void Usage() {
  std::fprintf(stderr,
               "usage: lsd_serve --mediated M.dtd"
               " --train S.dtd S.xml S.mapping [--train ...]"
               " (--requests FILE | --listen PORT)"
               " [--workers N] [--queue-depth N]"
               " [--deadline-ms N] [--grace-ms N] [--retries N]"
               " [--breaker-threshold N] [--breaker-skips N]"
               " [--pred-cache N] [--seed N]"
               " [--strict] [--print-mappings] [--metrics-out FILE]"
               " [--golden FILE] [--golden-floor F] [--registry DIR]"
               " [--probation N]\n");
}

enum ExitCode {
  kExitOk = 0,
  kExitHardFailure = 1,
  kExitImperfectStream = 2,
};

/// Set by SIGINT/SIGTERM in --listen mode; the serve loop polls it.
volatile std::sig_atomic_t g_stop_requested = 0;
void HandleStopSignal(int) { g_stop_requested = 1; }

struct RequestSpec {
  std::string id;
  std::string dtd_path;
  std::string xml_path;
  int64_t deadline_ms;
};

/// One stream entry in order: a request to submit or a RELOAD directive.
struct StreamItem {
  bool is_reload = false;
  RequestSpec spec;         // when !is_reload
  std::string reload_path;  // when is_reload
};

struct RequestStream {
  std::vector<StreamItem> items;
  /// Malformed lines: each got a diagnostic on stderr and was skipped.
  /// Nonzero makes the run imperfect (exit 2) — never a silent skip, and
  /// never a reason to drop the well-formed remainder of the stream.
  size_t malformed = 0;
};

/// Parses the request-stream file: "<id> <dtd> <xml> [deadline_ms]" or
/// "RELOAD <model-path>" per line, '#' comments and blank lines skipped.
/// Only an unreadable file is a hard error; malformed lines are counted
/// and diagnosed.
StatusOr<RequestStream> LoadRequestStream(const std::string& path,
                                          int64_t default_deadline) {
  LSD_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  RequestStream stream;
  size_t line_number = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_number;
    std::string line = raw.substr(0, raw.find('#'));
    std::vector<std::string> fields = SplitAny(line, " \t\r");
    if (fields.empty()) continue;
    if (fields[0] == "RELOAD") {
      if (fields.size() != 2) {
        std::fprintf(stderr,
                     "%s:%zu: malformed line: want \"RELOAD <model-path>\", "
                     "got %zu fields\n",
                     path.c_str(), line_number, fields.size());
        ++stream.malformed;
        continue;
      }
      StreamItem item;
      item.is_reload = true;
      item.reload_path = fields[1];
      stream.items.push_back(std::move(item));
      continue;
    }
    if (fields.size() < 3 || fields.size() > 4) {
      std::fprintf(stderr,
                   "%s:%zu: malformed line: want \"<id> <dtd> <xml> "
                   "[deadline_ms]\", got %zu fields\n",
                   path.c_str(), line_number, fields.size());
      ++stream.malformed;
      continue;
    }
    StreamItem item;
    item.spec.id = fields[0];
    item.spec.dtd_path = fields[1];
    item.spec.xml_path = fields[2];
    item.spec.deadline_ms = default_deadline;
    if (fields.size() == 4) {
      // Checked conversion: a 20-digit or trailing-garbage deadline is a
      // malformed line, not a silently-wrapped budget.
      StatusOr<int64_t> parsed = FieldToInt64(fields[3]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s:%zu: malformed line: bad deadline '%s'\n",
                     path.c_str(), line_number, fields[3].c_str());
        ++stream.malformed;
        continue;
      }
      item.spec.deadline_ms = *parsed;
    }
    stream.items.push_back(std::move(item));
  }
  return stream;
}

/// Loads the --golden file (same "<id> <dtd> <xml>" line format) into
/// in-memory requests. Golden sets are operator configuration: any
/// malformed line, RELOAD directive, or unreadable input is a hard error.
StatusOr<std::vector<ServiceRequest>> LoadGoldenRequests(
    const std::string& path) {
  LSD_ASSIGN_OR_RETURN(RequestStream stream, LoadRequestStream(path, -1));
  if (stream.malformed != 0) {
    return Status::InvalidArgument(
        path + ": golden set has malformed lines (diagnostics above)");
  }
  std::vector<ServiceRequest> goldens;
  for (const StreamItem& item : stream.items) {
    if (item.is_reload) {
      return Status::InvalidArgument(
          path + ": RELOAD directives are not allowed in a golden set");
    }
    ServiceRequest request;
    request.id = item.spec.id;
    LSD_ASSIGN_OR_RETURN(request.dtd_text,
                         ReadFileToString(item.spec.dtd_path));
    LSD_ASSIGN_OR_RETURN(request.xml_text,
                         ReadFileToString(item.spec.xml_path));
    goldens.push_back(std::move(request));
  }
  return goldens;
}

bool ParseCount(const std::string& value, long* out) {
  StatusOr<int64_t> parsed = FieldToInt64(value);
  if (!parsed.ok() || *parsed < 0 || *parsed > LONG_MAX) return false;
  *out = static_cast<long>(*parsed);
  return true;
}

int Run(int argc, char** argv) {
  std::string mediated_path, requests_path, metrics_out;
  std::string golden_path, registry_dir;
  struct TrainSpec {
    std::string dtd, xml, mapping;
  };
  std::vector<TrainSpec> train_specs;
  MatchServiceOptions options;
  long deadline_ms = -1;
  bool print_mappings = false;
  double golden_floor = -1.0;  // < 0 = byte-identical fingerprints
  long probation = 0;
  long listen_port = -1;  // >= 0: network mode (0 = ephemeral port)

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    auto next_count = [&](long* out) {
      std::string value;
      if (!next(&value) || !ParseCount(value, out)) {
        std::fprintf(stderr, "%s expects a non-negative integer\n",
                     arg.c_str());
        return false;
      }
      return true;
    };
    long count = 0;
    if (arg == "--mediated") {
      if (!next(&mediated_path)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--train") {
      TrainSpec spec;
      if (!next(&spec.dtd) || !next(&spec.xml) || !next(&spec.mapping)) {
        Usage();
        return kExitHardFailure;
      }
      train_specs.push_back(std::move(spec));
    } else if (arg == "--requests") {
      if (!next(&requests_path)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--listen") {
      if (!next_count(&listen_port) || listen_port > 65535) {
        std::fprintf(stderr, "--listen expects a port in [0, 65535]\n");
        return kExitHardFailure;
      }
    } else if (arg == "--workers") {
      if (!next_count(&count) || count == 0) { Usage(); return kExitHardFailure; }
      options.workers = static_cast<size_t>(count);
    } else if (arg == "--queue-depth") {
      if (!next_count(&count) || count == 0) { Usage(); return kExitHardFailure; }
      options.max_queue_depth = static_cast<size_t>(count);
    } else if (arg == "--deadline-ms") {
      std::string value;
      if (!next(&value)) { Usage(); return kExitHardFailure; }
      StatusOr<int64_t> parsed = FieldToInt64(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--deadline-ms expects an integer (-1 = none)\n");
        return kExitHardFailure;
      }
      deadline_ms = *parsed;
    } else if (arg == "--grace-ms") {
      if (!next_count(&count)) return kExitHardFailure;
      options.grace_ms = count;
    } else if (arg == "--retries") {
      if (!next_count(&count)) return kExitHardFailure;
      options.backoff.max_retries = static_cast<size_t>(count);
    } else if (arg == "--breaker-threshold") {
      if (!next_count(&count)) return kExitHardFailure;
      options.breaker.failure_threshold = static_cast<size_t>(count);
    } else if (arg == "--breaker-skips") {
      if (!next_count(&count)) return kExitHardFailure;
      options.breaker.open_skips = static_cast<size_t>(count);
    } else if (arg == "--pred-cache") {
      if (!next_count(&count)) return kExitHardFailure;
      options.pred_cache_entries = static_cast<size_t>(count);
    } else if (arg == "--seed") {
      if (!next_count(&count)) return kExitHardFailure;
      options.seed = static_cast<uint64_t>(count);
    } else if (arg == "--strict") {
      options.lenient_parse = false;
    } else if (arg == "--print-mappings") {
      print_mappings = true;
    } else if (arg == "--metrics-out") {
      if (!next(&metrics_out)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--golden") {
      if (!next(&golden_path)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--golden-floor") {
      std::string value;
      if (!next(&value) || !ParseDouble(value, &golden_floor) ||
          golden_floor < 0.0 || golden_floor > 1.0) {
        std::fprintf(stderr, "--golden-floor expects a fraction in [0, 1]\n");
        return kExitHardFailure;
      }
    } else if (arg == "--registry") {
      if (!next(&registry_dir)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--probation") {
      if (!next_count(&probation)) return kExitHardFailure;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return kExitHardFailure;
    }
  }
  const bool listen_mode = listen_port >= 0;
  if (mediated_path.empty() || train_specs.empty() ||
      (requests_path.empty() && !listen_mode) ||
      (!requests_path.empty() && listen_mode)) {
    Usage();
    return kExitHardFailure;
  }
  options.default_deadline_ms = deadline_ms;

  StatusOr<RequestStream> stream{RequestStream()};
  if (!listen_mode) {
    stream = LoadRequestStream(requests_path, deadline_ms);
    if (!stream.ok()) {
      std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
      return kExitHardFailure;
    }
  }

  if (!golden_path.empty()) {
    auto goldens = LoadGoldenRequests(golden_path);
    if (!goldens.ok()) {
      std::fprintf(stderr, "%s\n", goldens.status().ToString().c_str());
      return kExitHardFailure;
    }
    options.golden_requests = std::move(*goldens);
  }

  std::unique_ptr<ModelRegistry> registry;
  if (!registry_dir.empty()) {
    registry = std::make_unique<ModelRegistry>(registry_dir);
    Status opened = registry->Open();
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.ToString().c_str());
      return kExitHardFailure;
    }
    options.registry = registry.get();
  }

  // The factory builds one trained replica per worker slot; it re-reads
  // the training inputs so a rebuilt replica after a poisoning failure is
  // pristine. Fail fast on the first replica, before serving anything.
  auto factory = [&]() -> StatusOr<std::unique_ptr<LsdSystem>> {
    LSD_ASSIGN_OR_RETURN(std::string mediated_text,
                         ReadFileToString(mediated_path));
    LSD_ASSIGN_OR_RETURN(Dtd mediated, ParseDtd(mediated_text));
    auto system = std::make_unique<LsdSystem>(mediated, LsdConfig());
    std::vector<DataSource> sources;
    sources.reserve(train_specs.size());
    for (const TrainSpec& spec : train_specs) {
      DataSource source;
      source.name = spec.dtd;
      LSD_ASSIGN_OR_RETURN(std::string dtd_text, ReadFileToString(spec.dtd));
      LSD_ASSIGN_OR_RETURN(source.schema, ParseDtd(dtd_text));
      LSD_ASSIGN_OR_RETURN(std::string xml_text, ReadFileToString(spec.xml));
      LSD_ASSIGN_OR_RETURN(XmlDocument wrapper, ParseXml(xml_text));
      for (XmlNode& listing : wrapper.root.children) {
        source.listings.emplace_back(std::move(listing));
      }
      LSD_ASSIGN_OR_RETURN(std::string map_text,
                           ReadFileToString(spec.mapping));
      LSD_ASSIGN_OR_RETURN(Mapping gold, ParseMapping(map_text));
      sources.push_back(std::move(source));
      LSD_RETURN_IF_ERROR(system->AddTrainingSource(sources.back(), gold));
    }
    LSD_RETURN_IF_ERROR(system->Train());
    return StatusOr<std::unique_ptr<LsdSystem>>(std::move(system));
  };

  auto service = MatchService::Create(factory, options);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return kExitHardFailure;
  }
  if (listen_mode) {
    std::fprintf(stderr,
                 "serving on the network (workers=%zu queue-depth=%zu "
                 "retries=%zu breaker-threshold=%zu)\n",
                 options.workers, options.max_queue_depth,
                 options.backoff.max_retries,
                 options.breaker.failure_threshold);
  } else {
    std::fprintf(stderr,
                 "serving %zu stream items (workers=%zu queue-depth=%zu "
                 "retries=%zu breaker-threshold=%zu)\n",
                 stream->items.size(), options.workers,
                 options.max_queue_depth, options.backoff.max_retries,
                 options.breaker.failure_threshold);
  }

  // A RELOAD candidate is loaded from its artifact (via the registry when
  // one is configured) onto a fresh untrained system — never retrained
  // from the --train inputs, which belong to the bootstrap generation.
  auto make_reload_factory = [&](std::string model_path) {
    return [&mediated_path, model_path]()
               -> StatusOr<std::unique_ptr<LsdSystem>> {
      LSD_ASSIGN_OR_RETURN(std::string mediated_text,
                           ReadFileToString(mediated_path));
      LSD_ASSIGN_OR_RETURN(Dtd mediated, ParseDtd(mediated_text));
      auto system = std::make_unique<LsdSystem>(mediated, LsdConfig());
      LSD_RETURN_IF_ERROR(system->LoadModel(model_path));
      return StatusOr<std::unique_ptr<LsdSystem>>(std::move(system));
    };
  };

  if (listen_mode) {
    net::NetServerOptions net_options;
    net_options.port = static_cast<uint16_t>(listen_port);
    auto server = net::NetServer::Create(service->get(), net_options);
    if (!server.ok()) {
      std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
      return kExitHardFailure;
    }
    // The announced port is the scripting contract for --listen 0: tests
    // and check.sh scrape it to find the ephemeral port.
    std::printf("listening on 127.0.0.1:%u\n",
                static_cast<unsigned>((*server)->port()));
    std::fflush(stdout);
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    while (g_stop_requested == 0) {
      timespec nap{0, 50 * 1000 * 1000};  // 50 ms between signal polls
      nanosleep(&nap, nullptr);
    }
    std::fprintf(stderr, "stop signal received; draining\n");
    (*server)->Stop();
  }

  // Walk the stream in order: requests are submitted asynchronously (the
  // whole burst IS the offered load; admission control decides what fits)
  // and a RELOAD directive hot-swaps at its position — requests submitted
  // before it may still be queued or in flight, which is the point.
  // (In --listen mode the stream is empty and this falls through to the
  // shared shutdown/summary path.)
  std::vector<std::future<ServiceResponse>> futures;
  size_t reload_rejected = 0, reload_failed = 0;
  for (const StreamItem& item : stream->items) {
    if (item.is_reload) {
      std::string model_path = item.reload_path;
      uint64_t registry_version = 0;
      if (registry != nullptr) {
        auto version = registry->AddVersion(model_path);
        if (!version.ok()) {
          std::printf("RELOAD %s failed: %s\n", item.reload_path.c_str(),
                      version.status().ToString().c_str());
          ++reload_failed;
          continue;
        }
        auto verified = registry->VerifiedModelPath(*version);
        if (!verified.ok()) {
          std::printf("RELOAD %s failed: %s\n", item.reload_path.c_str(),
                      verified.status().ToString().c_str());
          ++reload_failed;
          continue;
        }
        registry_version = *version;
        model_path = std::move(*verified);
      }
      MatchService::ReloadOptions reload;
      reload.factory = make_reload_factory(std::move(model_path));
      reload.registry_version = registry_version;
      if (golden_floor >= 0.0) {
        reload.require_identical = false;
        reload.min_accuracy = golden_floor;
      }
      reload.probation_requests = static_cast<size_t>(probation);
      auto outcome = (*service)->Reload(std::move(reload));
      if (!outcome.ok()) {
        std::printf("RELOAD %s failed: %s\n", item.reload_path.c_str(),
                    outcome.status().ToString().c_str());
        ++reload_failed;
      } else if (outcome->swapped) {
        std::printf("RELOAD %s swapped version=%llu golden=%zu/%zu\n",
                    item.reload_path.c_str(),
                    (unsigned long long)outcome->model_version,
                    outcome->golden_matched, outcome->golden_total);
      } else {
        std::printf("RELOAD %s rejected: %s\n", item.reload_path.c_str(),
                    outcome->rejection.c_str());
        ++reload_rejected;
      }
      continue;
    }
    const RequestSpec& spec = item.spec;
    ServiceRequest request;
    request.id = spec.id;
    request.deadline_ms = spec.deadline_ms;
    auto dtd_text = ReadFileToString(spec.dtd_path);
    auto xml_text =
        dtd_text.ok() ? ReadFileToString(spec.xml_path) : dtd_text;
    if (!dtd_text.ok() || !xml_text.ok()) {
      // An unreadable input is the request's failure, not the stream's:
      // synthesize a request the parser will reject so the stream keeps
      // flowing and the outcome line carries the file error.
      const Status& error =
          dtd_text.ok() ? xml_text.status() : dtd_text.status();
      std::fprintf(stderr, "warning: %s: %s\n", spec.id.c_str(),
                   error.ToString().c_str());
      request.dtd_text = "";
      request.xml_text = "";
    } else {
      request.dtd_text = std::move(*dtd_text);
      request.xml_text = std::move(*xml_text);
    }
    futures.push_back((*service)->Submit(std::move(request)));
  }

  bool all_ok = true;
  for (auto& future : futures) {
    ServiceResponse r = future.get();
    if (r.outcome != RequestOutcome::kOk) all_ok = false;
    std::string note;
    if (!r.status.ok()) {
      note = " " + r.status.ToString();
    } else if (r.breaker_skipped) {
      note = " breaker-skip";
    }
    std::printf("%s %s attempts=%zu retries=%zu latency_ms=%lld%s\n",
                r.id.c_str(), RequestOutcomeName(r.outcome), r.attempts,
                r.retries,
                static_cast<long long>(r.latency_micros / 1000),
                note.c_str());
    if (print_mappings && r.status.ok()) {
      std::printf("%s", r.mapping.c_str());
    }
  }
  (*service)->Stop();

  MatchService::Stats stats = (*service)->stats();
  std::fprintf(stderr,
               "summary: submitted=%llu admitted=%llu shed=%llu ok=%llu "
               "degraded=%llu failed=%llu retried=%llu breaker-opens=%llu "
               "replicas-rebuilt=%llu deadline-overruns=%llu "
               "reloads=%llu reload-rejections=%llu rollbacks=%llu "
               "model-version=%llu malformed=%zu\n",
               (unsigned long long)stats.submitted,
               (unsigned long long)stats.admitted,
               (unsigned long long)stats.shed, (unsigned long long)stats.ok,
               (unsigned long long)stats.degraded,
               (unsigned long long)stats.failed,
               (unsigned long long)stats.retried,
               (unsigned long long)stats.breaker_open_transitions,
               (unsigned long long)stats.replicas_rebuilt,
               (unsigned long long)stats.deadline_overruns,
               (unsigned long long)stats.reloads,
               (unsigned long long)stats.reload_rejections,
               (unsigned long long)stats.rollbacks,
               (unsigned long long)stats.model_version,
               stream->malformed);
  uint64_t lookups = stats.pred_cache_hits + stats.pred_cache_misses;
  std::fprintf(stderr,
               "pred-cache: hits=%llu misses=%llu hit-rate=%.1f%%\n",
               (unsigned long long)stats.pred_cache_hits,
               (unsigned long long)stats.pred_cache_misses,
               lookups == 0 ? 0.0
                            : 100.0 * static_cast<double>(
                                          stats.pred_cache_hits) /
                                  static_cast<double>(lookups));

  if (!metrics_out.empty()) {
    Status written = WriteStringToFile(
        metrics_out, MetricsRegistry::Global().Snapshot().ToJson());
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return kExitHardFailure;
    }
  }
  bool clean = all_ok && stream->malformed == 0 && reload_rejected == 0 &&
               reload_failed == 0;
  return clean ? kExitOk : kExitImperfectStream;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
