// lsd_serve: replay a match-request stream through the overload-safe
// MatchService and report per-request outcomes plus service metrics.
//
// Where lsd_match runs ONE match end to end, lsd_serve stands the trained
// system up behind the service layer — bounded queue, admission control,
// deadlines, retries, per-learner circuit breakers — and pushes a whole
// request stream through it, the way a mediator front end would.
//
// Usage:
//   lsd_serve --mediated mediated.dtd
//             --train src1.dtd src1.xml src1.mapping [--train ...]
//             --requests stream.txt
//             [--workers N]        (service worker slots; default 2)
//             [--queue-depth N]    (admission cap; default 32)
//             [--deadline-ms N]    (default per-request budget; -1 = none)
//             [--grace-ms N]       (overrun slack; default 1000)
//             [--retries N]        (max retries per request; default 2)
//             [--breaker-threshold N] (consecutive failures to open; 0 = off)
//             [--breaker-skips N]  (free skips while open before a probe)
//             [--pred-cache N]     (shared prediction-cache capacity;
//                                   0 = off; default 65536)
//             [--seed N]           (backoff jitter seed; default 42)
//             [--strict]           (strict parsing; default is lenient)
//             [--print-mappings]   (dump each successful mapping to stdout)
//             [--metrics-out FILE] (write a metrics-registry JSON snapshot)
//
// Request-stream format (one request per line, '#' comments and blank
// lines ignored):
//   <id> <target.dtd> <target.xml> [deadline_ms]
// A per-line deadline overrides --deadline-ms; -1 means no deadline.
//
// Output: one line per request on stdout,
//   <id> <outcome> attempts=<n> retries=<n> latency_ms=<n> [note]
// where <outcome> is ok | degraded | failed | shed, and the note carries
// the error message for failed/shed requests. A service summary goes to
// stderr.
//
// Exit codes:
//   0  every request came back ok.
//   2  every request reached a terminal outcome but some were degraded,
//      failed, or shed — the summary says which.
//   1  hard failure: bad usage, unreadable inputs, or training failed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "core/lsd_system.h"
#include "service/match_service.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace {

using namespace lsd;

void Usage() {
  std::fprintf(stderr,
               "usage: lsd_serve --mediated M.dtd"
               " --train S.dtd S.xml S.mapping [--train ...]"
               " --requests FILE [--workers N] [--queue-depth N]"
               " [--deadline-ms N] [--grace-ms N] [--retries N]"
               " [--breaker-threshold N] [--breaker-skips N]"
               " [--pred-cache N] [--seed N]"
               " [--strict] [--print-mappings] [--metrics-out FILE]\n");
}

enum ExitCode {
  kExitOk = 0,
  kExitHardFailure = 1,
  kExitImperfectStream = 2,
};

struct RequestSpec {
  std::string id;
  std::string dtd_path;
  std::string xml_path;
  int64_t deadline_ms;
};

/// Parses the request-stream file: "<id> <dtd> <xml> [deadline_ms]" per
/// line, '#' comments and blank lines skipped.
StatusOr<std::vector<RequestSpec>> LoadRequestStream(const std::string& path,
                                                     int64_t default_deadline) {
  LSD_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  std::vector<RequestSpec> specs;
  size_t line_number = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_number;
    std::string line = raw.substr(0, raw.find('#'));
    std::vector<std::string> fields = SplitAny(line, " \t\r");
    if (fields.empty()) continue;
    if (fields.size() < 3 || fields.size() > 4) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) +
          ": want \"<id> <dtd> <xml> [deadline_ms]\", got " +
          std::to_string(fields.size()) + " fields");
    }
    RequestSpec spec;
    spec.id = fields[0];
    spec.dtd_path = fields[1];
    spec.xml_path = fields[2];
    spec.deadline_ms = default_deadline;
    if (fields.size() == 4) {
      char* end = nullptr;
      long parsed = std::strtol(fields[3].c_str(), &end, 10);
      if (*end != '\0') {
        return Status::InvalidArgument(path + ":" +
                                       std::to_string(line_number) +
                                       ": bad deadline " + fields[3]);
      }
      spec.deadline_ms = parsed;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

bool ParseCount(const std::string& value, long* out) {
  char* end = nullptr;
  long parsed = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || parsed < 0) return false;
  *out = parsed;
  return true;
}

int Run(int argc, char** argv) {
  std::string mediated_path, requests_path, metrics_out;
  struct TrainSpec {
    std::string dtd, xml, mapping;
  };
  std::vector<TrainSpec> train_specs;
  MatchServiceOptions options;
  long deadline_ms = -1;
  bool print_mappings = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    auto next_count = [&](long* out) {
      std::string value;
      if (!next(&value) || !ParseCount(value, out)) {
        std::fprintf(stderr, "%s expects a non-negative integer\n",
                     arg.c_str());
        return false;
      }
      return true;
    };
    long count = 0;
    if (arg == "--mediated") {
      if (!next(&mediated_path)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--train") {
      TrainSpec spec;
      if (!next(&spec.dtd) || !next(&spec.xml) || !next(&spec.mapping)) {
        Usage();
        return kExitHardFailure;
      }
      train_specs.push_back(std::move(spec));
    } else if (arg == "--requests") {
      if (!next(&requests_path)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--workers") {
      if (!next_count(&count) || count == 0) { Usage(); return kExitHardFailure; }
      options.workers = static_cast<size_t>(count);
    } else if (arg == "--queue-depth") {
      if (!next_count(&count) || count == 0) { Usage(); return kExitHardFailure; }
      options.max_queue_depth = static_cast<size_t>(count);
    } else if (arg == "--deadline-ms") {
      std::string value;
      if (!next(&value)) { Usage(); return kExitHardFailure; }
      char* end = nullptr;
      deadline_ms = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0') { Usage(); return kExitHardFailure; }
    } else if (arg == "--grace-ms") {
      if (!next_count(&count)) return kExitHardFailure;
      options.grace_ms = count;
    } else if (arg == "--retries") {
      if (!next_count(&count)) return kExitHardFailure;
      options.backoff.max_retries = static_cast<size_t>(count);
    } else if (arg == "--breaker-threshold") {
      if (!next_count(&count)) return kExitHardFailure;
      options.breaker.failure_threshold = static_cast<size_t>(count);
    } else if (arg == "--breaker-skips") {
      if (!next_count(&count)) return kExitHardFailure;
      options.breaker.open_skips = static_cast<size_t>(count);
    } else if (arg == "--pred-cache") {
      if (!next_count(&count)) return kExitHardFailure;
      options.pred_cache_entries = static_cast<size_t>(count);
    } else if (arg == "--seed") {
      if (!next_count(&count)) return kExitHardFailure;
      options.seed = static_cast<uint64_t>(count);
    } else if (arg == "--strict") {
      options.lenient_parse = false;
    } else if (arg == "--print-mappings") {
      print_mappings = true;
    } else if (arg == "--metrics-out") {
      if (!next(&metrics_out)) { Usage(); return kExitHardFailure; }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return kExitHardFailure;
    }
  }
  if (mediated_path.empty() || requests_path.empty() || train_specs.empty()) {
    Usage();
    return kExitHardFailure;
  }
  options.default_deadline_ms = deadline_ms;

  auto specs = LoadRequestStream(requests_path, deadline_ms);
  if (!specs.ok()) {
    std::fprintf(stderr, "%s\n", specs.status().ToString().c_str());
    return kExitHardFailure;
  }

  // The factory builds one trained replica per worker slot; it re-reads
  // the training inputs so a rebuilt replica after a poisoning failure is
  // pristine. Fail fast on the first replica, before serving anything.
  auto factory = [&]() -> StatusOr<std::unique_ptr<LsdSystem>> {
    LSD_ASSIGN_OR_RETURN(std::string mediated_text,
                         ReadFileToString(mediated_path));
    LSD_ASSIGN_OR_RETURN(Dtd mediated, ParseDtd(mediated_text));
    auto system = std::make_unique<LsdSystem>(mediated, LsdConfig());
    std::vector<DataSource> sources;
    sources.reserve(train_specs.size());
    for (const TrainSpec& spec : train_specs) {
      DataSource source;
      source.name = spec.dtd;
      LSD_ASSIGN_OR_RETURN(std::string dtd_text, ReadFileToString(spec.dtd));
      LSD_ASSIGN_OR_RETURN(source.schema, ParseDtd(dtd_text));
      LSD_ASSIGN_OR_RETURN(std::string xml_text, ReadFileToString(spec.xml));
      LSD_ASSIGN_OR_RETURN(XmlDocument wrapper, ParseXml(xml_text));
      for (XmlNode& listing : wrapper.root.children) {
        source.listings.emplace_back(std::move(listing));
      }
      LSD_ASSIGN_OR_RETURN(std::string map_text,
                           ReadFileToString(spec.mapping));
      LSD_ASSIGN_OR_RETURN(Mapping gold, ParseMapping(map_text));
      sources.push_back(std::move(source));
      LSD_RETURN_IF_ERROR(system->AddTrainingSource(sources.back(), gold));
    }
    LSD_RETURN_IF_ERROR(system->Train());
    return StatusOr<std::unique_ptr<LsdSystem>>(std::move(system));
  };

  auto service = MatchService::Create(factory, options);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return kExitHardFailure;
  }
  std::fprintf(stderr,
               "serving %zu requests (workers=%zu queue-depth=%zu "
               "retries=%zu breaker-threshold=%zu)\n",
               specs->size(), options.workers, options.max_queue_depth,
               options.backoff.max_retries,
               options.breaker.failure_threshold);

  // Submit the whole stream up front — that IS the offered load; admission
  // control decides what fits — then collect in submission order.
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(specs->size());
  for (const RequestSpec& spec : *specs) {
    ServiceRequest request;
    request.id = spec.id;
    request.deadline_ms = spec.deadline_ms;
    auto dtd_text = ReadFileToString(spec.dtd_path);
    auto xml_text =
        dtd_text.ok() ? ReadFileToString(spec.xml_path) : dtd_text;
    if (!dtd_text.ok() || !xml_text.ok()) {
      // An unreadable input is the request's failure, not the stream's:
      // synthesize a request the parser will reject so the stream keeps
      // flowing and the outcome line carries the file error.
      const Status& error =
          dtd_text.ok() ? xml_text.status() : dtd_text.status();
      std::fprintf(stderr, "warning: %s: %s\n", spec.id.c_str(),
                   error.ToString().c_str());
      request.dtd_text = "";
      request.xml_text = "";
    } else {
      request.dtd_text = std::move(*dtd_text);
      request.xml_text = std::move(*xml_text);
    }
    futures.push_back((*service)->Submit(std::move(request)));
  }

  bool all_ok = true;
  for (auto& future : futures) {
    ServiceResponse r = future.get();
    if (r.outcome != RequestOutcome::kOk) all_ok = false;
    std::string note;
    if (!r.status.ok()) {
      note = " " + r.status.ToString();
    } else if (r.breaker_skipped) {
      note = " breaker-skip";
    }
    std::printf("%s %s attempts=%zu retries=%zu latency_ms=%lld%s\n",
                r.id.c_str(), RequestOutcomeName(r.outcome), r.attempts,
                r.retries,
                static_cast<long long>(r.latency_micros / 1000),
                note.c_str());
    if (print_mappings && r.status.ok()) {
      std::printf("%s", r.mapping.c_str());
    }
  }
  (*service)->Stop();

  MatchService::Stats stats = (*service)->stats();
  std::fprintf(stderr,
               "summary: submitted=%llu admitted=%llu shed=%llu ok=%llu "
               "degraded=%llu failed=%llu retried=%llu breaker-opens=%llu "
               "replicas-rebuilt=%llu deadline-overruns=%llu\n",
               (unsigned long long)stats.submitted,
               (unsigned long long)stats.admitted,
               (unsigned long long)stats.shed, (unsigned long long)stats.ok,
               (unsigned long long)stats.degraded,
               (unsigned long long)stats.failed,
               (unsigned long long)stats.retried,
               (unsigned long long)stats.breaker_open_transitions,
               (unsigned long long)stats.replicas_rebuilt,
               (unsigned long long)stats.deadline_overruns);
  uint64_t lookups = stats.pred_cache_hits + stats.pred_cache_misses;
  std::fprintf(stderr,
               "pred-cache: hits=%llu misses=%llu hit-rate=%.1f%%\n",
               (unsigned long long)stats.pred_cache_hits,
               (unsigned long long)stats.pred_cache_misses,
               lookups == 0 ? 0.0
                            : 100.0 * static_cast<double>(
                                          stats.pred_cache_hits) /
                                  static_cast<double>(lookups));

  if (!metrics_out.empty()) {
    Status written = WriteStringToFile(
        metrics_out, MetricsRegistry::Global().Snapshot().ToJson());
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return kExitHardFailure;
    }
  }
  return all_ok ? kExitOk : kExitImperfectStream;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
