// lsd_client: send match requests to a running `lsd_serve --listen` over
// the LSD wire protocol and print per-request outcomes.
//
// The output line format is identical to lsd_serve's file-replay output,
//   <id> <outcome> attempts=<n> retries=<n> latency_ms=<n> [note]
// so a network run can be diffed against a replay of the same stream
// (latency is wall-clock and must be normalized before comparing; the
// check.sh smoke and tests/tools_test.cpp do exactly that). attempts/
// retries are the *service-side* numbers from the response; transport
// retries the client performed are reported separately on stderr.
//
// Usage:
//   lsd_client --port P --requests stream.txt
//              [--host H]              (default 127.0.0.1)
//              [--deadline-ms N]       (default per-request budget; -1 = none)
//              [--retries N]           (transport retries; default 2)
//              [--connect-timeout-ms N]
//              [--io-timeout-ms N]
//              [--seed N]              (retry jitter seed; default 42)
//              [--print-mappings]      (dump each successful mapping)
//              [--print-fingerprints]  (dump each response fingerprint)
//
// The stream file reuses lsd_serve's request format — "<id> <dtd> <xml>
// [deadline_ms]" per line, '#' comments — without RELOAD directives
// (reload is an operator action on the server, not a client verb).
//
// Exit codes: 0 = every request ok; 2 = some request degraded, failed,
// shed, or undeliverable; 1 = bad usage or unreadable inputs.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/serial.h"
#include "common/strings.h"
#include "net/client.h"

namespace {

using namespace lsd;

void Usage() {
  std::fprintf(stderr,
               "usage: lsd_client --port P --requests FILE [--host H]"
               " [--deadline-ms N] [--retries N] [--connect-timeout-ms N]"
               " [--io-timeout-ms N] [--seed N] [--print-mappings]"
               " [--print-fingerprints]\n");
}

enum ExitCode {
  kExitOk = 0,
  kExitHardFailure = 1,
  kExitImperfect = 2,
};

struct RequestLine {
  std::string id;
  std::string dtd_path;
  std::string xml_path;
  int64_t deadline_ms;
};

int Run(int argc, char** argv) {
  net::NetClientOptions options;
  std::string requests_path;
  int64_t default_deadline = -1;
  long port = -1;
  bool print_mappings = false;
  bool print_fingerprints = false;
  options.backoff_seed = 42;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    auto next_int = [&](int64_t* out) {
      std::string value;
      if (!next(&value)) return false;
      StatusOr<int64_t> parsed = FieldToInt64(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s expects an integer\n", arg.c_str());
        return false;
      }
      *out = *parsed;
      return true;
    };
    int64_t value = 0;
    if (arg == "--port") {
      if (!next_int(&value) || value < 0 || value > 65535) {
        std::fprintf(stderr, "--port expects a port in [0, 65535]\n");
        return kExitHardFailure;
      }
      port = static_cast<long>(value);
    } else if (arg == "--host") {
      if (!next(&options.host)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--requests") {
      if (!next(&requests_path)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--deadline-ms") {
      if (!next_int(&default_deadline)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--retries") {
      if (!next_int(&value) || value < 0) { Usage(); return kExitHardFailure; }
      options.backoff.max_retries = static_cast<size_t>(value);
    } else if (arg == "--connect-timeout-ms") {
      if (!next_int(&value) || value <= 0) { Usage(); return kExitHardFailure; }
      options.connect_timeout_ms = value;
    } else if (arg == "--io-timeout-ms") {
      if (!next_int(&value) || value <= 0) { Usage(); return kExitHardFailure; }
      options.io_timeout_ms = value;
    } else if (arg == "--seed") {
      if (!next_int(&value) || value < 0) { Usage(); return kExitHardFailure; }
      options.backoff_seed = static_cast<uint64_t>(value);
    } else if (arg == "--print-mappings") {
      print_mappings = true;
    } else if (arg == "--print-fingerprints") {
      print_fingerprints = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return kExitHardFailure;
    }
  }
  if (port < 0 || requests_path.empty()) {
    Usage();
    return kExitHardFailure;
  }
  options.port = static_cast<uint16_t>(port);

  auto text = ReadFileToString(requests_path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return kExitHardFailure;
  }
  std::vector<RequestLine> lines;
  size_t line_number = 0;
  size_t malformed = 0;
  for (const std::string& raw : Split(*text, '\n')) {
    ++line_number;
    std::string line = raw.substr(0, raw.find('#'));
    std::vector<std::string> fields = SplitAny(line, " \t\r");
    if (fields.empty()) continue;
    if (fields.size() < 3 || fields.size() > 4) {
      std::fprintf(stderr,
                   "%s:%zu: malformed line: want \"<id> <dtd> <xml> "
                   "[deadline_ms]\", got %zu fields\n",
                   requests_path.c_str(), line_number, fields.size());
      ++malformed;
      continue;
    }
    RequestLine request;
    request.id = fields[0];
    request.dtd_path = fields[1];
    request.xml_path = fields[2];
    request.deadline_ms = default_deadline;
    if (fields.size() == 4) {
      StatusOr<int64_t> parsed = FieldToInt64(fields[3]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s:%zu: malformed line: bad deadline '%s'\n",
                     requests_path.c_str(), line_number, fields[3].c_str());
        ++malformed;
        continue;
      }
      request.deadline_ms = *parsed;
    }
    lines.push_back(std::move(request));
  }

  net::NetClient client(options);
  bool all_ok = true;
  size_t delivered = 0, undeliverable = 0;
  for (const RequestLine& line : lines) {
    net::WireRequest request;
    request.id = line.id;
    request.deadline_ms = line.deadline_ms;
    auto dtd_text = ReadFileToString(line.dtd_path);
    auto xml_text = dtd_text.ok() ? ReadFileToString(line.xml_path) : dtd_text;
    if (!dtd_text.ok() || !xml_text.ok()) {
      // Mirror lsd_serve: an unreadable input is the request's failure —
      // send empty text the server-side parser will reject, keeping the
      // outcome line (and the diff against a replay run) flowing.
      const Status& error =
          dtd_text.ok() ? xml_text.status() : dtd_text.status();
      std::fprintf(stderr, "warning: %s: %s\n", line.id.c_str(),
                   error.ToString().c_str());
    } else {
      request.dtd_text = std::move(*dtd_text);
      request.xml_text = std::move(*xml_text);
    }

    StatusOr<net::WireResponse> response = client.Call(request);
    if (!response.ok()) {
      // Transport-dead after retries: synthesize a failed outcome line so
      // every request in the stream is accounted for on stdout.
      all_ok = false;
      ++undeliverable;
      std::printf("%s failed attempts=0 retries=0 latency_ms=0 %s\n",
                  line.id.c_str(), response.status().ToString().c_str());
      continue;
    }
    ++delivered;
    if (response->outcome != net::WireOutcome::kOk) all_ok = false;
    std::string note;
    if (response->status_code != StatusCode::kOk) {
      note = " " + response->ToStatus().ToString();
    } else if (response->breaker_skipped) {
      note = " breaker-skip";
    }
    std::printf("%s %s attempts=%llu retries=%llu latency_ms=%llu%s\n",
                response->id.c_str(), net::WireOutcomeName(response->outcome),
                (unsigned long long)response->attempts,
                (unsigned long long)response->retries,
                (unsigned long long)(response->latency_micros / 1000),
                note.c_str());
    if (print_mappings && response->status_code == StatusCode::kOk) {
      std::printf("%s", response->mapping.c_str());
    }
    if (print_fingerprints) {
      std::printf("%s", response->fingerprint.c_str());
    }
  }
  std::fprintf(stderr, "client: delivered=%zu undeliverable=%zu malformed=%zu\n",
               delivered, undeliverable, malformed);
  return (all_ok && malformed == 0) ? kExitOk : kExitImperfect;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
